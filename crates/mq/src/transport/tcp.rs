//! Real sockets: a TCP [`Transport`] for channel traffic.
//!
//! Two halves cooperate, both multiplexed on the process-wide
//! [`Reactor`](crate::transport::reactor::Reactor) rather than parking a
//! thread per connection:
//!
//! * [`TcpTransport`] — the sending side. A connection supervisor thread
//!   owns the lifecycle: it dials the peer (with a connect timeout),
//!   performs the blocking `Hello`/`HelloAck` handshake (verifying magic,
//!   version and — when configured — the peer's queue-manager name), then
//!   flips the socket non-blocking and hands the read half to the
//!   reactor. From there the data plane is *pipelined*: `submit` writes a
//!   `Batch` frame (vectored, straight from the per-message cached wire
//!   images — no copy) and returns a [`BatchTicket`] without waiting;
//!   cumulative `AckWin` watermarks consumed on the reactor advance
//!   [`PipelinedTransport::progress`], confirming every batch at or below
//!   the watermark at once. A full socket parks `submit` until the
//!   reactor reports it writable again — that is the first link of the
//!   backpressure chain (socket → mover window → transmission queue).
//!   Heartbeat pings are only sent when no frames have arrived since the
//!   last interval: under load the ack stream itself proves liveness.
//!
//! * [`TcpAcceptor`] — the receiving side, one per listening queue
//!   manager. A (blocking) accept thread registers each connection with
//!   the reactor; the per-connection handler parses frames incrementally,
//!   hands each message to [`QueueManager::accept_envelope`] — the relay
//!   seam every transport converges on — and, after draining a readable
//!   burst, emits *one* coalesced `AckWin` carrying the highest batch
//!   sequence processed (plus accepted/deduplicated counts for the whole
//!   burst) instead of one ack per batch.
//!
//! ## Delivery guarantee
//!
//! The sender commits a transmission-queue session only once the ack
//! watermark covers its ticket, so a connection lost mid-window leaves
//! the messages in the transmission queue and they are resent after
//! reconnect — at-least-once. The receiving manager's [`crate::relay`]
//! deduper remembers recently accepted *(origin manager, message id)*
//! keys and silently drops resends of messages that made it in before the
//! connection died — at-most-once across connection failures, and
//! (because the window is reseeded from the journal on recovery) across
//! receiver restarts too. Connection epochs make the watermark safe: a
//! ticket issued under one connection can never be confirmed by a later
//! connection's acks.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesList;
use parking_lot::{Condvar, Mutex};

use crate::qmgr::QueueManager;
use crate::relay::RelayOutcome;
use crate::stats::MetricsRegistry;
use crate::transport::frame::{Frame, FrameEvent, FrameKind, FrameReader};
use crate::transport::reactor::{Pollable, Reactor, Registration};
use crate::transport::{
    deliver_envelope, transport_error, BatchOutcome, BatchTicket, PipelineProgress,
    PipelinedTransport, SubmitError, Transport, TransportMetrics,
};
use crate::MqResult;

/// Tuning for the sending side of a TCP channel.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// The longest a sender waits for ack progress, a pong, or the
    /// handshake reply before declaring the connection dead.
    pub read_timeout: Duration,
    /// Interval between heartbeat pings on an idle-healthy connection.
    pub heartbeat_interval: Duration,
    /// First reconnect backoff; doubles per failure up to `backoff_max`.
    pub backoff_initial: Duration,
    /// Ceiling for the reconnect backoff.
    pub backoff_max: Duration,
    /// Peer queue-manager name the handshake must present; `None` skips
    /// the check (used by tests and generic tooling).
    pub expected_peer: Option<String>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(2000),
            heartbeat_interval: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(2000),
            expected_peer: None,
        }
    }
}

/// Batches the sender keeps in flight (submitted, unacked) per
/// connection. Sized so a loopback pipe stays full without letting an
/// unacked window grow past what a reconnect cheaply retransmits.
const SEND_WINDOW: usize = 16;

/// Default size of the receiver's dedup window (re-exported from the
/// relay module, which owns the manager-level deduper these days).
pub use crate::relay::DEFAULT_DEDUP_WINDOW;

/// Outcome of one attempt to push the connection's outbox onto the wire.
enum FlushOutcome {
    /// Everything written.
    Clean,
    /// The socket is full; a writable notification has been armed.
    Blocked,
    /// The connection is unusable (write error / peer gone).
    Dead,
}

/// Writes as much of `outbox` as the socket accepts, using vectored
/// writes over the un-copied frame segments. On `WouldBlock` the caller's
/// registration (if any) is armed for a writable wake-up.
fn flush_outbox(
    stream: &mut TcpStream,
    outbox: &mut BytesList,
    registration: Option<&Registration>,
) -> FlushOutcome {
    while !outbox.is_empty() {
        let wrote = {
            let slices = outbox.io_slices();
            stream.write_vectored(&slices)
        };
        match wrote {
            Ok(0) => return FlushOutcome::Dead,
            Ok(n) => outbox.advance(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(reg) = registration {
                    reg.want_write();
                }
                return FlushOutcome::Blocked;
            }
            Err(_) => return FlushOutcome::Dead,
        }
    }
    FlushOutcome::Clean
}

// ---------------------------------------------------------------- sender --

/// Connection state shared between the mover, the supervisor, the
/// reactor-side ack reader, and shutdown; one mutex serializes them all.
struct ConnState {
    /// The non-blocking, handshaken socket (write half; the ack reader
    /// owns its own clone).
    stream: Option<TcpStream>,
    /// Reactor registration of the current connection's read half.
    registration: Option<Registration>,
    /// Bumped on every successful (re)connect; tickets carry it so a
    /// stale connection's acks can never confirm a newer batch.
    epoch: u64,
    /// Last batch/ping sequence assigned (monotonic for the transport's
    /// whole life, surviving reconnects).
    next_seq: u64,
    /// Highest cumulative ack watermark observed for `epoch`.
    acked: u64,
    /// Bytes staged but not yet accepted by the socket (tail of a frame
    /// that hit `WouldBlock`); drained in order before anything else.
    outbox: BytesList,
    /// Submit timestamps of unacked batches, for `batch_micros`.
    inflight_at: VecDeque<(u64, std::time::Instant)>,
    /// Bumped by every inbound frame; the heartbeat tick skips pinging
    /// when it moved (ack traffic already proves the peer alive).
    activity: u64,
    /// `activity` as of the last heartbeat tick.
    activity_checked: u64,
    /// A ping was sent and its pong (or any other frame) is still due.
    ping_outstanding: bool,
    /// When the last inbound frame arrived (or the connection was
    /// installed). A probed connection is only declared dead once this
    /// is older than `read_timeout` — ticks alone don't tear it down,
    /// which keeps a starved-but-healthy fleet from reconnect-storming
    /// when the reactor can't service every shard within one interval.
    last_inbound: std::time::Instant,
    ever_connected: bool,
}

/// The sending side of a TCP channel. See the module docs for the
/// protocol; construct with [`TcpTransport::connect`].
pub struct TcpTransport {
    local_name: String,
    addr: SocketAddr,
    config: TcpConfig,
    metrics: TransportMetrics,
    state: Mutex<ConnState>,
    /// Signaled on connect, teardown, shutdown, ack progress, and
    /// writable wake-ups; movers park here ([`TcpTransport::wait_ready`],
    /// `wait_progress`, backpressured `submit`).
    changed: Condvar,
    /// Supervisor-only parking (backoff and heartbeat pacing), so the
    /// per-ack `changed` broadcasts don't wake it needlessly.
    sup_wake: Condvar,
    stop: AtomicBool,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .field("connected", &self.state.lock().stream.is_some())
            .finish()
    }
}

/// Reactor handler for the sender's read half: consumes `AckWin`/`Ack`
/// watermarks and `Pong`s for one connection epoch, and flushes the
/// outbox when the socket becomes writable again.
struct AckReader {
    transport: Weak<TcpTransport>,
    epoch: u64,
    io: Mutex<(TcpStream, FrameReader)>,
}

impl Pollable for AckReader {
    fn on_readable(&self) -> bool {
        let Some(transport) = self.transport.upgrade() else {
            return false;
        };
        let mut io = self.io.lock();
        let (stream, reader) = &mut *io;
        loop {
            match reader.poll(stream) {
                Ok(FrameEvent::Idle) => return true,
                Ok(FrameEvent::Closed) | Err(_) => {
                    transport.peer_lost(self.epoch);
                    return false;
                }
                Ok(FrameEvent::Frame(frame)) => {
                    if !transport.on_reply(self.epoch, &frame) {
                        transport.peer_lost(self.epoch);
                        return false;
                    }
                }
            }
        }
    }

    fn on_writable(&self) -> bool {
        let Some(transport) = self.transport.upgrade() else {
            return false;
        };
        transport.socket_writable(self.epoch);
        true
    }
}

impl TcpTransport {
    /// Starts a transport from the queue manager named `local_name`
    /// toward the acceptor at `addr`, spawning the connection supervisor.
    /// Metrics land in `registry` under `mq.transport.*`.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] if the supervisor thread cannot be
    /// spawned.
    pub fn connect(
        local_name: &str,
        addr: SocketAddr,
        config: TcpConfig,
        registry: &MetricsRegistry,
    ) -> MqResult<Arc<TcpTransport>> {
        let transport = Arc::new(TcpTransport {
            local_name: local_name.to_owned(),
            addr,
            config,
            metrics: TransportMetrics::registered(registry),
            state: Mutex::new(ConnState {
                stream: None,
                registration: None,
                epoch: 0,
                next_seq: 0,
                acked: 0,
                outbox: BytesList::new(),
                inflight_at: VecDeque::new(),
                activity: 0,
                activity_checked: 0,
                ping_outstanding: false,
                last_inbound: std::time::Instant::now(),
                ever_connected: false,
            }),
            changed: Condvar::new(),
            sup_wake: Condvar::new(),
            stop: AtomicBool::new(false),
            supervisor: Mutex::new(None),
        });
        let clone = transport.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mq-tcp-supervisor-{addr}"))
            .spawn(move || clone.supervise())
            .map_err(|e| transport_error(addr.to_string(), format!("spawn supervisor: {e}")))?;
        *transport.supervisor.lock() = Some(handle);
        Ok(transport)
    }

    /// Whether a handshaken connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.state.lock().stream.is_some()
    }

    /// Test/fault hook: drops the current connection (if any) as if the
    /// network failed; the supervisor will reconnect with backoff.
    pub fn kill_connection(&self) {
        let mut st = self.state.lock();
        self.teardown_locked(&mut st);
    }

    /// Supervisor loop: dial + handshake while disconnected (exponential
    /// backoff between failures), heartbeat pacing while connected. All
    /// waiting is condvar-parked on `sup_wake`, so shutdown and teardowns
    /// wake it immediately while the high-rate ack broadcasts on
    /// `changed` never touch it.
    fn supervise(self: Arc<Self>) {
        let mut backoff = self.config.backoff_initial;
        while !self.stop.load(Ordering::SeqCst) {
            let connected = self.is_connected();
            if connected {
                let timed_out = {
                    let mut st = self.state.lock();
                    self.sup_wake
                        .wait_for(&mut st, self.config.heartbeat_interval)
                        .timed_out()
                };
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                if timed_out {
                    self.heartbeat();
                }
                continue;
            }
            match self.dial() {
                Ok(stream) => {
                    if !self.install_connection(stream) {
                        let mut st = self.state.lock();
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        self.sup_wake.wait_for(&mut st, backoff);
                        backoff = (backoff * 2).min(self.config.backoff_max);
                        continue;
                    }
                    backoff = self.config.backoff_initial;
                }
                Err(()) => {
                    let mut st = self.state.lock();
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    self.sup_wake.wait_for(&mut st, backoff);
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
            }
        }
    }

    /// Flips the freshly handshaken `stream` non-blocking, registers its
    /// read half with the reactor under a new epoch, and publishes it as
    /// the live connection. `false` means installation failed and the
    /// supervisor should back off.
    fn install_connection(self: &Arc<Self>, stream: TcpStream) -> bool {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        }
        let Ok(read_half) = stream.try_clone() else {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        };
        let mut st = self.state.lock();
        if self.stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            return false;
        }
        st.epoch += 1;
        st.acked = 0;
        st.outbox = BytesList::new();
        st.inflight_at.clear();
        st.ping_outstanding = false;
        st.activity_checked = st.activity;
        st.last_inbound = std::time::Instant::now();
        let reader = Arc::new(AckReader {
            transport: Arc::downgrade(self),
            epoch: st.epoch,
            io: Mutex::new((read_half, FrameReader::new())),
        });
        match Reactor::global().register(&stream, reader) {
            Ok(registration) => {
                st.registration = Some(registration);
                st.stream = Some(stream);
                if st.ever_connected {
                    self.metrics.reconnects.incr();
                }
                st.ever_connected = true;
                self.metrics.connects.incr();
                self.changed.notify_all();
                true
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
                false
            }
        }
    }

    /// One dial + handshake attempt. Counts `handshake_failures` for
    /// post-connect protocol failures (refused dials are just backoff).
    fn dial(&self) -> Result<TcpStream, ()> {
        let mut stream =
            TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(|_| ())?;
        let _ = stream.set_nodelay(true);
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
        {
            return Err(());
        }
        match self.handshake(&mut stream) {
            Ok(()) => Ok(stream),
            Err(()) => {
                self.metrics.handshake_failures.incr();
                let _ = stream.shutdown(Shutdown::Both);
                Err(())
            }
        }
    }

    /// Sends `Hello`, awaits `HelloAck`, verifies the peer's name. Runs
    /// on the still-blocking socket, before the reactor takes over.
    fn handshake(&self, stream: &mut TcpStream) -> Result<(), ()> {
        let hello = Frame::hello(&self.local_name).encode().map_err(|_| ())?;
        stream.write_all(&hello).map_err(|_| ())?;
        let mut reader = FrameReader::new();
        let reply = match reader.poll(stream) {
            Ok(FrameEvent::Frame(f)) if f.kind == FrameKind::HelloAck => f,
            _ => return Err(()),
        };
        let peer = reply.decode_handshake().map_err(|_| ())?;
        if let Some(expected) = &self.config.expected_peer {
            if &peer != expected {
                return Err(());
            }
        }
        Ok(())
    }

    /// One reply frame from the reactor-side reader. `false` drops the
    /// connection (protocol violation or stale epoch).
    fn on_reply(&self, epoch: u64, frame: &Frame) -> bool {
        let mut st = self.state.lock();
        if st.epoch != epoch {
            return false;
        }
        st.activity = st.activity.wrapping_add(1);
        st.last_inbound = std::time::Instant::now();
        match frame.kind {
            FrameKind::Ack | FrameKind::AckWin => {
                if frame.decode_ack().is_err() {
                    return false;
                }
                self.metrics.acks_received.incr();
                st.ping_outstanding = false;
                if frame.seq > st.acked {
                    st.acked = frame.seq;
                    let now = std::time::Instant::now();
                    while st
                        .inflight_at
                        .front()
                        .is_some_and(|(seq, _)| *seq <= frame.seq)
                    {
                        if let Some((_, at)) = st.inflight_at.pop_front() {
                            self.metrics.batch_micros.record_duration(now - at);
                        }
                    }
                    self.metrics.window_depth.set(st.inflight_at.len() as u64);
                }
                self.changed.notify_all();
                true
            }
            FrameKind::Pong => {
                st.ping_outstanding = false;
                self.metrics.heartbeats.incr();
                true
            }
            _ => false,
        }
    }

    /// The reader saw the connection close or corrupt. If it was still
    /// the live connection this is a lost peer: counted with the
    /// heartbeat misses (same signal — an established peer went away
    /// without acking) and torn down so the supervisor re-dials.
    fn peer_lost(&self, epoch: u64) {
        let mut st = self.state.lock();
        if st.epoch == epoch && st.stream.is_some() {
            self.metrics.heartbeat_misses.incr();
            self.teardown_locked(&mut st);
        }
    }

    /// Writable wake-up from the reactor: drain the parked outbox and
    /// wake any `submit` stalled on backpressure.
    fn socket_writable(&self, epoch: u64) {
        let mut st = self.state.lock();
        if st.epoch != epoch || st.stream.is_none() {
            return;
        }
        if let FlushOutcome::Dead = self.flush_locked(&mut st) {
            self.teardown_locked(&mut st);
        }
        self.changed.notify_all();
    }

    /// Pushes the staged outbox onto the socket; arms a writable wake-up
    /// when the socket is full.
    fn flush_locked(&self, st: &mut ConnState) -> FlushOutcome {
        let ConnState {
            stream,
            outbox,
            registration,
            ..
        } = st;
        let Some(stream) = stream.as_mut() else {
            return FlushOutcome::Dead;
        };
        flush_outbox(stream, outbox, registration.as_ref())
    }

    /// Heartbeat tick: probe only when the connection has been silent
    /// for a whole interval (inbound acks/pongs already prove liveness).
    /// An outstanding probe is a miss only once the silence has lasted
    /// `read_timeout` — tick counting alone would false-positive under
    /// scheduler starvation (many connections, few cores), where a
    /// healthy peer's pong can lag several intervals behind. When the
    /// socket is backed up the flag alone acts as the probe — no ping
    /// bytes are queued behind the jam, but a peer that stays silent
    /// past the deadline is still declared gone.
    fn heartbeat(&self) {
        let mut st = self.state.lock();
        if st.stream.is_none() {
            return;
        }
        if st.activity != st.activity_checked {
            st.activity_checked = st.activity;
            return;
        }
        if st.ping_outstanding {
            if st.last_inbound.elapsed() >= self.config.read_timeout {
                self.metrics.heartbeat_misses.incr();
                self.teardown_locked(&mut st);
            }
            return;
        }
        st.ping_outstanding = true;
        if !st.outbox.is_empty() {
            return;
        }
        st.next_seq += 1;
        let seq = st.next_seq;
        let Ok(wire) = Frame::ping(seq).encode() else {
            return;
        };
        st.outbox.push(wire);
        if let FlushOutcome::Dead = self.flush_locked(&mut st) {
            self.metrics.heartbeat_misses.incr();
            self.teardown_locked(&mut st);
        }
    }

    /// Drops the connection and wakes everyone parked on `changed`
    /// (movers) and `sup_wake` (the supervisor, to re-dial).
    fn teardown_locked(&self, st: &mut ConnState) {
        if let Some(stream) = st.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(registration) = st.registration.take() {
            registration.deregister();
        }
        st.outbox = BytesList::new();
        st.inflight_at.clear();
        st.ping_outstanding = false;
        self.metrics.window_depth.set(0);
        self.changed.notify_all();
        self.sup_wake.notify_all();
    }

    /// Current progress under an already-held state lock.
    fn progress_locked(st: &ConnState) -> PipelineProgress {
        PipelineProgress {
            epoch: st.epoch,
            acked: st.acked,
            connected: st.stream.is_some(),
        }
    }
}

impl PipelinedTransport for TcpTransport {
    fn submit(&self, batch: &[crate::message::Message]) -> Result<BatchTicket, SubmitError> {
        // Warm the per-message wire cache outside the connection lock:
        // first touch encodes, every later use (this frame, a retransmit
        // after reconnect) reuses the bytes.
        for msg in batch {
            let _ = msg.wire_bytes();
        }
        let mut st = self.state.lock();
        if st.stream.is_none() {
            return Err(SubmitError::Unavailable);
        }
        let seq = st.next_seq + 1;
        let wire = Frame::batch_wire(seq, batch).map_err(|_| SubmitError::Rejected)?;
        st.next_seq = seq;
        let epoch = st.epoch;
        let wire_bytes = wire.len() as u64;
        for segment in wire.segments() {
            st.outbox.push(segment.clone());
        }
        loop {
            match self.flush_locked(&mut st) {
                FlushOutcome::Clean => break,
                FlushOutcome::Blocked => {
                    self.metrics.send_stalls.incr();
                    self.changed.wait_for(&mut st, self.config.read_timeout);
                    if self.stop.load(Ordering::SeqCst)
                        || st.epoch != epoch
                        || st.stream.is_none()
                    {
                        return Err(SubmitError::Unavailable);
                    }
                }
                FlushOutcome::Dead => {
                    self.teardown_locked(&mut st);
                    return Err(SubmitError::Unavailable);
                }
            }
        }
        st.inflight_at.push_back((seq, std::time::Instant::now()));
        self.metrics.window_depth.set(st.inflight_at.len() as u64);
        drop(st);
        self.metrics.batches_sent.incr();
        self.metrics.messages_sent.add(batch.len() as u64);
        self.metrics.bytes_sent.add(wire_bytes);
        Ok(BatchTicket { epoch, seq })
    }

    fn progress(&self) -> PipelineProgress {
        Self::progress_locked(&self.state.lock())
    }

    fn wait_progress(&self, seen: PipelineProgress, timeout: Duration) -> PipelineProgress {
        let mut st = self.state.lock();
        if Self::progress_locked(&st) == seen && !self.stop.load(Ordering::SeqCst) {
            self.changed.wait_for(&mut st, timeout);
        }
        Self::progress_locked(&st)
    }

    fn poke(&self) {
        self.changed.notify_all();
    }

    fn window(&self) -> usize {
        SEND_WINDOW
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> String {
        match &self.config.expected_peer {
            Some(name) => format!("{name}@{}", self.addr),
            None => self.addr.to_string(),
        }
    }

    fn send_batch(&self, batch: &[crate::message::Message]) -> BatchOutcome {
        // Lockstep compatibility shim over the pipelined machinery: one
        // submit, then wait until the watermark covers it.
        let deadline = std::time::Instant::now() + self.config.read_timeout;
        let ticket = match self.submit(batch) {
            Ok(ticket) => ticket,
            // The batch exceeds the frame cap. The mover's byte budget
            // makes this unreachable; Dropped sends the batch back for a
            // re-cut instead of parking the mover.
            Err(SubmitError::Rejected) => return BatchOutcome::Dropped,
            Err(SubmitError::Unavailable) => return BatchOutcome::Unavailable,
        };
        loop {
            let progress = self.progress();
            if progress.covers(ticket) {
                return BatchOutcome::Delivered;
            }
            if !progress.pending(ticket) {
                // Connection died (or reconnected) with the batch's fate
                // unknown: resend after reconnect, receiver dedup keeps
                // already-delivered messages single.
                return BatchOutcome::Unavailable;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                // No ack within the read timeout — same verdict the old
                // blocking read would have reached.
                let mut st = self.state.lock();
                if st.epoch == ticket.epoch {
                    self.teardown_locked(&mut st);
                }
                return BatchOutcome::Unavailable;
            }
            self.wait_progress(progress, deadline - now);
        }
    }

    fn wait_ready(&self, timeout: Duration) -> bool {
        let mut st = self.state.lock();
        if st.stream.is_some() {
            return true;
        }
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        self.changed.wait_for(&mut st, timeout);
        st.stream.is_some()
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut st = self.state.lock();
            self.teardown_locked(&mut st);
        }
        let handle = self.supervisor.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    fn pipeline(&self) -> Option<&dyn PipelinedTransport> {
        Some(self)
    }
}

// -------------------------------------------------------------- receiver --

/// Shared state between the acceptor's accept thread and its
/// reactor-driven connection handlers.
struct AcceptorShared {
    manager: Weak<QueueManager>,
    local_name: String,
    stop: AtomicBool,
    metrics: TransportMetrics,
    /// Clones of live connection sockets, for kick/shutdown.
    conns: Mutex<Vec<TcpStream>>,
    /// Fault-injection: close this many connections right after
    /// delivering a batch but *before* acking it, forcing the sender down
    /// the resend-and-dedup path deterministically.
    drop_before_ack: AtomicU64,
    /// Fault-injection: while set, new connections are refused on accept
    /// (paired with a kick of live ones, this models a partition of the
    /// receiving side that heals without rebinding).
    paused: AtomicBool,
}

/// The receiving side of the TCP transport: one listener per queue
/// manager, delivering into it via the normal channel path.
pub struct TcpAcceptor {
    shared: Arc<AcceptorShared>,
    addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("addr", &self.addr)
            .field("manager", &self.shared.local_name)
            .finish()
    }
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`TcpAcceptor::local_addr`]) and starts accepting channel
    /// connections for `manager`. The acceptor registers itself with the
    /// manager, so [`QueueManager::shutdown`] stops it.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] when the listener cannot be bound.
    pub fn bind(manager: &Arc<QueueManager>, addr: &str) -> MqResult<Arc<TcpAcceptor>> {
        TcpAcceptor::bind_with(manager, addr, DEFAULT_DEDUP_WINDOW)
    }

    /// [`TcpAcceptor::bind`] with an explicit dedup-window size, applied
    /// to the manager-level deduper shared by every transport feeding
    /// `manager` (see [`crate::relay`]).
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] when the listener cannot be bound.
    pub fn bind_with(
        manager: &Arc<QueueManager>,
        addr: &str,
        dedup_window: usize,
    ) -> MqResult<Arc<TcpAcceptor>> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| transport_error(addr, format!("bind failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| transport_error(addr, format!("local_addr failed: {e}")))?;
        if dedup_window != DEFAULT_DEDUP_WINDOW {
            manager.set_dedup_window(dedup_window);
        }
        let shared = Arc::new(AcceptorShared {
            manager: Arc::downgrade(manager),
            local_name: manager.name().to_owned(),
            stop: AtomicBool::new(false),
            metrics: TransportMetrics::registered(manager.obs().metrics()),
            conns: Mutex::new(Vec::new()),
            drop_before_ack: AtomicU64::new(0),
            paused: AtomicBool::new(false),
        });
        let accept_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mq-tcp-acceptor-{local}"))
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(|e| transport_error(addr, format!("spawn acceptor: {e}")))?;
        let acceptor = Arc::new(TcpAcceptor {
            shared,
            addr: local,
            accept_thread: Mutex::new(Some(handle)),
        });
        manager.attach_task(acceptor.clone());
        Ok(acceptor)
    }

    /// The actual bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault-injection hook: the next `n` delivered batches are followed
    /// by a connection close *instead of* an ack, exercising the
    /// sender-resend / receiver-dedup path.
    pub fn inject_drop_before_ack(&self, n: u64) {
        self.shared.drop_before_ack.fetch_add(n, Ordering::SeqCst);
    }

    /// Fault-injection hook: hard-closes every live connection, as if the
    /// network between the managers failed.
    pub fn kick_all(&self) {
        let mut conns = self.shared.conns.lock();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Fault-injection hook: while paused, new connections are refused at
    /// accept time (senders keep reconnect-looping and back off). Combined
    /// with [`TcpAcceptor::kick_all`] this partitions the receiving side;
    /// unpausing heals it without rebinding the listener.
    pub fn set_paused(&self, paused: bool) {
        self.shared.paused.store(paused, Ordering::SeqCst);
    }

    /// Name of the queue manager this acceptor feeds.
    pub fn manager_name(&self) -> &str {
        &self.shared.local_name
    }

    /// Stops accepting and closes live connections (the reactor reaps
    /// their handlers on the resulting close events). Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread: accept() is blocking, so poke it with a
        // throwaway local connection.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200)) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        self.kick_all();
    }
}

impl crate::qmgr::ManagedTask for TcpAcceptor {
    fn shutdown(&self) {
        TcpAcceptor::shutdown(self);
    }
}

/// Accept loop: registers each connection with the reactor; no
/// per-connection thread.
fn accept_loop(shared: &Arc<AcceptorShared>, listener: &TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        if shared.paused.load(Ordering::SeqCst) {
            // Partitioned: refuse the connection; the sender's supervisor
            // keeps retrying and succeeds once the fault heals.
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        let Ok(kick_clone) = stream.try_clone() else {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        };
        let Ok(register_clone) = stream.try_clone() else {
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        };
        shared.conns.lock().push(kick_clone);
        let conn = Arc::new(AcceptorConn {
            shared: shared.clone(),
            io: Mutex::new(ConnIo {
                stream,
                reader: FrameReader::new(),
                served_hello: false,
                outbox: BytesList::new(),
                ack_watermark: 0,
                ack_accepted: 0,
                ack_deduplicated: 0,
                ack_due: false,
            }),
            registration: OnceLock::new(),
        });
        match Reactor::global().register(&register_clone, conn.clone()) {
            Ok(registration) => {
                let _ = conn.registration.set(registration);
                // Close the race where a flush hit `WouldBlock` before
                // the registration landed: re-arm now that it can.
                let io = conn.io.lock();
                if !io.outbox.is_empty() {
                    if let Some(reg) = conn.registration.get() {
                        reg.want_write();
                    }
                }
            }
            Err(_) => {
                let _ = register_clone.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Per-connection receiver state, all under one lock (connection-local;
/// shard threads and `kick_all` never contend beyond it).
struct ConnIo {
    stream: TcpStream,
    reader: FrameReader,
    served_hello: bool,
    /// Unflushed reply bytes (hello-ack, pongs, coalesced acks).
    outbox: BytesList,
    /// Highest batch sequence processed since the connection opened.
    ack_watermark: u64,
    /// Accepted / deduplicated counts since the last ack was emitted.
    ack_accepted: u64,
    ack_deduplicated: u64,
    /// Batches were processed since the last ack: one coalesced `AckWin`
    /// is due at the end of the current readable burst.
    ack_due: bool,
}

/// Reactor handler for one accepted connection: handshake, batch
/// delivery, coalesced watermark acks, and heartbeat replies all run in
/// the readiness callbacks.
struct AcceptorConn {
    shared: Arc<AcceptorShared>,
    io: Mutex<ConnIo>,
    registration: OnceLock<Registration>,
}

impl AcceptorConn {
    /// Processes frames until the socket runs dry. `false` drops the
    /// connection.
    fn drain_frames(&self, io: &mut ConnIo) -> bool {
        loop {
            let ConnIo { stream, reader, .. } = &mut *io;
            match reader.poll(stream) {
                Ok(FrameEvent::Idle) => return true,
                Ok(FrameEvent::Closed) | Err(_) => return false,
                Ok(FrameEvent::Frame(frame)) => {
                    if !self.serve_frame(io, &frame) {
                        return false;
                    }
                }
            }
        }
    }

    fn serve_frame(&self, io: &mut ConnIo, frame: &Frame) -> bool {
        match frame.kind {
            FrameKind::Hello if !io.served_hello => {
                if frame.decode_handshake().is_err() {
                    return false;
                }
                let Ok(ack) = Frame::hello_ack(&self.shared.local_name).encode() else {
                    return false;
                };
                io.outbox.push(ack);
                io.served_hello = true;
                true
            }
            FrameKind::Ping if io.served_hello => match Frame::pong(frame.seq).encode() {
                Ok(pong) => {
                    io.outbox.push(pong);
                    true
                }
                Err(_) => false,
            },
            FrameKind::Batch if io.served_hello => self.serve_batch(io, frame),
            // A missing/second handshake or a frame kind that only flows
            // sender-ward is a protocol violation: drop the line.
            _ => false,
        }
    }

    /// Delivers one batch (dedup + enqueue) and folds it into the
    /// pending coalesced ack. `false` means the connection must be
    /// dropped (delivery failure or injected fault) *without* acking —
    /// the sender rolls back and resends, and dedup keeps it single.
    fn serve_batch(&self, io: &mut ConnIo, frame: &Frame) -> bool {
        let Some(manager) = self.shared.manager.upgrade() else {
            return false;
        };
        let Ok(messages) = frame.decode_batch() else {
            return false;
        };
        let mut accepted = 0u64;
        let mut deduplicated = 0u64;
        for msg in messages {
            match deliver_envelope(&manager, msg) {
                Ok(RelayOutcome::Duplicate) => {
                    deduplicated += 1;
                    self.shared.metrics.dedup_dropped.incr();
                }
                Ok(_) => accepted += 1,
                // Local put failure (manager stopping, journal error):
                // leave the burst unacked so the sender retries.
                Err(_) => return false,
            }
        }
        self.shared.metrics.batches_received.incr();
        self.shared.metrics.messages_received.add(accepted);
        self.shared
            .metrics
            .bytes_received
            .add(frame.payload.len() as u64);
        if self
            .shared
            .drop_before_ack
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return false;
        }
        io.ack_watermark = io.ack_watermark.max(frame.seq);
        io.ack_accepted += accepted;
        io.ack_deduplicated += deduplicated;
        io.ack_due = true;
        true
    }

    /// Emits the coalesced `AckWin` for everything processed this burst
    /// (one frame regardless of how many batches landed) and pushes the
    /// outbox onto the wire. `false` drops the connection.
    fn flush_replies(&self, io: &mut ConnIo) -> bool {
        if io.ack_due {
            io.ack_due = false;
            let accepted = std::mem::take(&mut io.ack_accepted);
            let deduplicated = std::mem::take(&mut io.ack_deduplicated);
            match Frame::ack_win(io.ack_watermark, accepted, deduplicated).encode() {
                Ok(wire) => io.outbox.push(wire),
                Err(_) => return false,
            }
        }
        let ConnIo { stream, outbox, .. } = &mut *io;
        match flush_outbox(stream, outbox, self.registration.get()) {
            FlushOutcome::Clean | FlushOutcome::Blocked => true,
            FlushOutcome::Dead => false,
        }
    }

    fn close(&self, io: &mut ConnIo) {
        if !io.served_hello {
            self.shared.metrics.handshake_failures.incr();
        }
        let _ = io.stream.shutdown(Shutdown::Both);
    }
}

impl Pollable for AcceptorConn {
    fn on_readable(&self) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            let io = self.io.lock();
            let _ = io.stream.shutdown(Shutdown::Both);
            return false;
        }
        let mut io = self.io.lock();
        if !self.drain_frames(&mut io) || !self.flush_replies(&mut io) {
            self.close(&mut io);
            return false;
        }
        true
    }

    fn on_writable(&self) -> bool {
        let mut io = self.io.lock();
        if !self.flush_replies(&mut io) {
            self.close(&mut io);
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::qmgr::QueueManager;
    use crate::qmgr::{XMIT_DEST_MANAGER_PROPERTY, XMIT_DEST_QUEUE_PROPERTY};
    use std::time::Instant;

    fn manager(name: &str) -> Arc<QueueManager> {
        let qm = QueueManager::builder(name).build().unwrap();
        qm.create_queue("Q.IN").unwrap();
        qm
    }

    fn envelope(text: &str) -> Message {
        Message::text(text)
            .persistent(true)
            .property(XMIT_DEST_QUEUE_PROPERTY, "Q.IN")
            .property(XMIT_DEST_MANAGER_PROPERTY, "QM.RECV")
            .build()
    }

    fn quick_config(peer: &str) -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(1000),
            heartbeat_interval: Duration::from_millis(30),
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            expected_peer: Some(peer.to_owned()),
        }
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn batch_crosses_loopback_socket() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)), "connects");
        let batch = vec![envelope("m1"), envelope("m2"), envelope("m3")];
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Delivered);
        let q = recv.queue("Q.IN").unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(registry.snapshot().counter("mq.transport.batches_sent"), 1);
        assert_eq!(
            recv.obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.messages_received"),
            3
        );
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn stripped_envelope_headers_do_not_leak() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert_eq!(tx.send_batch(&[envelope("hdr")]), BatchOutcome::Delivered);
        let msg = recv
            .get("Q.IN", crate::queue::Wait::NoWait)
            .unwrap()
            .unwrap();
        assert!(msg.str_property(XMIT_DEST_QUEUE_PROPERTY).is_none());
        assert!(msg.str_property(XMIT_DEST_MANAGER_PROPERTY).is_none());
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn pipelined_window_delivers_and_tracks_progress() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        let pipe: &dyn PipelinedTransport = tx.pipeline().unwrap();
        // Submit a burst of batches without waiting for any ack.
        let mut last: Option<BatchTicket> = None;
        for i in 0..8 {
            let batch = vec![envelope(&format!("w{i}a")), envelope(&format!("w{i}b"))];
            let ticket = pipe.submit(&batch).unwrap();
            if let Some(prev) = last {
                assert!(ticket.seq > prev.seq, "sequences are monotonic");
                assert_eq!(ticket.epoch, prev.epoch, "same connection epoch");
            }
            last = Some(ticket);
        }
        let last = last.unwrap();
        // The cumulative watermark must sweep over every ticket.
        assert!(
            wait_until(Duration::from_secs(5), || pipe.progress().covers(last)),
            "watermark covers the whole window"
        );
        assert_eq!(recv.queue("Q.IN").unwrap().depth(), 16);
        let sent = registry.snapshot().counter("mq.transport.batches_sent");
        let acks = registry.snapshot().counter("mq.transport.acks_received");
        assert_eq!(sent, 8);
        assert!(acks >= 1, "at least one cumulative ack");
        // The watermark is final: progress still covers after shutdown.
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn drop_before_ack_resend_is_deduplicated() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        acceptor.inject_drop_before_ack(1);
        let batch = vec![envelope("once-a"), envelope("once-b")];
        // First attempt: delivered on the receiver but the ack never
        // arrives, so the sender sees Unavailable and must retry.
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Unavailable);
        assert!(
            wait_until(Duration::from_secs(5), || tx.is_connected()),
            "supervisor reconnects"
        );
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Delivered);
        let q = recv.queue("Q.IN").unwrap();
        assert_eq!(q.depth(), 2, "no duplicates after resend");
        let snap = recv.obs().metrics().snapshot();
        assert_eq!(snap.counter("mq.transport.dedup_dropped"), 2);
        assert!(registry.snapshot().counter("mq.transport.reconnects") >= 1);
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn heartbeats_flow_and_misses_tear_down() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert!(
            wait_until(Duration::from_secs(5), || registry
                .snapshot()
                .counter("mq.transport.heartbeats")
                >= 2),
            "pings round-trip on an idle connection"
        );
        // Stop the acceptor entirely: the peer is gone — detected either
        // by the reader seeing the close or by an unanswered ping.
        acceptor.shutdown();
        assert!(
            wait_until(Duration::from_secs(10), || registry
                .snapshot()
                .counter("mq.transport.heartbeat_misses")
                >= 1),
            "lost peer detected"
        );
        tx.shutdown();
    }

    #[test]
    fn handshake_rejects_unexpected_peer_name() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.SOMEONE.ELSE"),
            &registry,
        )
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || registry
                .snapshot()
                .counter("mq.transport.handshake_failures")
                >= 2),
            "dial keeps failing on peer-name mismatch"
        );
        assert!(!tx.is_connected());
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn acceptor_shutdown_is_idempotent() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        acceptor.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn garbage_bytes_do_not_kill_the_acceptor() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        {
            let mut stream = TcpStream::connect(acceptor.local_addr()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let _ = stream.shutdown(Shutdown::Both);
        }
        assert!(
            wait_until(Duration::from_secs(5), || recv
                .obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.handshake_failures")
                >= 1),
            "garbage counted as a failed handshake"
        );
        // A well-behaved client still gets through afterwards.
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert_eq!(tx.send_batch(&[envelope("ok")]), BatchOutcome::Delivered);
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn acceptor_restart_during_retry_does_not_double_deliver() {
        // The receiver delivers a batch but dies (acceptor + manager)
        // before acking. The sender retries against the rebuilt manager:
        // the journal-reseeded (origin, id) dedup window must drop the
        // retry — exactly-once across a receiving-process restart.
        let journal = crate::journal::MemJournal::new();
        let recv = QueueManager::builder("QM.RECV")
            .journal(journal.clone())
            .build()
            .unwrap();
        recv.create_queue("Q.IN").unwrap();
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        acceptor.inject_drop_before_ack(1);
        let batch = vec![envelope("exactly-once")];
        // Delivered and journaled on the receiver, but never acked.
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Unavailable);
        tx.shutdown();
        acceptor.shutdown();
        recv.crash();

        let recv2 = QueueManager::builder("QM.RECV")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(recv2.queue("Q.IN").unwrap().depth(), 1, "recovered");
        let acceptor2 = TcpAcceptor::bind(&recv2, "127.0.0.1:0").unwrap();
        let registry2 = MetricsRegistry::new();
        let tx2 = TcpTransport::connect(
            "QM.SEND",
            acceptor2.local_addr(),
            quick_config("QM.RECV"),
            &registry2,
        )
        .unwrap();
        assert!(tx2.wait_ready(Duration::from_secs(5)));
        // The sender never saw an ack, so it resends the same envelope.
        assert_eq!(tx2.send_batch(&batch), BatchOutcome::Delivered);
        assert_eq!(
            recv2.queue("Q.IN").unwrap().depth(),
            1,
            "retry across restart must not double-deliver"
        );
        assert_eq!(
            recv2
                .obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.dedup_dropped"),
            1
        );
        tx2.shutdown();
        acceptor2.shutdown();
    }
}
