//! Real sockets: a TCP [`Transport`] for channel traffic.
//!
//! Two halves cooperate:
//!
//! * [`TcpTransport`] — the sending side. A connection supervisor thread
//!   owns the lifecycle: it dials the peer (with a connect timeout),
//!   performs the `Hello`/`HelloAck` handshake (verifying magic, version
//!   and — when configured — the peer's queue-manager name), and while the
//!   connection is healthy issues `Ping`/`Pong` heartbeats. Any failure
//!   tears the connection down and the supervisor re-dials with
//!   exponential backoff (condvar-parked, never sleep-polled). The channel
//!   mover calls [`TcpTransport::send_batch`], which writes one `Batch`
//!   frame and waits for its sequence-matched `Ack`.
//!
//! * [`TcpAcceptor`] — the receiving side, one per listening queue
//!   manager. An accept thread spawns a handler per connection; handlers
//!   parse frames incrementally (surviving read-timeout ticks mid-frame)
//!   and hand each message to [`QueueManager::accept_envelope`] — the
//!   relay seam every transport converges on, which deduplicates,
//!   delivers locally, or relays toward another manager through the same
//!   journal/obs path in-process delivery uses. The `Ack` is written only
//!   after every message in the batch is enqueued.
//!
//! ## Delivery guarantee
//!
//! The sender commits its transmission-queue gets only after the ack, so
//! a connection lost mid-batch leaves the messages in the transmission
//! queue and they are resent after reconnect — at-least-once. The
//! receiving manager's [`crate::relay`] deduper remembers recently
//! accepted *(origin manager, message id)* keys and silently drops
//! resends of messages that made it in before the connection died —
//! at-most-once across connection failures, and (because the window is
//! reseeded from the journal on recovery) across receiver restarts too.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::qmgr::QueueManager;
use crate::relay::RelayOutcome;
use crate::stats::MetricsRegistry;
use crate::transport::frame::{Frame, FrameEvent, FrameKind, FrameReader};
use crate::transport::{deliver_envelope, transport_error, BatchOutcome, Transport, TransportMetrics};
use crate::MqResult;

/// Tuning for the sending side of a TCP channel.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// Socket read timeout: the longest a sender waits for an ack, pong,
    /// or handshake reply before declaring the connection dead.
    pub read_timeout: Duration,
    /// Interval between heartbeat pings on an idle-healthy connection.
    pub heartbeat_interval: Duration,
    /// First reconnect backoff; doubles per failure up to `backoff_max`.
    pub backoff_initial: Duration,
    /// Ceiling for the reconnect backoff.
    pub backoff_max: Duration,
    /// Peer queue-manager name the handshake must present; `None` skips
    /// the check (used by tests and generic tooling).
    pub expected_peer: Option<String>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(1000),
            read_timeout: Duration::from_millis(2000),
            heartbeat_interval: Duration::from_millis(500),
            backoff_initial: Duration::from_millis(10),
            backoff_max: Duration::from_millis(2000),
            expected_peer: None,
        }
    }
}

/// How long acceptor-side reads block before re-checking the stop flag.
const ACCEPT_READ_TICK: Duration = Duration::from_millis(100);

/// How many read ticks a handler waits for the client's `Hello`.
const HANDSHAKE_TICKS: u32 = 50;

/// Default size of the receiver's dedup window (re-exported from the
/// relay module, which owns the manager-level deduper these days).
pub use crate::relay::DEFAULT_DEDUP_WINDOW;

// ---------------------------------------------------------------- sender --

/// Connection state shared between the mover, the supervisor, and
/// shutdown; guarded by one mutex so writes and ack reads are serialized.
struct ConnState {
    stream: Option<TcpStream>,
    seq: u64,
    ever_connected: bool,
}

/// The sending side of a TCP channel. See the module docs for the
/// protocol; construct with [`TcpTransport::connect`].
pub struct TcpTransport {
    local_name: String,
    addr: SocketAddr,
    config: TcpConfig,
    metrics: TransportMetrics,
    state: Mutex<ConnState>,
    /// Signaled on connect, teardown, and shutdown; both the supervisor's
    /// backoff/heartbeat waits and [`TcpTransport::wait_ready`] park here.
    changed: Condvar,
    stop: AtomicBool,
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("addr", &self.addr)
            .field("connected", &self.state.lock().stream.is_some())
            .finish()
    }
}

impl TcpTransport {
    /// Starts a transport from the queue manager named `local_name`
    /// toward the acceptor at `addr`, spawning the connection supervisor.
    /// Metrics land in `registry` under `mq.transport.*`.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] if the supervisor thread cannot be
    /// spawned.
    pub fn connect(
        local_name: &str,
        addr: SocketAddr,
        config: TcpConfig,
        registry: &MetricsRegistry,
    ) -> MqResult<Arc<TcpTransport>> {
        let transport = Arc::new(TcpTransport {
            local_name: local_name.to_owned(),
            addr,
            config,
            metrics: TransportMetrics::registered(registry),
            state: Mutex::new(ConnState {
                stream: None,
                seq: 0,
                ever_connected: false,
            }),
            changed: Condvar::new(),
            stop: AtomicBool::new(false),
            supervisor: Mutex::new(None),
        });
        let clone = transport.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mq-tcp-supervisor-{addr}"))
            .spawn(move || clone.supervise())
            .map_err(|e| transport_error(addr.to_string(), format!("spawn supervisor: {e}")))?;
        *transport.supervisor.lock() = Some(handle);
        Ok(transport)
    }

    /// Whether a handshaken connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.state.lock().stream.is_some()
    }

    /// Test/fault hook: drops the current connection (if any) as if the
    /// network failed; the supervisor will reconnect with backoff.
    pub fn kill_connection(&self) {
        let mut st = self.state.lock();
        self.teardown_locked(&mut st);
    }

    /// Supervisor loop: dial + handshake while disconnected (exponential
    /// backoff between failures), heartbeat while connected. All waiting
    /// is condvar-parked on `changed`, so shutdown and teardowns wake it
    /// immediately.
    fn supervise(self: Arc<Self>) {
        let mut backoff = self.config.backoff_initial;
        while !self.stop.load(Ordering::SeqCst) {
            let connected = self.is_connected();
            if connected {
                let timed_out = {
                    let mut st = self.state.lock();
                    self.changed
                        .wait_for(&mut st, self.config.heartbeat_interval)
                        .timed_out()
                };
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                if timed_out {
                    self.heartbeat();
                }
                continue;
            }
            match self.dial() {
                Ok(stream) => {
                    let mut st = self.state.lock();
                    if self.stop.load(Ordering::SeqCst) {
                        let _ = stream.shutdown(Shutdown::Both);
                        break;
                    }
                    if st.ever_connected {
                        self.metrics.reconnects.incr();
                    }
                    st.ever_connected = true;
                    st.stream = Some(stream);
                    self.metrics.connects.incr();
                    backoff = self.config.backoff_initial;
                    self.changed.notify_all();
                }
                Err(()) => {
                    let mut st = self.state.lock();
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    self.changed.wait_for(&mut st, backoff);
                    backoff = (backoff * 2).min(self.config.backoff_max);
                }
            }
        }
    }

    /// One dial + handshake attempt. Counts `handshake_failures` for
    /// post-connect protocol failures (refused dials are just backoff).
    fn dial(&self) -> Result<TcpStream, ()> {
        let mut stream =
            TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(|_| ())?;
        let _ = stream.set_nodelay(true);
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
        {
            return Err(());
        }
        match self.handshake(&mut stream) {
            Ok(()) => Ok(stream),
            Err(()) => {
                self.metrics.handshake_failures.incr();
                let _ = stream.shutdown(Shutdown::Both);
                Err(())
            }
        }
    }

    /// Sends `Hello`, awaits `HelloAck`, verifies the peer's name.
    fn handshake(&self, stream: &mut TcpStream) -> Result<(), ()> {
        let hello = Frame::hello(&self.local_name).encode().map_err(|_| ())?;
        stream.write_all(&hello).map_err(|_| ())?;
        let mut reader = FrameReader::new();
        let reply = match reader.poll(stream) {
            Ok(FrameEvent::Frame(f)) if f.kind == FrameKind::HelloAck => f,
            _ => return Err(()),
        };
        let peer = reply.decode_handshake().map_err(|_| ())?;
        if let Some(expected) = &self.config.expected_peer {
            if &peer != expected {
                return Err(());
            }
        }
        Ok(())
    }

    /// One ping/pong round trip; failure tears the connection down.
    fn heartbeat(&self) {
        let mut st = self.state.lock();
        if st.stream.is_none() {
            return;
        }
        st.seq += 1;
        let seq = st.seq;
        let ok = match Frame::ping(seq).encode() {
            Ok(wire) => Self::roundtrip(&mut st, &wire, |reply| {
                reply.kind == FrameKind::Pong && reply.seq == seq
            }),
            Err(_) => false,
        };
        if ok {
            self.metrics.heartbeats.incr();
        } else {
            self.metrics.heartbeat_misses.incr();
            self.teardown_locked(&mut st);
        }
    }

    /// Writes the pre-encoded `wire` bytes and reads one reply frame,
    /// returning whether `accept` matched it. Any I/O or framing failure
    /// reports `false`.
    fn roundtrip(st: &mut ConnState, wire: &[u8], accept: impl Fn(&Frame) -> bool) -> bool {
        let Some(stream) = st.stream.as_mut() else {
            return false;
        };
        if stream.write_all(wire).is_err() {
            return false;
        }
        let mut reader = FrameReader::new();
        // Replies are strictly request/response on this half-duplex use of
        // the stream, so a fresh reader per round trip cannot desync.
        match reader.poll(stream) {
            Ok(FrameEvent::Frame(reply)) => accept(&reply),
            _ => false,
        }
    }

    /// Drops the connection and wakes everyone parked on `changed`
    /// (supervisor to re-dial, movers waiting in `wait_ready`).
    fn teardown_locked(&self, st: &mut ConnState) {
        if let Some(stream) = st.stream.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        self.changed.notify_all();
    }
}

impl Transport for TcpTransport {
    fn peer(&self) -> String {
        match &self.config.expected_peer {
            Some(name) => format!("{name}@{}", self.addr),
            None => self.addr.to_string(),
        }
    }

    fn send_batch(&self, batch: &[crate::message::Message]) -> BatchOutcome {
        let started = std::time::Instant::now();
        let mut st = self.state.lock();
        if st.stream.is_none() {
            return BatchOutcome::Unavailable;
        }
        st.seq += 1;
        let seq = st.seq;
        let frame = Frame::batch(seq, batch);
        let Ok(wire) = frame.encode() else {
            // The batch exceeds the frame cap. The mover's byte budget
            // makes this unreachable; if it does happen, refusing here
            // (rather than emitting a frame the peer rejects) keeps the
            // connection healthy, and Dropped sends the batch back for a
            // re-cut instead of parking the mover.
            return BatchOutcome::Dropped;
        };
        let wire_bytes = wire.len() as u64;
        let acked = Self::roundtrip(&mut st, &wire, |reply| {
            reply.kind == FrameKind::Ack && reply.seq == seq && reply.decode_ack().is_ok()
        });
        if !acked {
            // No ack means unknown fate: the connection is torn down and
            // the batch will be resent after reconnect; the receiver's
            // dedup keeps already-delivered messages single.
            self.teardown_locked(&mut st);
            return BatchOutcome::Unavailable;
        }
        drop(st);
        self.metrics.batches_sent.incr();
        self.metrics.messages_sent.add(batch.len() as u64);
        self.metrics.bytes_sent.add(wire_bytes);
        self.metrics.batch_micros.record_duration(started.elapsed());
        BatchOutcome::Delivered
    }

    fn wait_ready(&self, timeout: Duration) -> bool {
        let mut st = self.state.lock();
        if st.stream.is_some() {
            return true;
        }
        if self.stop.load(Ordering::SeqCst) {
            return false;
        }
        self.changed.wait_for(&mut st, timeout);
        st.stream.is_some()
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut st = self.state.lock();
            self.teardown_locked(&mut st);
        }
        let handle = self.supervisor.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

// -------------------------------------------------------------- receiver --

/// Shared state between the acceptor's threads.
struct AcceptorShared {
    manager: Weak<QueueManager>,
    local_name: String,
    stop: AtomicBool,
    metrics: TransportMetrics,
    /// Clones of live connection sockets, for kick/shutdown.
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Fault-injection: close this many connections right after
    /// delivering a batch but *before* acking it, forcing the sender down
    /// the resend-and-dedup path deterministically.
    drop_before_ack: AtomicU64,
}

/// The receiving side of the TCP transport: one listener per queue
/// manager, delivering into it via the normal channel path.
pub struct TcpAcceptor {
    shared: Arc<AcceptorShared>,
    addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpAcceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpAcceptor")
            .field("addr", &self.addr)
            .field("manager", &self.shared.local_name)
            .finish()
    }
}

impl TcpAcceptor {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`TcpAcceptor::local_addr`]) and starts accepting channel
    /// connections for `manager`. The acceptor registers itself with the
    /// manager, so [`QueueManager::shutdown`] stops it.
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] when the listener cannot be bound.
    pub fn bind(manager: &Arc<QueueManager>, addr: &str) -> MqResult<Arc<TcpAcceptor>> {
        TcpAcceptor::bind_with(manager, addr, DEFAULT_DEDUP_WINDOW)
    }

    /// [`TcpAcceptor::bind`] with an explicit dedup-window size, applied
    /// to the manager-level deduper shared by every transport feeding
    /// `manager` (see [`crate::relay`]).
    ///
    /// # Errors
    ///
    /// [`crate::MqError::Transport`] when the listener cannot be bound.
    pub fn bind_with(
        manager: &Arc<QueueManager>,
        addr: &str,
        dedup_window: usize,
    ) -> MqResult<Arc<TcpAcceptor>> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| transport_error(addr, format!("bind failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| transport_error(addr, format!("local_addr failed: {e}")))?;
        if dedup_window != DEFAULT_DEDUP_WINDOW {
            manager.set_dedup_window(dedup_window);
        }
        let shared = Arc::new(AcceptorShared {
            manager: Arc::downgrade(manager),
            local_name: manager.name().to_owned(),
            stop: AtomicBool::new(false),
            metrics: TransportMetrics::registered(manager.obs().metrics()),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            drop_before_ack: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("mq-tcp-acceptor-{local}"))
            .spawn(move || accept_loop(&accept_shared, listener))
            .map_err(|e| transport_error(addr, format!("spawn acceptor: {e}")))?;
        let acceptor = Arc::new(TcpAcceptor {
            shared,
            addr: local,
            accept_thread: Mutex::new(Some(handle)),
        });
        manager.attach_task(acceptor.clone());
        Ok(acceptor)
    }

    /// The actual bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault-injection hook: the next `n` delivered batches are followed
    /// by a connection close *instead of* an ack, exercising the
    /// sender-resend / receiver-dedup path.
    pub fn inject_drop_before_ack(&self, n: u64) {
        self.shared.drop_before_ack.fetch_add(n, Ordering::SeqCst);
    }

    /// Fault-injection hook: hard-closes every live connection, as if the
    /// network between the managers failed.
    pub fn kick_all(&self) {
        let mut conns = self.shared.conns.lock();
        for conn in conns.drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    /// Stops accepting, closes live connections, and joins all threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread: accept() is blocking, so poke it with a
        // throwaway local connection.
        if let Ok(stream) = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200)) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.accept_thread.lock().take() {
            let _ = handle.join();
        }
        self.kick_all();
        let handles = std::mem::take(&mut *self.shared.handlers.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl crate::qmgr::ManagedTask for TcpAcceptor {
    fn shutdown(&self) {
        TcpAcceptor::shutdown(self);
    }
}

/// Accept loop: one handler thread per connection.
fn accept_loop(shared: &Arc<AcceptorShared>, listener: TcpListener) {
    while !shared.stop.load(Ordering::SeqCst) {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push(clone);
        }
        let handler_shared = shared.clone();
        if let Ok(handle) = std::thread::Builder::new()
            .name(format!("mq-tcp-handler-{}", handler_shared.local_name))
            .spawn(move || handle_connection(&handler_shared, stream))
        {
            shared.handlers.lock().push(handle);
        }
    }
}

/// Per-connection handler: handshake, then serve batches and pings until
/// the peer disconnects, the stream corrupts, or the acceptor stops.
fn handle_connection(shared: &Arc<AcceptorShared>, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(ACCEPT_READ_TICK)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut reader = FrameReader::new();
    if !serve_handshake(shared, &mut stream, &mut reader) {
        shared.metrics.handshake_failures.incr();
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    loop {
        match reader.poll(&mut stream) {
            Ok(FrameEvent::Idle) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameEvent::Closed) | Err(_) => return,
            Ok(FrameEvent::Frame(frame)) => match frame.kind {
                FrameKind::Ping => {
                    let Ok(pong) = Frame::pong(frame.seq).encode() else {
                        return;
                    };
                    if stream.write_all(&pong).is_err() {
                        return;
                    }
                }
                FrameKind::Batch => {
                    if !serve_batch(shared, &mut stream, &frame) {
                        return;
                    }
                }
                // A second handshake or a frame kind that only flows
                // sender-ward is a protocol violation: drop the line.
                _ => return,
            },
        }
    }
}

/// Waits for the client's `Hello` and replies `HelloAck`; `false` means
/// the handshake failed and the connection must be dropped.
fn serve_handshake(
    shared: &Arc<AcceptorShared>,
    stream: &mut TcpStream,
    reader: &mut FrameReader,
) -> bool {
    for _ in 0..HANDSHAKE_TICKS {
        match reader.poll(stream) {
            Ok(FrameEvent::Idle) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Ok(FrameEvent::Frame(frame)) if frame.kind == FrameKind::Hello => {
                if frame.decode_handshake().is_err() {
                    return false;
                }
                let Ok(ack) = Frame::hello_ack(&shared.local_name).encode() else {
                    return false;
                };
                return stream.write_all(&ack).is_ok();
            }
            _ => return false,
        }
    }
    false
}

/// Delivers one batch (dedup + enqueue) and acks it. `false` means the
/// connection must be dropped (delivery failure or injected fault); the
/// unacked sender will resend.
fn serve_batch(shared: &Arc<AcceptorShared>, stream: &mut TcpStream, frame: &Frame) -> bool {
    let Some(manager) = shared.manager.upgrade() else {
        return false;
    };
    let Ok(messages) = frame.decode_batch() else {
        return false;
    };
    let mut accepted = 0u64;
    let mut deduplicated = 0u64;
    for msg in messages {
        match deliver_envelope(&manager, msg) {
            Ok(RelayOutcome::Duplicate) => {
                deduplicated += 1;
                shared.metrics.dedup_dropped.incr();
            }
            Ok(_) => accepted += 1,
            // Local put failure (manager stopping, journal error): leave
            // the batch unacked so the sender retries after backoff.
            Err(_) => return false,
        }
    }
    shared.metrics.batches_received.incr();
    shared.metrics.messages_received.add(accepted);
    shared.metrics.bytes_received.add(frame.payload.len() as u64);
    if shared
        .drop_before_ack
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
    {
        let _ = stream.shutdown(Shutdown::Both);
        return false;
    }
    let Ok(ack) = Frame::ack(frame.seq, accepted, deduplicated).encode() else {
        return false;
    };
    stream.write_all(&ack).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;
    use crate::qmgr::QueueManager;
    use crate::qmgr::{XMIT_DEST_MANAGER_PROPERTY, XMIT_DEST_QUEUE_PROPERTY};
    use std::time::Instant;

    fn manager(name: &str) -> Arc<QueueManager> {
        let qm = QueueManager::builder(name).build().unwrap();
        qm.create_queue("Q.IN").unwrap();
        qm
    }

    fn envelope(text: &str) -> Message {
        Message::text(text)
            .persistent(true)
            .property(XMIT_DEST_QUEUE_PROPERTY, "Q.IN")
            .property(XMIT_DEST_MANAGER_PROPERTY, "QM.RECV")
            .build()
    }

    fn quick_config(peer: &str) -> TcpConfig {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(1000),
            heartbeat_interval: Duration::from_millis(30),
            backoff_initial: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            expected_peer: Some(peer.to_owned()),
        }
    }

    fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn batch_crosses_loopback_socket() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)), "connects");
        let batch = vec![envelope("m1"), envelope("m2"), envelope("m3")];
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Delivered);
        let q = recv.queue("Q.IN").unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(registry.snapshot().counter("mq.transport.batches_sent"), 1);
        assert_eq!(
            recv.obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.messages_received"),
            3
        );
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn stripped_envelope_headers_do_not_leak() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert_eq!(tx.send_batch(&[envelope("hdr")]), BatchOutcome::Delivered);
        let msg = recv
            .get("Q.IN", crate::queue::Wait::NoWait)
            .unwrap()
            .unwrap();
        assert!(msg.str_property(XMIT_DEST_QUEUE_PROPERTY).is_none());
        assert!(msg.str_property(XMIT_DEST_MANAGER_PROPERTY).is_none());
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn drop_before_ack_resend_is_deduplicated() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        acceptor.inject_drop_before_ack(1);
        let batch = vec![envelope("once-a"), envelope("once-b")];
        // First attempt: delivered on the receiver but the ack never
        // arrives, so the sender sees Unavailable and must retry.
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Unavailable);
        assert!(
            wait_until(Duration::from_secs(5), || tx.is_connected()),
            "supervisor reconnects"
        );
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Delivered);
        let q = recv.queue("Q.IN").unwrap();
        assert_eq!(q.depth(), 2, "no duplicates after resend");
        let snap = recv.obs().metrics().snapshot();
        assert_eq!(snap.counter("mq.transport.dedup_dropped"), 2);
        assert!(registry.snapshot().counter("mq.transport.reconnects") >= 1);
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn heartbeats_flow_and_misses_tear_down() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert!(
            wait_until(Duration::from_secs(5), || registry
                .snapshot()
                .counter("mq.transport.heartbeats")
                >= 2),
            "pings round-trip on an idle connection"
        );
        // Stop the acceptor entirely: the next ping gets no pong.
        acceptor.shutdown();
        assert!(
            wait_until(Duration::from_secs(10), || registry
                .snapshot()
                .counter("mq.transport.heartbeat_misses")
                >= 1),
            "missed heartbeat detected"
        );
        tx.shutdown();
    }

    #[test]
    fn handshake_rejects_unexpected_peer_name() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.SOMEONE.ELSE"),
            &registry,
        )
        .unwrap();
        assert!(
            wait_until(Duration::from_secs(5), || registry
                .snapshot()
                .counter("mq.transport.handshake_failures")
                >= 2),
            "dial keeps failing on peer-name mismatch"
        );
        assert!(!tx.is_connected());
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn acceptor_shutdown_is_idempotent() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        acceptor.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn garbage_bytes_do_not_kill_the_acceptor() {
        let recv = manager("QM.RECV");
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        {
            let mut stream = TcpStream::connect(acceptor.local_addr()).unwrap();
            stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
            let _ = stream.shutdown(Shutdown::Both);
        }
        assert!(
            wait_until(Duration::from_secs(5), || recv
                .obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.handshake_failures")
                >= 1),
            "garbage counted as a failed handshake"
        );
        // A well-behaved client still gets through afterwards.
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        assert_eq!(tx.send_batch(&[envelope("ok")]), BatchOutcome::Delivered);
        tx.shutdown();
        acceptor.shutdown();
    }

    #[test]
    fn acceptor_restart_during_retry_does_not_double_deliver() {
        // The receiver delivers a batch but dies (acceptor + manager)
        // before acking. The sender retries against the rebuilt manager:
        // the journal-reseeded (origin, id) dedup window must drop the
        // retry — exactly-once across a receiving-process restart.
        let journal = crate::journal::MemJournal::new();
        let recv = QueueManager::builder("QM.RECV")
            .journal(journal.clone())
            .build()
            .unwrap();
        recv.create_queue("Q.IN").unwrap();
        let acceptor = TcpAcceptor::bind(&recv, "127.0.0.1:0").unwrap();
        let registry = MetricsRegistry::new();
        let tx = TcpTransport::connect(
            "QM.SEND",
            acceptor.local_addr(),
            quick_config("QM.RECV"),
            &registry,
        )
        .unwrap();
        assert!(tx.wait_ready(Duration::from_secs(5)));
        acceptor.inject_drop_before_ack(1);
        let batch = vec![envelope("exactly-once")];
        // Delivered and journaled on the receiver, but never acked.
        assert_eq!(tx.send_batch(&batch), BatchOutcome::Unavailable);
        tx.shutdown();
        acceptor.shutdown();
        recv.crash();

        let recv2 = QueueManager::builder("QM.RECV")
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(recv2.queue("Q.IN").unwrap().depth(), 1, "recovered");
        let acceptor2 = TcpAcceptor::bind(&recv2, "127.0.0.1:0").unwrap();
        let registry2 = MetricsRegistry::new();
        let tx2 = TcpTransport::connect(
            "QM.SEND",
            acceptor2.local_addr(),
            quick_config("QM.RECV"),
            &registry2,
        )
        .unwrap();
        assert!(tx2.wait_ready(Duration::from_secs(5)));
        // The sender never saw an ack, so it resends the same envelope.
        assert_eq!(tx2.send_batch(&batch), BatchOutcome::Delivered);
        assert_eq!(
            recv2.queue("Q.IN").unwrap().depth(),
            1,
            "retry across restart must not double-deliver"
        );
        assert_eq!(
            recv2
                .obs()
                .metrics()
                .snapshot()
                .counter("mq.transport.dedup_dropped"),
            1
        );
        tx2.shutdown();
        acceptor2.shutdown();
    }
}
