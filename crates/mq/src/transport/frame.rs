//! Wire framing for the TCP transport.
//!
//! Every unit on the socket is a *frame*:
//!
//! ```text
//! ┌─────────────┬──────────────────────────────┬─────────────┐
//! │ len: u32 LE │ body                         │ crc: u32 LE │
//! └─────────────┴──────────────────────────────┴─────────────┘
//!               │ kind: u8 │ seq: u64 LE │ payload …         │
//!               └──────────┴─────────────┴───────────────────┘
//! ```
//!
//! `len` covers the body only; `crc` is [`crate::codec::crc32`] over the
//! body, so a flipped bit anywhere in kind, sequence number or payload is
//! detected before any payload decoding happens. Payloads reuse the
//! [`crate::codec`] primitives (varints, length-prefixed byte strings),
//! and batch payloads carry each [`Message`] through its [`WireEncode`]
//! form — the same encoding the journal trusts.
//!
//! The frame kinds implement a deliberately small protocol:
//!
//! * `Hello` / `HelloAck` — handshake; payload is magic + version + the
//!   queue manager name, each side verifying the other.
//! * `Batch` / `Ack` — a batch of transmission-queue envelopes and its
//!   acknowledgment (sequence-matched, with accepted/deduplicated counts).
//! * `AckWin` — a *cumulative* acknowledgment: its `seq` is a watermark
//!   covering every batch up to and including that sequence number, so a
//!   receiver draining a pipelined window acks once per drain, not once
//!   per batch. Counts are deltas since the previous ack.
//! * `Ping` / `Pong` — heartbeats issued by the connection supervisor.
//!
//! Batch frames are assembled zero-copy by [`Frame::batch_wire`]: the
//! fixed header, count and per-message varint length prefixes live in one
//! small skeleton buffer, the message bodies are the cached wire images
//! off the messages themselves ([`Message::wire_bytes`]), and the whole
//! frame goes to the socket as a [`BytesList`] via `write_vectored` —
//! payload bytes are never copied into a contiguous frame buffer.
//!
//! [`FrameReader`] is an incremental parser over a byte stream: it
//! tolerates short reads and read timeouts (frames split across segments
//! keep accumulating), which lets the acceptor poll its socket with a
//! bounded read timeout and still never lose framing.

use std::fmt;
use std::io::Read;

use bytes::{Bytes, BytesList};

use crate::codec::{
    crc32, crc32_begin, crc32_finish, crc32_update, CodecError, Decoder, Encoder, WireDecode,
};
use crate::message::Message;

/// Protocol magic, first field of every handshake payload (`"CMW1"`).
pub const MAGIC: u32 = 0x434D_5731;

/// Protocol version negotiated in the handshake.
pub const VERSION: u8 = 1;

/// Upper bound on one frame's body, guarding the decoder against
/// allocation bombs from corrupt or hostile length prefixes.
pub const MAX_FRAME_BODY: usize = 16 * 1024 * 1024;

/// Fixed body prefix: kind byte + sequence number.
const BODY_HEADER: usize = 1 + 8;

/// The kind of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameKind {
    /// Client handshake: magic, version, sender queue-manager name.
    Hello,
    /// Server handshake reply: magic, version, receiver name.
    HelloAck,
    /// A batch of transmission-queue envelopes.
    Batch,
    /// Acknowledgment of a batch: accepted + deduplicated counts.
    Ack,
    /// Heartbeat request.
    Ping,
    /// Heartbeat reply.
    Pong,
    /// Cumulative acknowledgment: `seq` is a watermark covering every
    /// batch up to and including it; counts are deltas since the last ack.
    AckWin,
}

// lint: registry-sink frame-kind
impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::HelloAck => 2,
            FrameKind::Batch => 3,
            FrameKind::Ack => 4,
            FrameKind::Ping => 5,
            FrameKind::Pong => 6,
            FrameKind::AckWin => 7,
        }
    }

    fn from_u8(v: u8) -> Result<FrameKind, FrameError> {
        Ok(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Batch,
            4 => FrameKind::Ack,
            5 => FrameKind::Ping,
            6 => FrameKind::Pong,
            7 => FrameKind::AckWin,
            other => return Err(FrameError::BadKind(other)),
        })
    }
}

/// Encoded length of a LEB128 varint.
fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros() as usize).max(1)).div_ceil(7)
}

/// Appends a LEB128 varint to a plain byte vector (skeleton assembly).
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Errors produced while reading or decoding frames.
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameError {
    /// The underlying stream failed (not a timeout; timeouts surface as
    /// [`FrameEvent::Idle`]).
    Io(std::io::Error),
    /// The byte stream violates the framing contract (bad length, CRC
    /// mismatch) and the connection cannot be trusted further.
    Corrupt(&'static str),
    /// A frame body failed to decode.
    Codec(CodecError),
    /// An unknown frame kind byte.
    BadKind(u8),
    /// A handshake payload carried the wrong magic or version.
    BadHandshake(&'static str),
    /// The frame body would exceed [`MAX_FRAME_BODY`]: the peer's decoder
    /// would reject it as implausible, so it must never hit the wire.
    TooLarge {
        /// The body size that was attempted.
        size: usize,
        /// The enforced ceiling ([`MAX_FRAME_BODY`]).
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
            FrameError::Codec(e) => write!(f, "frame payload error: {e}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadHandshake(why) => write!(f, "bad handshake: {why}"),
            FrameError::TooLarge { size, max } => {
                write!(f, "frame body {size} bytes exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

/// One decoded frame.
#[derive(Debug, Clone)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sequence number; pairs batches/pings with their acks/pongs.
    pub seq: u64,
    /// Kind-specific payload bytes.
    pub payload: Bytes,
}

impl Frame {
    fn with_payload(kind: FrameKind, seq: u64, payload: Bytes) -> Frame {
        Frame { kind, seq, payload }
    }

    fn handshake_payload(name: &str) -> Bytes {
        let mut enc = Encoder::new();
        enc.put_u32(MAGIC);
        enc.put_u8(VERSION);
        enc.put_str(name);
        enc.finish()
    }

    /// Builds the client handshake frame carrying `name`.
    pub fn hello(name: &str) -> Frame {
        Frame::with_payload(FrameKind::Hello, 0, Frame::handshake_payload(name))
    }

    /// Builds the server handshake reply carrying `name`.
    pub fn hello_ack(name: &str) -> Frame {
        Frame::with_payload(FrameKind::HelloAck, 0, Frame::handshake_payload(name))
    }

    /// The wire footprint `msg` contributes to a batch payload: its
    /// [`WireEncode`] form plus the varint length prefix
    /// [`Frame::batch`] writes before it. The channel mover uses this to
    /// cut batches on a byte budget before [`Frame::encode`] would refuse
    /// the result.
    pub fn message_wire_len(msg: &Message) -> usize {
        // Served from the message's cached wire image: the budget loop in
        // the channel mover calls this per message and must not re-encode.
        let encoded = msg.wire_len();
        varint_len(encoded as u64) + encoded
    }

    /// Builds a batch frame carrying `messages` under sequence `seq`.
    ///
    /// This flattens into one contiguous payload (tests, diagnostics);
    /// the transport send path uses [`Frame::batch_wire`], which produces
    /// the identical bytes without copying the message bodies.
    pub fn batch(seq: u64, messages: &[Message]) -> Frame {
        let mut enc = Encoder::new();
        enc.put_varint(messages.len() as u64);
        for msg in messages {
            enc.put_bytes(&msg.wire_bytes());
        }
        Frame::with_payload(FrameKind::Batch, seq, enc.finish())
    }

    /// Assembles a batch frame's complete wire form (length, body, CRC)
    /// as a segment list: one small skeleton buffer holds the frame
    /// header, message count and per-message varint length prefixes, and
    /// the message bodies are the cached wire images shared straight off
    /// the [`Message`]s. The result is byte-identical to
    /// `Frame::batch(seq, messages).encode()` but copies no payload
    /// bytes; emit it with `write_vectored`.
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the body would exceed
    /// [`MAX_FRAME_BODY`] (same contract as [`Frame::encode`]).
    pub fn batch_wire(seq: u64, messages: &[Message]) -> Result<BytesList, FrameError> {
        let wires: Vec<Bytes> = messages.iter().map(Message::wire_bytes).collect();
        let mut body_len = BODY_HEADER + varint_len(messages.len() as u64);
        for w in &wires {
            body_len += varint_len(w.len() as u64) + w.len();
        }
        if body_len > MAX_FRAME_BODY {
            return Err(FrameError::TooLarge {
                size: body_len,
                max: MAX_FRAME_BODY,
            });
        }

        // Skeleton: len | kind | seq | count | prefix_1 … prefix_n. Each
        // prefix is later sliced back out (sharing this one allocation)
        // and interleaved with its message body in the segment list.
        let mut skel = Vec::with_capacity(4 + BODY_HEADER + 1 + 5 * wires.len());
        skel.extend_from_slice(&(body_len as u32).to_le_bytes());
        skel.push(FrameKind::Batch.as_u8());
        skel.extend_from_slice(&seq.to_le_bytes());
        push_varint(&mut skel, messages.len() as u64);
        let mut cuts = Vec::with_capacity(wires.len());
        for w in &wires {
            push_varint(&mut skel, w.len() as u64);
            cuts.push(skel.len());
        }
        let skel = Bytes::from(skel);

        let mut list = BytesList::with_capacity(2 + 2 * wires.len());
        let mut prev = 0;
        for (cut, wire) in cuts.into_iter().zip(wires) {
            list.push(skel.slice(prev..cut));
            list.push(wire);
            prev = cut;
        }
        if prev < skel.len() {
            // Empty batch: header + count with no prefixes.
            list.push(skel.slice(prev..skel.len()));
        }

        // CRC over the body only: every segment, minus the 4-byte length
        // prefix that opens the first one.
        let mut crc = crc32_begin();
        for (i, seg) in list.segments().iter().enumerate() {
            let slice: &[u8] = if i == 0 { &seg[4..] } else { seg };
            crc = crc32_update(crc, slice);
        }
        let crc = crc32_finish(crc);
        list.push(Bytes::from(crc.to_le_bytes().to_vec()));
        Ok(list)
    }

    /// Builds the acknowledgment for batch `seq`.
    pub fn ack(seq: u64, accepted: u64, deduplicated: u64) -> Frame {
        let mut enc = Encoder::new();
        enc.put_varint(accepted);
        enc.put_varint(deduplicated);
        Frame::with_payload(FrameKind::Ack, seq, enc.finish())
    }

    /// Builds a cumulative acknowledgment covering every batch sequence
    /// up to and including `watermark`; the counts are deltas since the
    /// receiver's previous ack on this connection.
    pub fn ack_win(watermark: u64, accepted: u64, deduplicated: u64) -> Frame {
        let mut enc = Encoder::new();
        enc.put_varint(accepted);
        enc.put_varint(deduplicated);
        Frame::with_payload(FrameKind::AckWin, watermark, enc.finish())
    }

    /// Builds a heartbeat request.
    pub fn ping(seq: u64) -> Frame {
        Frame::with_payload(FrameKind::Ping, seq, Bytes::new())
    }

    /// Builds a heartbeat reply.
    pub fn pong(seq: u64) -> Frame {
        Frame::with_payload(FrameKind::Pong, seq, Bytes::new())
    }

    /// Encodes the frame into its full wire form (length, body, CRC).
    ///
    /// # Errors
    ///
    /// [`FrameError::TooLarge`] when the body would exceed
    /// [`MAX_FRAME_BODY`] — the receiving [`FrameReader`] rejects such a
    /// length as corrupt, so emitting it would wedge the connection in a
    /// reject/reconnect loop. (This also guards the `as u32` narrowing of
    /// the length prefix, which is impossible to overflow below the cap.)
    pub fn encode(&self) -> Result<Bytes, FrameError> {
        let mut body = Encoder::new();
        body.put_u8(self.kind.as_u8());
        body.put_u64(self.seq);
        let body_len = BODY_HEADER + self.payload.len();
        if body_len > MAX_FRAME_BODY {
            return Err(FrameError::TooLarge {
                size: body_len,
                max: MAX_FRAME_BODY,
            });
        }
        let mut out = Encoder::new();
        out.put_u32(body_len as u32);
        let body = body.finish();
        let mut framed = Vec::with_capacity(4 + body_len + 4);
        framed.extend_from_slice(&out.finish());
        framed.extend_from_slice(&body);
        framed.extend_from_slice(&self.payload);
        let crc = crc32(&framed[4..4 + body_len]);
        framed.extend_from_slice(&crc.to_le_bytes());
        Ok(Bytes::from(framed))
    }

    /// Decodes a handshake payload ([`Frame::hello`] / [`Frame::hello_ack`]),
    /// verifying magic and version, and returns the peer's name.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadHandshake`] on magic/version mismatch;
    /// [`FrameError::Codec`] on a malformed payload.
    pub fn decode_handshake(&self) -> Result<String, FrameError> {
        let mut dec = Decoder::new(self.payload.clone());
        if dec.get_u32()? != MAGIC {
            return Err(FrameError::BadHandshake("magic mismatch"));
        }
        if dec.get_u8()? != VERSION {
            return Err(FrameError::BadHandshake("version mismatch"));
        }
        Ok(dec.get_str()?)
    }

    /// Decodes a batch payload into its messages.
    ///
    /// # Errors
    ///
    /// [`FrameError::Codec`] when any message fails to decode.
    pub fn decode_batch(&self) -> Result<Vec<Message>, FrameError> {
        let mut dec = Decoder::new(self.payload.clone());
        let count = dec.get_varint()?;
        // Each message costs at least a length byte; a hostile count can
        // not force allocation beyond the already-bounded frame body.
        if count > self.payload.len() as u64 {
            return Err(FrameError::Corrupt("batch count exceeds payload"));
        }
        let mut messages = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let raw = dec.get_bytes()?;
            messages.push(Message::from_bytes(raw)?);
        }
        Ok(messages)
    }

    /// Decodes an ack payload into `(accepted, deduplicated)` counts.
    ///
    /// # Errors
    ///
    /// [`FrameError::Codec`] on a malformed payload.
    pub fn decode_ack(&self) -> Result<(u64, u64), FrameError> {
        let mut dec = Decoder::new(self.payload.clone());
        Ok((dec.get_varint()?, dec.get_varint()?))
    }
}

/// The outcome of one [`FrameReader::poll`].
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame was parsed.
    Frame(Frame),
    /// The read timed out before a complete frame arrived; partial bytes
    /// stay buffered and the caller may poll again.
    Idle,
    /// The peer closed the connection.
    Closed,
}

/// Incremental frame parser over a byte stream.
///
/// Keeps an internal buffer across polls so frames split over multiple
/// reads — or interleaved with read timeouts — are reassembled without
/// ever desynchronizing the stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Reads from `stream` until one complete frame is parsed, the read
    /// times out ([`FrameEvent::Idle`]), or the peer closes
    /// ([`FrameEvent::Closed`]).
    ///
    /// # Errors
    ///
    /// [`FrameError::Io`] on non-timeout stream failures;
    /// [`FrameError::Corrupt`] / [`FrameError::BadKind`] when the byte
    /// stream violates framing (the connection should be dropped).
    pub fn poll(&mut self, stream: &mut dyn Read) -> Result<FrameEvent, FrameError> {
        loop {
            if let Some(frame) = self.try_parse()? {
                return Ok(FrameEvent::Frame(frame));
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(FrameEvent::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FrameEvent::Idle)
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Attempts to parse one frame from the buffered bytes.
    fn try_parse(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        len_bytes.copy_from_slice(&self.buf[..4]);
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if !(BODY_HEADER..=MAX_FRAME_BODY).contains(&body_len) {
            return Err(FrameError::Corrupt("implausible frame length"));
        }
        let total = 4 + body_len + 4;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = &self.buf[4..4 + body_len];
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(&self.buf[4 + body_len..total]);
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            return Err(FrameError::Corrupt("crc mismatch"));
        }
        let kind = FrameKind::from_u8(body[0])?;
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&body[1..9]);
        let seq = u64::from_le_bytes(seq_bytes);
        let payload = Bytes::from(body[BODY_HEADER..].to_vec());
        self.buf.drain(..total);
        Ok(Some(Frame { kind, seq, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_one(bytes: &[u8]) -> Frame {
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(bytes.to_vec());
        match reader.poll(&mut cursor).unwrap() {
            FrameEvent::Frame(f) => f,
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn handshake_roundtrips() {
        let frame = read_one(&Frame::hello("QM.SEND").encode().unwrap());
        assert_eq!(frame.kind, FrameKind::Hello);
        assert_eq!(frame.decode_handshake().unwrap(), "QM.SEND");
        let ack = read_one(&Frame::hello_ack("QM.RECV").encode().unwrap());
        assert_eq!(ack.kind, FrameKind::HelloAck);
        assert_eq!(ack.decode_handshake().unwrap(), "QM.RECV");
    }

    #[test]
    fn batch_roundtrips_messages() {
        let msgs = vec![
            Message::text("a").persistent(true).build(),
            Message::text("b").property("k", 7i64).build(),
        ];
        let frame = read_one(&Frame::batch(42, &msgs).encode().unwrap());
        assert_eq!(frame.kind, FrameKind::Batch);
        assert_eq!(frame.seq, 42);
        let back = frame.decode_batch().unwrap();
        assert_eq!(back, msgs);
    }

    #[test]
    fn ack_roundtrips_counts() {
        let frame = read_one(&Frame::ack(9, 5, 2).encode().unwrap());
        assert_eq!(frame.kind, FrameKind::Ack);
        assert_eq!(frame.seq, 9);
        assert_eq!(frame.decode_ack().unwrap(), (5, 2));
    }

    #[test]
    fn ack_win_roundtrips_watermark_and_counts() {
        let frame = read_one(&Frame::ack_win(37, 128, 3).encode().unwrap());
        assert_eq!(frame.kind, FrameKind::AckWin);
        assert_eq!(frame.seq, 37);
        assert_eq!(frame.decode_ack().unwrap(), (128, 3));
    }

    #[test]
    fn batch_wire_is_byte_identical_to_contiguous_encode() {
        for msgs in [
            vec![],
            vec![Message::text("a").build()],
            vec![
                Message::text("x".repeat(200)).property("k", 7i64).build(),
                Message::text("").persistent(true).build(),
                Message::text("y".repeat(5000)).build(),
            ],
        ] {
            let contiguous = Frame::batch(99, &msgs).encode().unwrap();
            let vectored = Frame::batch_wire(99, &msgs).unwrap();
            assert_eq!(vectored.len(), contiguous.len());
            assert_eq!(vectored.to_bytes(), contiguous);
            // And it parses back through the normal reader.
            let frame = read_one(&vectored.to_bytes());
            assert_eq!(frame.decode_batch().unwrap(), msgs);
        }
    }

    #[test]
    fn batch_wire_shares_message_storage() {
        // The message body segments must be the cached wire images, not
        // copies: same length, and mutating nothing, a second assembly
        // yields segments equal to the first (cache hit, zero encodes).
        let msg = Message::text("z".repeat(1000)).build();
        let wire = msg.wire_bytes();
        let list = Frame::batch_wire(1, std::slice::from_ref(&msg)).unwrap();
        let body_seg = list
            .segments()
            .iter()
            .find(|s| s.len() == wire.len())
            .expect("body segment present");
        assert_eq!(body_seg.as_ref(), wire.as_ref());
    }

    #[test]
    fn batch_wire_refuses_oversized_bodies() {
        let huge = Message::text("x".repeat(MAX_FRAME_BODY)).build();
        assert!(matches!(
            Frame::batch_wire(1, std::slice::from_ref(&huge)),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn ping_pong_are_empty() {
        let ping = read_one(&Frame::ping(3).encode().unwrap());
        assert_eq!(ping.kind, FrameKind::Ping);
        assert!(ping.payload.is_empty());
        let pong = read_one(&Frame::pong(3).encode().unwrap());
        assert_eq!(pong.kind, FrameKind::Pong);
    }

    #[test]
    fn crc_flip_is_detected() {
        let mut raw = Frame::ack(1, 1, 0).encode().unwrap().to_vec();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x40;
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(raw);
        assert!(matches!(
            reader.poll(&mut cursor),
            Err(FrameError::Corrupt(_)) | Err(FrameError::BadKind(_))
        ));
    }

    #[test]
    fn implausible_length_rejected() {
        let mut raw = Frame::ping(1).encode().unwrap().to_vec();
        raw[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(raw);
        assert!(matches!(
            reader.poll(&mut cursor),
            Err(FrameError::Corrupt("implausible frame length"))
        ));
    }

    #[test]
    fn frames_reassemble_across_split_reads() {
        // A reader that hands out one byte at a time: the frame must
        // reassemble across many short reads.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let msgs = vec![Message::text("split").build()];
        let mut stream = OneByte(Cursor::new(Frame::batch(7, &msgs).encode().unwrap().to_vec()));
        let mut reader = FrameReader::new();
        match reader.poll(&mut stream).unwrap() {
            FrameEvent::Frame(f) => assert_eq!(f.decode_batch().unwrap(), msgs),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn two_frames_in_one_buffer_parse_sequentially() {
        let mut raw = Frame::ping(1).encode().unwrap().to_vec();
        raw.extend_from_slice(&Frame::pong(2).encode().unwrap());
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(raw);
        let first = match reader.poll(&mut cursor).unwrap() {
            FrameEvent::Frame(f) => f,
            other => panic!("{other:?}"),
        };
        assert_eq!(first.kind, FrameKind::Ping);
        let second = match reader.poll(&mut cursor).unwrap() {
            FrameEvent::Frame(f) => f,
            other => panic!("{other:?}"),
        };
        assert_eq!(second.kind, FrameKind::Pong);
        assert!(matches!(
            reader.poll(&mut cursor).unwrap(),
            FrameEvent::Closed
        ));
    }

    #[test]
    fn oversized_body_refuses_to_encode() {
        let huge = Message::text("x".repeat(MAX_FRAME_BODY)).build();
        let err = Frame::batch(1, std::slice::from_ref(&huge))
            .encode()
            .unwrap_err();
        match err {
            FrameError::TooLarge { size, max } => {
                assert!(size > max);
                assert_eq!(max, MAX_FRAME_BODY);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn message_wire_len_matches_batch_payload_growth() {
        let a = Message::text("short").build();
        let b = Message::text("y".repeat(300)).property("k", 1i64).build();
        let empty = Frame::batch(0, &[]).payload.len();
        let one = Frame::batch(0, std::slice::from_ref(&a)).payload.len();
        let two = Frame::batch(0, &[a.clone(), b.clone()]).payload.len();
        assert_eq!(one - empty, Frame::message_wire_len(&a));
        assert_eq!(two - one, Frame::message_wire_len(&b));
    }

    #[test]
    fn eof_reports_closed() {
        let mut reader = FrameReader::new();
        let mut cursor = Cursor::new(Vec::new());
        assert!(matches!(
            reader.poll(&mut cursor).unwrap(),
            FrameEvent::Closed
        ));
    }
}
