//! Fixed-stripe concurrent maps for the queue manager's hot lookups.
//!
//! The manager's queue and route tables used to be one global
//! `RwLock<HashMap>` each: every `open`/`put`/`get` on *any* queue took the
//! same lock word, so unrelated queues contended on lookup and a
//! `create_queue` on one name briefly stalled traffic to every other name.
//! [`StripedMap`] splits the table into a fixed power-of-two number of
//! stripes, each its own `RwLock<HashMap>`, selected by an FNV-1a hash of
//! the key — operations on keys in different stripes never touch the same
//! lock.
//!
//! Whole-map operations (recovery, crash, compaction) take every stripe in
//! ascending index order via [`StripedMap::write_all`]; single-key
//! operations hold exactly one stripe. Ascending acquisition keeps the
//! vendored deadlock detector's order graph acyclic: the only stripe→stripe
//! edges ever created run from lower to higher indices.

use std::collections::HashMap;

use parking_lot::{RwLock, RwLockWriteGuard};

/// Default stripe count: plenty of spread for tens of queues while keeping
/// whole-map locking (recovery, compaction) cheap.
pub const DEFAULT_STRIPES: usize = 16;

/// A string-keyed concurrent map split over fixed lock stripes.
#[derive(Debug)]
pub struct StripedMap<V> {
    stripes: Vec<RwLock<HashMap<String, V>>>,
}

impl<V> Default for StripedMap<V> {
    fn default() -> StripedMap<V> {
        StripedMap::new(DEFAULT_STRIPES)
    }
}

/// FNV-1a: cheap, deterministic (no per-process hasher seed), and good
/// enough spread over short queue names.
fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<V> StripedMap<V> {
    /// Creates a map with `stripes` lock stripes (rounded up to a power of
    /// two, minimum 1).
    pub fn new(stripes: usize) -> StripedMap<V> {
        let n = stripes.max(1).next_power_of_two();
        StripedMap {
            stripes: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn stripe_of(&self, key: &str) -> usize {
        (fnv1a(key) as usize) & (self.stripes.len() - 1)
    }

    /// Number of lock stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Looks up `key`, cloning the value out.
    pub fn get(&self, key: &str) -> Option<V>
    where
        V: Clone,
    {
        self.stripes[self.stripe_of(key)].read().get(key).cloned()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.stripes[self.stripe_of(key)].read().contains_key(key)
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&self, key: String, value: V) -> Option<V> {
        let stripe = self.stripe_of(&key);
        self.stripes[stripe].write().insert(key, value)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, key: &str) -> Option<V> {
        self.stripes[self.stripe_of(key)].write().remove(key)
    }

    /// Total entries across all stripes (each stripe read-locked briefly in
    /// turn; concurrent mutation may skew the sum, like any lock-free size).
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.stripes.iter().all(|s| s.read().is_empty())
    }

    /// All keys, sorted (per-stripe read locks taken in turn).
    pub fn sorted_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .stripes
            .iter()
            .flat_map(|s| s.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Write-locks the stripe owning `key` for a multi-step atomic
    /// operation (check–journal–insert). Only keys hashing to the same
    /// stripe are serialized; the other stripes stay free.
    pub fn lock_key(&self, key: &str) -> StripeGuard<'_, V> {
        StripeGuard {
            guard: self.stripes[self.stripe_of(key)].write(),
        }
    }

    /// Write-locks **every** stripe, in ascending index order, for
    /// whole-map operations (recovery, crash teardown, compaction). All
    /// concurrent single-key operations are excluded for the guard's
    /// lifetime.
    pub fn write_all(&self) -> AllGuard<'_, V> {
        AllGuard {
            guards: self.stripes.iter().map(|s| s.write()).collect(),
            map: self,
        }
    }
}

/// Write guard over the single stripe owning one key; dereferences to that
/// stripe's `HashMap`.
pub struct StripeGuard<'a, V> {
    guard: RwLockWriteGuard<'a, HashMap<String, V>>,
}

impl<V> std::ops::Deref for StripeGuard<'_, V> {
    type Target = HashMap<String, V>;

    fn deref(&self) -> &HashMap<String, V> {
        &self.guard
    }
}

impl<V> std::ops::DerefMut for StripeGuard<'_, V> {
    fn deref_mut(&mut self) -> &mut HashMap<String, V> {
        &mut self.guard
    }
}

/// Write guard over **all** stripes, exposing whole-map views keyed by the
/// same stripe routing as the parent map.
pub struct AllGuard<'a, V> {
    guards: Vec<RwLockWriteGuard<'a, HashMap<String, V>>>,
    map: &'a StripedMap<V>,
}

impl<V> AllGuard<'_, V> {
    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&V> {
        self.guards[self.map.stripe_of(key)].get(key)
    }

    /// Inserts `key → value`, returning the previous value if any.
    pub fn insert(&mut self, key: String, value: V) -> Option<V> {
        let stripe = self.map.stripe_of(&key);
        self.guards[stripe].insert(key, value)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        self.guards[self.map.stripe_of(key)].remove(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.guards[self.map.stripe_of(key)].contains_key(key)
    }

    /// Iterates over every value.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.guards.iter().flat_map(|g| g.values())
    }

    /// All keys, sorted.
    pub fn sorted_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .guards
            .iter()
            .flat_map(|g| g.keys().cloned().collect::<Vec<_>>())
            .collect();
        keys.sort();
        keys
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        for g in &mut self.guards {
            g.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_map_operations() {
        let m: StripedMap<u32> = StripedMap::default();
        assert!(m.is_empty());
        assert_eq!(m.insert("a".into(), 1), None);
        assert_eq!(m.insert("a".into(), 2), Some(1));
        m.insert("b".into(), 3);
        assert_eq!(m.get("a"), Some(2));
        assert!(m.contains_key("b"));
        assert!(!m.contains_key("c"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.sorted_keys(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(m.remove("a"), Some(2));
        assert_eq!(m.get("a"), None);
    }

    #[test]
    fn stripe_count_rounds_to_power_of_two() {
        assert_eq!(StripedMap::<u8>::new(0).stripe_count(), 1);
        assert_eq!(StripedMap::<u8>::new(5).stripe_count(), 8);
        assert_eq!(StripedMap::<u8>::new(16).stripe_count(), 16);
    }

    #[test]
    fn lock_key_serializes_one_stripe_only() {
        let m: StripedMap<u32> = StripedMap::new(16);
        let mut guard = m.lock_key("held");
        guard.insert("held".into(), 1);
        // A key on a *different* stripe is still freely accessible while
        // "held"'s stripe is write-locked.
        let other = (0..1000)
            .map(|i| format!("k{i}"))
            .find(|k| m.stripe_of(k) != m.stripe_of("held"))
            .unwrap();
        m.insert(other.clone(), 7);
        assert_eq!(m.get(&other), Some(7));
        drop(guard);
        assert_eq!(m.get("held"), Some(1));
    }

    #[test]
    fn write_all_sees_and_mutates_everything() {
        let m: StripedMap<u32> = StripedMap::default();
        for i in 0..50 {
            m.insert(format!("k{i}"), i);
        }
        let mut all = m.write_all();
        assert_eq!(all.sorted_keys().len(), 50);
        assert_eq!(all.values().count(), 50);
        assert_eq!(all.get("k7"), Some(&7));
        all.remove("k7");
        all.insert("extra".into(), 99);
        assert!(all.contains_key("extra"));
        all.clear();
        drop(all);
        assert!(m.is_empty());
    }

    #[test]
    fn concurrent_distinct_keys_do_not_lose_updates() {
        let m: Arc<StripedMap<u64>> = Arc::new(StripedMap::default());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        m.insert(format!("t{t}-k{i}"), t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.len(), 1600);
        for t in 0..8u64 {
            for i in 0..200u64 {
                assert_eq!(m.get(&format!("t{t}-k{i}")), Some(t * 1000 + i));
            }
        }
    }
}
