//! JMS-style message selectors.
//!
//! A selector is a SQL-92-flavoured boolean expression over message
//! properties and a few header pseudo-properties. Receivers pass a selector
//! to consume only matching messages — the conditional-messaging layer uses
//! this to pick acknowledgments for a particular conditional message off the
//! shared `DS.ACK.Q` (paper §2.5: "incoming acknowledgment messages must be
//! sorted with respect to the conditional message they address").
//!
//! Supported syntax: comparison (`=`, `<>`, `<`, `<=`, `>`, `>=`),
//! arithmetic (`+ - * /`), `AND` / `OR` / `NOT`, `BETWEEN .. AND ..`,
//! `IN ('a', 'b')`, `LIKE 'pat%' [ESCAPE 'c']`, `IS [NOT] NULL`, string
//! literals in single quotes, and the header pseudo-properties `priority`,
//! `persistent`, `redelivered`, `redelivery_count` and `correlation_id`.
//!
//! Evaluation follows SQL three-valued logic: any comparison involving an
//! absent property is *unknown*, and a message matches only if the whole
//! expression evaluates to *true*.
//!
//! # Examples
//!
//! ```
//! use mq::{Message, selector::Selector};
//!
//! let sel = Selector::parse("kind = 'flight' AND altitude > 10000")?;
//! let msg = Message::text("…")
//!     .property("kind", "flight")
//!     .property("altitude", 31000i64)
//!     .build();
//! assert!(sel.matches(&msg));
//! # Ok::<(), mq::selector::SelectorError>(())
//! ```

use std::fmt;

use crate::message::{Message, PropertyValue};

/// Error produced when a selector fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError {
    /// Byte position in the input where the error was detected.
    pub position: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for SelectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at position {}", self.reason, self.position)
    }
}

impl std::error::Error for SelectorError {}

/// A parsed, reusable message selector.
#[derive(Debug, Clone)]
pub struct Selector {
    expr: Expr,
    source: String,
}

impl Selector {
    /// Parses a selector expression.
    ///
    /// # Errors
    ///
    /// Returns [`SelectorError`] when the expression is syntactically
    /// invalid; the error carries the offending byte position.
    pub fn parse(input: &str) -> Result<Selector, SelectorError> {
        let tokens = lex(input)?;
        let mut parser = Parser { tokens, pos: 0 };
        let expr = parser.parse_or()?;
        if parser.pos != parser.tokens.len() {
            return Err(SelectorError {
                position: parser.current_position(),
                reason: format!("unexpected trailing token {:?}", parser.peek_kind()),
            });
        }
        Ok(Selector {
            expr,
            source: input.to_owned(),
        })
    }

    /// Evaluates the selector against a message.
    ///
    /// Returns `true` only when the expression evaluates to SQL *true*;
    /// *false* and *unknown* both reject the message.
    pub fn matches(&self, msg: &Message) -> bool {
        matches!(self.expr.eval(msg), Value::Bool(true))
    }

    /// The original selector text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Equality constraints every matching message must satisfy:
    /// `(name, value)` pairs from `name = literal` comparisons reachable
    /// through top-level `AND`s. A message lacking `value` for `name`
    /// cannot match the selector (equality against `NULL` is *unknown*),
    /// which is what lets a property index serve `get` as a point read —
    /// any one constraint's index bucket is a complete candidate set.
    ///
    /// Pseudo-headers (`priority`, `persistent`, `redelivered`,
    /// `redelivery_count`) are skipped: they are not message properties
    /// and have no index. `correlation_id` *is* reported — queues index
    /// it exactly.
    pub(crate) fn point_constraints(&self) -> Vec<(String, PropertyValue)> {
        let mut out = Vec::new();
        collect_point_constraints(&self.expr, &mut out);
        out
    }
}

/// Walks `AND`s and `=` comparisons collecting indexable equality
/// constraints; any other node contributes nothing (its subtree may relax
/// the match but never widens an equality elsewhere in an `AND`).
fn collect_point_constraints(expr: &Expr, out: &mut Vec<(String, PropertyValue)>) {
    match expr {
        Expr::And(l, r) => {
            collect_point_constraints(l, out);
            collect_point_constraints(r, out);
        }
        Expr::Cmp(CmpOp::Eq, l, r) => {
            let pair = match (&**l, &**r) {
                (Expr::Ident(name), lit) | (lit, Expr::Ident(name)) => {
                    literal_value(lit).map(|v| (name, v))
                }
                _ => None,
            };
            if let Some((name, value)) = pair {
                let pseudo = matches!(
                    name.as_str(),
                    "priority" | "persistent" | "redelivered" | "redelivery_count"
                );
                if !pseudo {
                    out.push((name.clone(), value));
                }
            }
        }
        _ => {}
    }
}

fn literal_value(expr: &Expr) -> Option<PropertyValue> {
    match expr {
        Expr::LitI64(v) => Some(PropertyValue::I64(*v)),
        Expr::LitF64(v) => Some(PropertyValue::F64(*v)),
        Expr::LitStr(s) => Some(PropertyValue::Str(s.clone())),
        Expr::LitBool(b) => Some(PropertyValue::Bool(*b)),
        _ => None,
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

// ---------------------------------------------------------------- lexing --

#[derive(Debug, Clone, PartialEq)]
enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    And,
    Or,
    Not,
    Between,
    In,
    Like,
    Escape,
    Is,
    Null,
    True,
    False,
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    kind: TokenKind,
    position: usize,
}

fn lex(input: &str) -> Result<Vec<Token>, SelectorError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    position: start,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    position: start,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    position: start,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    position: start,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    position: start,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        position: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        position: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        position: start,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(SelectorError {
                                position: start,
                                reason: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    position: start,
                });
            }
            '0'..='9' | '.' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() {
                    match bytes[end] as char {
                        '0'..='9' => end += 1,
                        '.' if !is_float => {
                            is_float = true;
                            end += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| SelectorError {
                        position: start,
                        reason: format!("invalid numeric literal '{text}'"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| SelectorError {
                        position: start,
                        reason: format!("invalid numeric literal '{text}'"),
                    })?)
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = i;
                while end < bytes.len() {
                    let c = bytes[end] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        end += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[i..end];
                let kind = match word.to_ascii_uppercase().as_str() {
                    "AND" => TokenKind::And,
                    "OR" => TokenKind::Or,
                    "NOT" => TokenKind::Not,
                    "BETWEEN" => TokenKind::Between,
                    "IN" => TokenKind::In,
                    "LIKE" => TokenKind::Like,
                    "ESCAPE" => TokenKind::Escape,
                    "IS" => TokenKind::Is,
                    "NULL" => TokenKind::Null,
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    _ => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token {
                    kind,
                    position: start,
                });
                i = end;
            }
            other => {
                return Err(SelectorError {
                    position: start,
                    reason: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

// --------------------------------------------------------------- parsing --

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Ident(String),
    LitI64(i64),
    LitF64(f64),
    LitStr(String),
    LitBool(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    IsNull(Box<Expr>, /*negated*/ bool),
    Between {
        value: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    In {
        value: Box<Expr>,
        set: Vec<String>,
        negated: bool,
    },
    Like {
        value: Box<Expr>,
        pattern: String,
        escape: Option<char>,
        negated: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek_kind(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn current_position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| t.position)
            .unwrap_or(0)
    }

    fn advance(&mut self) -> Option<TokenKind> {
        let kind = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if kind.is_some() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), SelectorError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn error(&self, reason: String) -> SelectorError {
        SelectorError {
            position: self.current_position(),
            reason,
        }
    }

    fn parse_or(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let right = self.parse_not()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SelectorError> {
        if self.eat(&TokenKind::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr, SelectorError> {
        let left = self.parse_sum()?;
        let negated = self.eat(&TokenKind::Not);
        match self.peek_kind() {
            Some(TokenKind::Eq) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Eq, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Neq) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Neq, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Lt) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Lt, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Le) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Le, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Gt) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Gt, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Ge) if !negated => {
                self.pos += 1;
                let right = self.parse_sum()?;
                Ok(Expr::Cmp(CmpOp::Ge, Box::new(left), Box::new(right)))
            }
            Some(TokenKind::Between) => {
                self.pos += 1;
                let low = self.parse_sum()?;
                self.expect(&TokenKind::And, "AND in BETWEEN")?;
                let high = self.parse_sum()?;
                Ok(Expr::Between {
                    value: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                })
            }
            Some(TokenKind::In) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "'(' after IN")?;
                let mut set = Vec::new();
                loop {
                    match self.advance() {
                        Some(TokenKind::Str(s)) => set.push(s),
                        _ => return Err(self.error("expected string literal in IN list".into())),
                    }
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    self.expect(&TokenKind::Comma, "',' or ')' in IN list")?;
                }
                Ok(Expr::In {
                    value: Box::new(left),
                    set,
                    negated,
                })
            }
            Some(TokenKind::Like) => {
                self.pos += 1;
                let pattern = match self.advance() {
                    Some(TokenKind::Str(s)) => s,
                    _ => return Err(self.error("expected string literal after LIKE".into())),
                };
                let escape = if self.eat(&TokenKind::Escape) {
                    match self.advance() {
                        Some(TokenKind::Str(s)) if s.chars().count() == 1 => s.chars().next(),
                        _ => {
                            return Err(
                                self.error("ESCAPE requires a single-character string".into())
                            )
                        }
                    }
                } else {
                    None
                };
                Ok(Expr::Like {
                    value: Box::new(left),
                    pattern,
                    escape,
                    negated,
                })
            }
            Some(TokenKind::Is) if !negated => {
                self.pos += 1;
                let is_not = self.eat(&TokenKind::Not);
                self.expect(&TokenKind::Null, "NULL after IS")?;
                Ok(Expr::IsNull(Box::new(left), is_not))
            }
            _ if negated => Err(self.error("expected BETWEEN, IN or LIKE after NOT".into())),
            _ => Ok(left),
        }
    }

    fn parse_sum(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.parse_product()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                let right = self.parse_product()?;
                left = Expr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
            } else if self.eat(&TokenKind::Minus) {
                let right = self.parse_product()?;
                left = Expr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_product(&mut self) -> Result<Expr, SelectorError> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat(&TokenKind::Star) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
            } else if self.eat(&TokenKind::Slash) {
                let right = self.parse_unary()?;
                left = Expr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SelectorError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        match self.advance() {
            Some(TokenKind::Ident(name)) => Ok(Expr::Ident(name)),
            Some(TokenKind::Int(v)) => Ok(Expr::LitI64(v)),
            Some(TokenKind::Float(v)) => Ok(Expr::LitF64(v)),
            Some(TokenKind::Str(s)) => Ok(Expr::LitStr(s)),
            Some(TokenKind::True) => Ok(Expr::LitBool(true)),
            Some(TokenKind::False) => Ok(Expr::LitBool(false)),
            Some(TokenKind::LParen) => {
                let inner = self.parse_or()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            other => Err(self.error(format!("expected value, found {other:?}"))),
        }
    }
}

// ------------------------------------------------------------ evaluation --

/// SQL three-valued runtime value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    Str(String),
}

impl Value {
    fn truth(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl Expr {
    fn eval(&self, msg: &Message) -> Value {
        match self {
            Expr::Ident(name) => lookup(msg, name),
            Expr::LitI64(v) => Value::I64(*v),
            Expr::LitF64(v) => Value::F64(*v),
            Expr::LitStr(s) => Value::Str(s.clone()),
            Expr::LitBool(b) => Value::Bool(*b),
            Expr::Not(inner) => match inner.eval(msg).truth() {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            Expr::And(l, r) => match (l.eval(msg).truth(), r.eval(msg).truth()) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            Expr::Or(l, r) => match (l.eval(msg).truth(), r.eval(msg).truth()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            Expr::Cmp(op, l, r) => compare(*op, l.eval(msg), r.eval(msg)),
            Expr::Arith(op, l, r) => arith(*op, l.eval(msg), r.eval(msg)),
            Expr::Neg(inner) => match inner.eval(msg) {
                Value::I64(v) => Value::I64(-v),
                Value::F64(v) => Value::F64(-v),
                _ => Value::Null,
            },
            Expr::IsNull(inner, negated) => {
                let is_null = matches!(inner.eval(msg), Value::Null);
                Value::Bool(is_null != *negated)
            }
            Expr::Between {
                value,
                low,
                high,
                negated,
            } => {
                let v = value.eval(msg);
                let ge = compare(CmpOp::Ge, v.clone(), low.eval(msg));
                let le = compare(CmpOp::Le, v, high.eval(msg));
                match (ge.truth(), le.truth()) {
                    (Some(a), Some(b)) => Value::Bool((a && b) != *negated),
                    _ => Value::Null,
                }
            }
            Expr::In {
                value,
                set,
                negated,
            } => match value.eval(msg) {
                Value::Str(s) => Value::Bool(set.contains(&s) != *negated),
                Value::Null => Value::Null,
                _ => Value::Null,
            },
            Expr::Like {
                value,
                pattern,
                escape,
                negated,
            } => match value.eval(msg) {
                Value::Str(s) => Value::Bool(like_match(&s, pattern, *escape) != *negated),
                Value::Null => Value::Null,
                _ => Value::Null,
            },
        }
    }
}

fn lookup(msg: &Message, name: &str) -> Value {
    match name {
        "priority" => Value::I64(i64::from(msg.priority().level())),
        "persistent" => Value::Bool(msg.is_persistent()),
        "redelivered" => Value::Bool(msg.redelivery_count() > 0),
        "redelivery_count" => Value::I64(i64::from(msg.redelivery_count())),
        "correlation_id" => match msg.correlation_id() {
            Some(s) => Value::Str(s.to_owned()),
            None => Value::Null,
        },
        _ => match msg.property(name) {
            Some(PropertyValue::Str(s)) => Value::Str(s.clone()),
            Some(PropertyValue::I64(v)) => Value::I64(*v),
            Some(PropertyValue::F64(v)) => Value::F64(*v),
            Some(PropertyValue::Bool(b)) => Value::Bool(*b),
            None => Value::Null,
        },
    }
}

fn compare(op: CmpOp, l: Value, r: Value) -> Value {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (&l, &r) {
        (Value::Null, _) | (_, Value::Null) => None,
        (Value::I64(a), Value::I64(b)) => Some(a.cmp(b)),
        (Value::I64(a), Value::F64(b)) => (*a as f64).partial_cmp(b),
        (Value::F64(a), Value::I64(b)) => a.partial_cmp(&(*b as f64)),
        (Value::F64(a), Value::F64(b)) => a.partial_cmp(b),
        (Value::Str(a), Value::Str(b)) => match op {
            // JMS restricts strings to equality comparison.
            CmpOp::Eq | CmpOp::Neq => Some(a.cmp(b)),
            _ => None,
        },
        (Value::Bool(a), Value::Bool(b)) => match op {
            CmpOp::Eq | CmpOp::Neq => Some(a.cmp(b)),
            _ => None,
        },
        // Cross-type comparisons are unknown.
        _ => None,
    };
    match ord {
        None => Value::Null,
        Some(ord) => {
            let result = match op {
                CmpOp::Eq => ord == Ordering::Equal,
                CmpOp::Neq => ord != Ordering::Equal,
                CmpOp::Lt => ord == Ordering::Less,
                CmpOp::Le => ord != Ordering::Greater,
                CmpOp::Gt => ord == Ordering::Greater,
                CmpOp::Ge => ord != Ordering::Less,
            };
            Value::Bool(result)
        }
    }
}

fn arith(op: ArithOp, l: Value, r: Value) -> Value {
    match (l, r) {
        (Value::I64(a), Value::I64(b)) => match op {
            ArithOp::Add => Value::I64(a.wrapping_add(b)),
            ArithOp::Sub => Value::I64(a.wrapping_sub(b)),
            ArithOp::Mul => Value::I64(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    Value::Null
                } else {
                    Value::I64(a.wrapping_div(b))
                }
            }
        },
        (a, b) => match (to_f64(a), to_f64(b)) {
            (Some(a), Some(b)) => match op {
                ArithOp::Add => Value::F64(a + b),
                ArithOp::Sub => Value::F64(a - b),
                ArithOp::Mul => Value::F64(a * b),
                ArithOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::F64(a / b)
                    }
                }
            },
            _ => Value::Null,
        },
    }
}

fn to_f64(v: Value) -> Option<f64> {
    match v {
        Value::I64(a) => Some(a as f64),
        Value::F64(a) => Some(a),
        _ => None,
    }
}

/// SQL `LIKE` matching with `%` (any run), `_` (any one char) and an
/// optional escape character.
fn like_match(s: &str, pattern: &str, escape: Option<char>) -> bool {
    fn inner(s: &[char], p: &[(char, bool)]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(&('%', false)) => {
                // Try consuming 0..=len chars.
                (0..=s.len()).any(|k| inner(&s[k..], &p[1..]))
            }
            Some(&('_', false)) => !s.is_empty() && inner(&s[1..], &p[1..]),
            Some(&(c, _)) => s.first() == Some(&c) && inner(&s[1..], &p[1..]),
        }
    }
    // Pre-process pattern into (char, literal?) pairs honouring the escape.
    let mut processed: Vec<(char, bool)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            if let Some(next) = chars.next() {
                processed.push((next, true));
            }
        } else {
            processed.push((c, false));
        }
    }
    let s: Vec<char> = s.chars().collect();
    inner(&s, &processed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Priority;

    fn msg() -> Message {
        Message::text("body")
            .property("kind", "flight")
            .property("altitude", 31_000i64)
            .property("speed", 450.5f64)
            .property("urgent", true)
            .property("callsign", "UA17")
            .priority(Priority::new(7))
            .persistent(true)
            .correlation_id("corr-9")
            .build()
    }

    fn matches(sel: &str) -> bool {
        Selector::parse(sel).expect("parse").matches(&msg())
    }

    #[test]
    fn equality_and_inequality() {
        assert!(matches("kind = 'flight'"));
        assert!(!matches("kind = 'train'"));
        assert!(matches("kind <> 'train'"));
        assert!(matches("altitude = 31000"));
        assert!(matches("urgent = TRUE"));
        assert!(matches("urgent <> FALSE"));
    }

    #[test]
    fn numeric_ordering() {
        assert!(matches("altitude > 10000"));
        assert!(matches("altitude >= 31000"));
        assert!(!matches("altitude > 31000"));
        assert!(matches("altitude < 40000"));
        assert!(matches("speed <= 450.5"));
        assert!(matches("speed > 450"));
    }

    #[test]
    fn mixed_int_float_comparison() {
        assert!(matches("altitude > 30999.5"));
        assert!(matches("speed < 451"));
    }

    #[test]
    fn arithmetic() {
        assert!(matches("altitude + 1000 = 32000"));
        assert!(matches("altitude - 1000 = 30000"));
        assert!(matches("altitude * 2 = 62000"));
        assert!(matches("altitude / 2 = 15500"));
        assert!(matches("-altitude = -31000"));
        assert!(matches("altitude / 2.0 = 15500.0"));
    }

    #[test]
    fn division_by_zero_is_unknown() {
        assert!(!matches("altitude / 0 = 1"));
        assert!(
            !matches("NOT (altitude / 0 = 1)"),
            "unknown stays unknown under NOT"
        );
    }

    #[test]
    fn boolean_connectives() {
        assert!(matches("kind = 'flight' AND altitude > 0"));
        assert!(!matches("kind = 'flight' AND altitude < 0"));
        assert!(matches("kind = 'train' OR altitude > 0"));
        assert!(matches("NOT kind = 'train'"));
        assert!(matches("(kind = 'train' OR urgent) AND persistent"));
    }

    #[test]
    fn three_valued_logic_with_missing_property() {
        // `missing` is NULL: comparisons are unknown.
        assert!(!matches("missing = 1"));
        assert!(!matches("missing <> 1"), "NULL <> x is unknown, not true");
        assert!(!matches("NOT missing = 1"));
        // But false AND unknown = false → NOT gives true.
        assert!(matches("NOT (missing = 1 AND kind = 'train')"));
        // true OR unknown = true.
        assert!(matches("kind = 'flight' OR missing = 1"));
    }

    #[test]
    fn is_null_predicates() {
        assert!(matches("missing IS NULL"));
        assert!(!matches("kind IS NULL"));
        assert!(matches("kind IS NOT NULL"));
        assert!(!matches("missing IS NOT NULL"));
    }

    #[test]
    fn between_predicate() {
        assert!(matches("altitude BETWEEN 30000 AND 32000"));
        assert!(matches("altitude BETWEEN 31000 AND 31000"));
        assert!(!matches("altitude BETWEEN 0 AND 30000"));
        assert!(matches("altitude NOT BETWEEN 0 AND 30000"));
        assert!(!matches("missing BETWEEN 0 AND 1"));
    }

    #[test]
    fn in_predicate() {
        assert!(matches("kind IN ('flight', 'train')"));
        assert!(!matches("kind IN ('train', 'bus')"));
        assert!(matches("kind NOT IN ('train', 'bus')"));
        assert!(!matches("missing IN ('a')"));
    }

    #[test]
    fn like_predicate() {
        assert!(matches("callsign LIKE 'UA%'"));
        assert!(matches("callsign LIKE '_A17'"));
        assert!(matches("callsign LIKE '%17'"));
        assert!(!matches("callsign LIKE 'BA%'"));
        assert!(matches("callsign NOT LIKE 'BA%'"));
        assert!(matches("callsign LIKE 'UA17'"));
        assert!(matches("callsign LIKE '%'"));
    }

    #[test]
    fn like_with_escape() {
        let m = Message::text("x").property("code", "100%_done").build();
        let sel = Selector::parse("code LIKE '100!%!_done' ESCAPE '!'").unwrap();
        assert!(sel.matches(&m));
        let sel2 = Selector::parse("code LIKE '100!%!_gone' ESCAPE '!'").unwrap();
        assert!(!sel2.matches(&m));
    }

    #[test]
    fn header_pseudo_properties() {
        assert!(matches("priority = 7"));
        assert!(matches("priority >= 5 AND persistent"));
        assert!(matches("correlation_id = 'corr-9'"));
        assert!(!matches("redelivered"));
        assert!(matches("redelivery_count = 0"));
        let plain = Message::text("x").build();
        let sel = Selector::parse("correlation_id IS NULL").unwrap();
        assert!(sel.matches(&plain));
    }

    #[test]
    fn string_literal_escaping() {
        let m = Message::text("x").property("note", "it's ok").build();
        let sel = Selector::parse("note = 'it''s ok'").unwrap();
        assert!(sel.matches(&m));
    }

    #[test]
    fn string_ordering_is_unknown() {
        // JMS allows only equality on strings.
        assert!(!matches("kind > 'a'"));
        assert!(!matches("kind < 'zzz'"));
    }

    #[test]
    fn cross_type_comparison_is_unknown() {
        assert!(!matches("kind = 3"));
        assert!(!matches("altitude = 'flight'"));
        assert!(!matches("urgent = 1"));
    }

    #[test]
    fn parse_errors_carry_positions() {
        for (input, needle) in [
            ("", "expected value"),
            ("a = ", "expected value"),
            ("a = 'x", "unterminated string"),
            ("a ~ 1", "unexpected character"),
            ("a BETWEEN 1 2", "expected AND"),
            ("a IN (1)", "expected string literal"),
            ("a LIKE 5", "expected string literal"),
            ("a LIKE 'x' ESCAPE 'ab'", "single-character"),
            ("a = 1 b = 2", "trailing token"),
            ("a NOT 5", "expected BETWEEN, IN or LIKE"),
            ("a IS 5", "NULL after IS"),
        ] {
            let err = Selector::parse(input).expect_err(input);
            assert!(
                err.reason.contains(needle),
                "input {input:?}: reason {:?} missing {needle:?}",
                err.reason
            );
        }
    }

    #[test]
    fn selector_reuse_and_display() {
        let sel = Selector::parse("priority > 3").unwrap();
        assert_eq!(sel.source(), "priority > 3");
        assert_eq!(sel.to_string(), "priority > 3");
        for p in 0..=9u8 {
            let m = Message::text("x").priority(Priority::new(p)).build();
            assert_eq!(sel.matches(&m), p > 3);
        }
    }

    #[test]
    fn operator_precedence() {
        // AND binds tighter than OR; arithmetic tighter than comparison.
        assert!(matches(
            "kind = 'train' OR kind = 'flight' AND altitude > 0"
        ));
        assert!(matches("altitude + 1000 * 2 = 33000"));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(matches(
            "kind = 'flight' and NOT (urgent = false) Or missing is null"
        ));
    }

    #[test]
    fn empty_and_blank_selectors_are_parse_errors() {
        for input in ["", "   ", "\t\r\n", "()"] {
            let err = Selector::parse(input).expect_err(input);
            assert!(
                err.reason.contains("expected value"),
                "input {input:?}: reason {:?}",
                err.reason
            );
        }
        // A bare parenthesized value is fine, though.
        assert!(matches("(urgent)"));
    }

    #[test]
    fn precedence_not_binds_tighter_than_and() {
        // NOT (kind = 'train') AND urgent — not NOT(... AND ...).
        assert!(matches("NOT kind = 'train' AND urgent"));
        // If NOT had scoped over the conjunction this would be true.
        assert!(!matches("NOT kind = 'flight' AND urgent"));
        assert!(matches("NOT (kind = 'flight' AND urgent) OR persistent"));
        assert!(matches("NOT NOT urgent"));
    }

    #[test]
    fn precedence_parens_override_or_and() {
        // Without parens: OR(train, AND(flight, neg)) → false OR false.
        assert!(!matches("kind = 'train' OR kind = 'flight' AND altitude < 0"));
        // With parens the OR settles first and the AND sees true.
        assert!(matches(
            "(kind = 'train' OR kind = 'flight') AND altitude > 0"
        ));
    }

    #[test]
    fn arithmetic_associativity_and_unary() {
        // Left-assoc: (31000 - 1000) - 30000 = 0, not 31000 - (1000 - 30000).
        assert!(matches("altitude - 1000 - 30000 = 0"));
        assert!(matches("altitude / 2 / 2 = 7750"));
        // Unary minus binds tighter than the product.
        assert!(matches("-altitude * 2 = -62000"));
        assert!(matches("+altitude = 31000"));
        // Sum of products, not product of sums.
        assert!(matches("altitude + 1000 * 2 = 33000"));
        assert!(matches("(altitude + 1000) * 2 = 64000"));
    }

    #[test]
    fn type_mismatch_ordering_and_predicates_are_unknown() {
        // Ordering on booleans is not defined, even though equality is.
        assert!(!matches("urgent > FALSE"));
        assert!(matches("urgent = TRUE"));
        // BETWEEN inherits string-ordering undefinedness.
        assert!(!matches("kind BETWEEN 'a' AND 'z'"));
        // IN and LIKE apply to strings only; numeric values are unknown.
        assert!(!matches("altitude IN ('31000')"));
        assert!(!matches("altitude LIKE '3%'"));
        assert!(!matches("urgent LIKE 't%'"));
        // Arithmetic on non-numbers is unknown, and stays unknown upward.
        assert!(!matches("kind + 1 = 2"));
        assert!(!matches("NOT kind + 1 = 2"));
        // Negating a string or bool is unknown.
        assert!(!matches("-kind = 0"));
        assert!(!matches("-urgent = 0"));
    }

    #[test]
    fn numeric_literal_lexer_edge_cases() {
        // A lone dot fails to lex as a number.
        let err = Selector::parse("a = .").expect_err("lone dot");
        assert!(err.reason.contains("invalid numeric literal"));
        // A second dot ends the literal; "1.2.3" lexes as 1.2 then .3,
        // which then fails as a trailing token.
        let err = Selector::parse("a = 1.2.3").expect_err("double dot");
        assert!(err.reason.contains("trailing token"));
        // Trailing-dot floats are accepted ("1." = 1.0).
        let m = Message::text("x").property("v", 1.0f64).build();
        assert!(Selector::parse("v = 1.").unwrap().matches(&m));
    }

    #[test]
    fn not_before_is_null_is_rejected() {
        // SQL spells it "x IS NOT NULL"; "x NOT IS NULL" is a parse error.
        let err = Selector::parse("a NOT IS NULL").expect_err("NOT IS");
        assert!(err.reason.contains("expected BETWEEN, IN or LIKE"));
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn parser_never_panics(input in "[ -~]{0,64}") {
                let _ = Selector::parse(&input);
            }

            #[test]
            fn like_self_match(s in "[a-z]{0,12}") {
                // Every string matches itself as a pattern with no wildcards.
                prop_assert!(like_match(&s, &s, None));
                // And matches the universal pattern.
                prop_assert!(like_match(&s, "%", None));
            }

            #[test]
            fn integer_comparisons_agree_with_rust(a in -1000i64..1000, b in -1000i64..1000) {
                let m = Message::text("x").property("v", a).build();
                let sel = Selector::parse(&format!("v < {b}")).unwrap();
                prop_assert_eq!(sel.matches(&m), a < b);
                let sel = Selector::parse(&format!("v >= {b}")).unwrap();
                prop_assert_eq!(sel.matches(&m), a >= b);
                let sel = Selector::parse(&format!("v = {b}")).unwrap();
                prop_assert_eq!(sel.matches(&m), a == b);
            }
        }
    }
}
