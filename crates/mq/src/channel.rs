//! Store-and-forward channels between queue managers.
//!
//! A [`Channel`] is the MQSeries-style message mover: a background thread
//! that transactionally takes envelopes off the sender's transmission
//! queue, pushes them across a simulated [`Link`], and
//! delivers them to the remote manager. Drops and partitions roll the local
//! transaction back, so the envelope stays safely on the transmission queue
//! and delivery is retried — messages are never lost in flight, which is the
//! "guaranteed delivery to intermediary destinations" baseline the paper
//! builds on.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use simtime::Millis;

use crate::error::MqResult;
use crate::net::{Link, Transfer};
use crate::qmgr::{QueueManager, XMIT_DEST_MANAGER_PROPERTY, XMIT_DEST_QUEUE_PROPERTY};
use crate::queue::Wait;
use crate::stats::Counter;

/// Upper bound on one condvar park awaiting transmission-queue work: a put
/// wakes the mover immediately, the bound keeps the stop flag responsive.
const IDLE_PARK: Millis = Millis(20);

/// Backoff applied after a refused (link-down or remote-crashed) attempt.
/// The mover parks on the link's state condvar, so a heal cuts the backoff
/// short (real time).
const PARTITION_BACKOFF: Duration = Duration::from_millis(10);

/// Per-channel statistics.
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// Envelopes delivered to the remote manager.
    pub delivered: Counter,
    /// Transfer attempts retried after a drop.
    pub retries: Counter,
}

/// A running unidirectional channel from one queue manager to another.
///
/// Construct with [`Channel::connect`]; stop with [`Channel::stop`] (also
/// invoked on drop).
pub struct Channel {
    name: String,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: Arc<ChannelStats>,
    xmit_queue: String,
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("name", &self.name)
            .field("xmit_queue", &self.xmit_queue)
            .field("delivered", &self.stats.delivered.get())
            .finish()
    }
}

impl Channel {
    /// Connects `from` to `to` over `link`, defining the route and spawning
    /// the mover thread. The transmission queue is named
    /// `SYSTEM.XMIT.<to>`.
    ///
    /// # Errors
    ///
    /// Journal failures while creating the transmission queue.
    pub fn connect(
        from: &Arc<QueueManager>,
        to: &Arc<QueueManager>,
        link: Arc<Link>,
    ) -> MqResult<Channel> {
        let xmit_queue = format!("SYSTEM.XMIT.{}", to.name());
        from.define_route(to.name(), &xmit_queue)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ChannelStats::default());
        let name = format!("{}->{}", from.name(), to.name());

        let thread_name = format!("mq-channel-{name}");
        let from2 = from.clone();
        let to2 = to.clone();
        let stop2 = stop.clone();
        let stats2 = stats.clone();
        let xmit2 = xmit_queue.clone();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || mover_loop(from2, to2, link, stop2, stats2, xmit2))
            .map_err(crate::error::MqError::Io)?;

        Ok(Channel {
            name,
            stop,
            handle: Some(handle),
            stats,
            xmit_queue,
        })
    }

    /// Convenience: connects managers in both directions over independent
    /// links with the same configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::connect`].
    pub fn connect_duplex(
        a: &Arc<QueueManager>,
        b: &Arc<QueueManager>,
        link_ab: Arc<Link>,
        link_ba: Arc<Link>,
    ) -> MqResult<(Channel, Channel)> {
        Ok((
            Channel::connect(a, b, link_ab)?,
            Channel::connect(b, a, link_ba)?,
        ))
    }

    /// The channel's `from->to` name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local transmission queue the channel serves.
    pub fn xmit_queue(&self) -> &str {
        &self.xmit_queue
    }

    /// Channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Stops the mover thread and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Channel {
    fn drop(&mut self) {
        self.stop();
    }
}

fn mover_loop(
    from: Arc<QueueManager>,
    to: Arc<QueueManager>,
    link: Arc<Link>,
    stop: Arc<AtomicBool>,
    stats: Arc<ChannelStats>,
    xmit_queue: String,
) {
    let Ok(xmit) = from.queue(&xmit_queue) else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        if !from.is_running() {
            // Sender crashed; wait for a restart signal (a fresh channel is
            // normally created against the rebuilt manager, so just exit).
            return;
        }
        // Park on the transmission queue's condvar until an envelope is
        // put (bounded, so the stop flag stays responsive) before opening
        // a session: idle channels cost no transactions.
        match xmit.wait_nonempty(Wait::Timeout(IDLE_PARK)) {
            Ok(true) => {}
            Ok(false) => continue,
            Err(_) => return, // manager stopped
        }
        let mut session = from.session();
        if session.begin().is_err() {
            return;
        }
        let envelope = match session.get(&xmit_queue, Wait::NoWait) {
            Ok(Some(m)) => m,
            Ok(None) => {
                // Raced with another consumer; re-park.
                let _ = session.rollback_for_retry();
                continue;
            }
            Err(_) => return, // manager stopped
        };
        match link.transfer() {
            Transfer::Deliver(latency) => {
                if latency > Millis::ZERO {
                    from.clock().sleep(latency);
                }
                let mut msg = envelope;
                let dest = msg
                    .remove_property(XMIT_DEST_QUEUE_PROPERTY)
                    .and_then(|v| v.as_str().map(str::to_owned))
                    .unwrap_or_else(|| crate::qmgr::DEAD_LETTER_QUEUE.to_owned());
                msg.remove_property(XMIT_DEST_MANAGER_PROPERTY);
                match to.deliver_from_channel(&dest, msg) {
                    Ok(()) => {
                        if session.commit().is_ok() {
                            stats.delivered.incr();
                        }
                    }
                    Err(_) => {
                        // Remote refused (e.g. crashed): keep the envelope
                        // and back off (a link transition ends the backoff
                        // early).
                        let _ = session.rollback_for_retry();
                        link.wait_state_change(PARTITION_BACKOFF);
                    }
                }
            }
            Transfer::Dropped => {
                stats.retries.incr();
                let _ = session.rollback_for_retry();
            }
            Transfer::Down => {
                // Partitioned: park on the link's state condvar; the heal
                // wakes the mover immediately instead of after a poll tick.
                let _ = session.rollback_for_retry();
                link.wait_state_change(PARTITION_BACKOFF);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, QueueAddress};
    use crate::net::LinkConfig;
    use simtime::SystemClock;

    fn pair() -> (Arc<QueueManager>, Arc<QueueManager>) {
        let clock = SystemClock::new();
        let a = QueueManager::builder("QA")
            .clock(clock.clone())
            .build()
            .unwrap();
        let b = QueueManager::builder("QB").clock(clock).build().unwrap();
        (a, b)
    }

    fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !f() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn messages_flow_across_ideal_link() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        for i in 0..20 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(format!("m{i}")).build(),
            )
            .unwrap();
        }
        wait_for("20 deliveries", || b.queue("IN").unwrap().depth() == 20);
        // Envelope properties are stripped on delivery.
        let got = b.get("IN", Wait::NoWait).unwrap().unwrap();
        assert!(got.property(XMIT_DEST_QUEUE_PROPERTY).is_none());
        assert!(got.property(XMIT_DEST_MANAGER_PROPERTY).is_none());
    }

    #[test]
    fn lossy_link_still_delivers_everything() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let link = Link::new(LinkConfig {
            drop_rate: 0.4,
            seed: 11,
            ..LinkConfig::default()
        });
        let channel = Channel::connect(&a, &b, link.clone()).unwrap();
        for i in 0..30 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(format!("m{i}")).build(),
            )
            .unwrap();
        }
        wait_for("30 deliveries despite loss", || {
            b.queue("IN").unwrap().depth() == 30
        });
        assert!(
            channel.stats().retries.get() > 0,
            "expected at least one retried drop"
        );
    }

    #[test]
    fn partition_pauses_then_heals() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let link = Link::ideal();
        link.set_up(false);
        let _channel = Channel::connect(&a, &b, link.clone()).unwrap();
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("x").build())
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(
            b.queue("IN").unwrap().depth(),
            0,
            "partitioned: no delivery"
        );
        assert!(
            link.stats().refused.get() > 0,
            "mover kept retrying against the partition"
        );
        link.set_up(true);
        wait_for("delivery after heal", || {
            b.queue("IN").unwrap().depth() == 1
        });
    }

    #[test]
    fn unknown_remote_queue_dead_letters() {
        let (a, b) = pair();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "NO.SUCH.Q"),
            Message::text("stray").build(),
        )
        .unwrap();
        wait_for("dead letter", || {
            b.queue(crate::qmgr::DEAD_LETTER_QUEUE).unwrap().depth() == 1
        });
    }

    #[test]
    fn duplex_channels_carry_request_reply() {
        let (a, b) = pair();
        b.create_queue("REQ").unwrap();
        a.create_queue("REP").unwrap();
        let (_c1, _c2) = Channel::connect_duplex(&a, &b, Link::ideal(), Link::ideal()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "REQ"),
            Message::text("ping")
                .reply_to(QueueAddress::new("QA", "REP"))
                .build(),
        )
        .unwrap();
        wait_for("request", || b.queue("REQ").unwrap().depth() == 1);
        let req = b.get("REQ", Wait::NoWait).unwrap().unwrap();
        let reply_to = req.reply_to().unwrap().clone();
        b.put_to(&reply_to, Message::text("pong").build()).unwrap();
        wait_for("reply", || a.queue("REP").unwrap().depth() == 1);
        let rep = a.get("REP", Wait::NoWait).unwrap().unwrap();
        assert_eq!(rep.payload_str(), Some("pong"));
    }

    #[test]
    fn stop_is_idempotent_and_joins() {
        let (a, b) = pair();
        let mut channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        channel.stop();
        channel.stop();
        assert_eq!(channel.xmit_queue(), "SYSTEM.XMIT.QB");
        assert_eq!(channel.name(), "QA->QB");
    }

    #[test]
    fn persistent_messages_survive_sender_crash_mid_transit() {
        let clock = SystemClock::new();
        let journal = crate::journal::MemJournal::new();
        let a = QueueManager::builder("QA")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        let b = QueueManager::builder("QB")
            .clock(clock.clone())
            .build()
            .unwrap();
        b.create_queue("IN").unwrap();
        // Partitioned link: the envelope stays on the xmit queue.
        let link = Link::ideal();
        link.set_up(false);
        let _channel = Channel::connect(&a, &b, link.clone()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "IN"),
            Message::text("durable").persistent(true).build(),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        a.crash();
        // Restart the sender from its journal; the envelope must still be
        // on the transmission queue, and a new channel delivers it.
        let a2 = QueueManager::builder("QA")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(a2.queue("SYSTEM.XMIT.QB").unwrap().depth(), 1);
        a2.define_route("QB", "SYSTEM.XMIT.QB").unwrap();
        link.set_up(true);
        let _channel2 = Channel::connect(&a2, &b, link).unwrap();
        wait_for("post-crash delivery", || {
            b.queue("IN").unwrap().depth() == 1
        });
    }
}
