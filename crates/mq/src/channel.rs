//! Store-and-forward channels between queue managers.
//!
//! A [`Channel`] is the MQSeries-style message mover: a background thread
//! that transactionally takes envelopes off the sender's transmission
//! queue, pushes them across a [`Transport`], and commits the destructive
//! gets only once the transport reports the batch delivered. Drops and
//! partitions roll the local transaction back, so the envelopes stay
//! safely on the transmission queue and delivery is retried — messages are
//! never lost in flight, which is the "guaranteed delivery to intermediary
//! destinations" baseline the paper builds on.
//!
//! The mover is transport-agnostic: [`Channel::connect`] wires the classic
//! in-process [`Link`] path (via [`LinkTransport`]),
//! [`Channel::connect_tcp`] crosses real sockets, and
//! [`Channel::connect_transport`] accepts any [`Transport`]. Envelopes are
//! drained in batches (up to [`MAX_BATCH`] per session transaction), which
//! amortizes both the transaction overhead and — on TCP — the per-frame
//! round trip.
//!
//! When the transport exposes a
//! [`PipelinedTransport`](crate::transport::PipelinedTransport) (via
//! [`Transport::pipeline`]), the mover keeps a *window* of batches in
//! flight instead of stopping for an acknowledgment after each one: every
//! submitted batch keeps its own open session, and sessions are committed
//! in order as the receiver's cumulative ack watermark advances past their
//! tickets. A disconnect strands whatever the watermark had not covered;
//! those sessions are rolled back newest-first (so front-requeueing
//! preserves FIFO order) and the envelopes are retransmitted after
//! reconnect, with receiver-side dedup collapsing any batch the peer had
//! in fact already accepted — delivery stays exactly-once end to end.
//!
//! Batches are cut on *bytes* as well as count: the mover stops adding
//! envelopes once [`BATCH_BYTE_BUDGET`] wire bytes are staged, so a batch
//! can never grow past the transport frame cap
//! ([`MAX_FRAME_BODY`](crate::transport::frame::MAX_FRAME_BODY)) and wedge
//! the channel in an encode-fail/retry loop. A single envelope whose wire
//! size alone exceeds [`MAX_ENVELOPE_WIRE`] can never cross any batch, so
//! it is moved to the local dead-letter queue (reason in
//! [`DLQ_REASON_PROPERTY`]) inside the same transaction instead of
//! blocking every envelope queued behind it.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::MqResult;
use crate::message::Message;
use crate::net::Link;
use crate::qmgr::{ManagedTask, QueueManager, DEAD_LETTER_QUEUE, DLQ_REASON_PROPERTY};
use crate::queue::Wait;
use crate::session::Session;
use crate::stats::Counter;
use crate::transport::frame::{Frame, MAX_FRAME_BODY};
use crate::transport::tcp::{TcpConfig, TcpTransport};
use crate::transport::{BatchOutcome, BatchTicket, LinkTransport, SubmitError, Transport};
use simtime::Millis;

/// Upper bound on one condvar park awaiting transmission-queue work: a put
/// wakes the mover immediately, the bound keeps the stop flag responsive.
const IDLE_PARK: Millis = Millis(20);

/// Backoff applied after a refused (transport-unavailable) attempt. The
/// mover parks in [`Transport::wait_ready`], so a heal or reconnect cuts
/// the backoff short.
const PARTITION_BACKOFF: Duration = Duration::from_millis(10);

/// Maximum envelopes drained into one session transaction / one transport
/// batch.
pub const MAX_BATCH: usize = 64;

/// Byte budget for one batch: the mover stops draining once the staged
/// envelopes' combined wire size reaches this. Half the frame cap, so even
/// with the one-envelope overshoot (a cut happens *after* the envelope
/// that crosses the budget is staged) the encoded batch stays well below
/// [`MAX_FRAME_BODY`].
pub const BATCH_BYTE_BUDGET: usize = MAX_FRAME_BODY / 2;

/// Largest single envelope (wire size) a channel will carry. Anything
/// bigger could overflow a frame all by itself, so it is dead-lettered
/// locally rather than allowed to wedge the channel.
pub const MAX_ENVELOPE_WIRE: usize = MAX_FRAME_BODY / 4;

/// Per-channel statistics.
#[derive(Debug, Default)]
pub struct ChannelStats {
    /// Envelopes delivered to the remote manager.
    pub delivered: Counter,
    /// Batches retried after the transport dropped them.
    pub retries: Counter,
    /// Envelopes exceeding [`MAX_ENVELOPE_WIRE`] moved to the local
    /// dead-letter queue instead of being sent.
    pub oversized_dead_lettered: Counter,
}

/// The stoppable half of a channel, shared between the [`Channel`] handle
/// and the owning manager's task registry so either can shut it down.
struct ChannelCore {
    stop: AtomicBool,
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Cleared on shutdown, breaking the reference cycle
    /// manager → core → transport → remote manager → … that duplex
    /// channel pairs would otherwise form.
    transport: Mutex<Option<Arc<dyn Transport>>>,
}

impl ManagedTask for ChannelCore {
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Stop the transport first: a mover blocked inside send_batch or
        // wait_ready is woken/errored out so the join below is prompt.
        let transport = self.transport.lock().take();
        if let Some(transport) = transport {
            transport.shutdown();
        }
        let handle = self.handle.lock().take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

/// A running unidirectional channel from one queue manager to another.
///
/// Construct with [`Channel::connect`] (simulated link),
/// [`Channel::connect_tcp`] (real sockets), or
/// [`Channel::connect_transport`]; stop with [`Channel::stop`], the
/// sending manager's [`QueueManager::shutdown`], or drop.
pub struct Channel {
    name: String,
    core: Arc<ChannelCore>,
    stats: Arc<ChannelStats>,
    xmit_queue: String,
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Channel")
            .field("name", &self.name)
            .field("xmit_queue", &self.xmit_queue)
            .field("delivered", &self.stats.delivered.get())
            .finish()
    }
}

impl Channel {
    /// Connects `from` to `to` over the in-process simulated `link`,
    /// defining the route and spawning the mover thread. The transmission
    /// queue is named `SYSTEM.XMIT.<to>`.
    ///
    /// # Errors
    ///
    /// Journal failures while creating the transmission queue.
    pub fn connect(
        from: &Arc<QueueManager>,
        to: &Arc<QueueManager>,
        link: Arc<Link>,
    ) -> MqResult<Channel> {
        let remote = to.name().to_owned();
        let transport = LinkTransport::new(from, to.clone(), link);
        Channel::connect_transport(from, &remote, transport)
    }

    /// Connects `from` to the remote manager named `remote` through a TCP
    /// acceptor listening at `addr`. The handshake verifies the peer
    /// presents `remote` unless `config.expected_peer` overrides it.
    ///
    /// # Errors
    ///
    /// Transport setup failures and journal failures while creating the
    /// transmission queue.
    pub fn connect_tcp(
        from: &Arc<QueueManager>,
        remote: &str,
        addr: std::net::SocketAddr,
        mut config: TcpConfig,
    ) -> MqResult<Channel> {
        if config.expected_peer.is_none() {
            config.expected_peer = Some(remote.to_owned());
        }
        let transport = TcpTransport::connect(from.name(), addr, config, from.obs().metrics())?;
        Channel::connect_transport(from, remote, transport)
    }

    /// Connects `from` to the remote manager named `remote` over an
    /// arbitrary [`Transport`]. The channel registers itself with `from`,
    /// so [`QueueManager::shutdown`] stops it.
    ///
    /// # Errors
    ///
    /// Journal failures while creating the transmission queue.
    pub fn connect_transport(
        from: &Arc<QueueManager>,
        remote: &str,
        transport: Arc<dyn Transport>,
    ) -> MqResult<Channel> {
        let xmit_queue = format!("SYSTEM.XMIT.{remote}");
        from.define_route(remote, &xmit_queue)?;
        let stats = Arc::new(ChannelStats::default());
        let name = format!("{}->{}", from.name(), remote);
        let core = Arc::new(ChannelCore {
            stop: AtomicBool::new(false),
            handle: Mutex::new(None),
            transport: Mutex::new(Some(transport.clone())),
        });

        let thread_name = format!("mq-channel-{name}");
        let from2 = from.clone();
        let core2 = core.clone();
        let stats2 = stats.clone();
        let xmit2 = xmit_queue.clone();
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || mover_loop(&from2, &transport, &core2.stop, &stats2, &xmit2))
            .map_err(crate::error::MqError::Io)?;
        *core.handle.lock() = Some(handle);
        from.attach_task(core.clone());

        Ok(Channel {
            name,
            core,
            stats,
            xmit_queue,
        })
    }

    /// Convenience: connects managers in both directions over independent
    /// links with the same configuration.
    ///
    /// # Errors
    ///
    /// Same as [`Channel::connect`].
    pub fn connect_duplex(
        a: &Arc<QueueManager>,
        b: &Arc<QueueManager>,
        link_ab: Arc<Link>,
        link_ba: Arc<Link>,
    ) -> MqResult<(Channel, Channel)> {
        Ok((
            Channel::connect(a, b, link_ab)?,
            Channel::connect(b, a, link_ba)?,
        ))
    }

    /// The channel's `from->to` name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The local transmission queue the channel serves.
    pub fn xmit_queue(&self) -> &str {
        &self.xmit_queue
    }

    /// Channel statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Stops the mover thread (and its transport) and waits for it to
    /// exit. Idempotent, and shared with [`QueueManager::shutdown`].
    pub fn stop(&mut self) {
        self.core.shutdown();
    }
}

impl Drop for Channel {
    fn drop(&mut self) {
        self.core.shutdown();
    }
}

/// Envelopes drained from the transmission queue into one open session
/// transaction, ready to go out as one transport batch.
struct Staged {
    batch: Vec<Message>,
    /// Oversized envelopes diverted to the dead-letter queue inside the
    /// same transaction.
    oversized: u64,
}

/// A submitted batch whose session stays open until the receiver's ack
/// watermark covers its ticket.
struct Inflight {
    ticket: BatchTicket,
    session: Session,
    count: u64,
    oversized: u64,
}

/// Drains up to [`MAX_BATCH`] envelopes (or [`BATCH_BYTE_BUDGET`] wire
/// bytes, whichever is hit first) from the transmission queue into the
/// open `session`. Envelopes too large to ever fit a frame are diverted
/// to the dead-letter queue in the same transaction. Returns `None` when
/// the manager stopped mid-drain.
// lint: custody(envelope)
fn stage_batch(session: &mut Session, xmit_queue: &str) -> Option<Staged> {
    let mut batch = Vec::new();
    let mut batch_bytes = 0usize;
    let mut oversized = 0u64;
    loop {
        match session.get(xmit_queue, Wait::NoWait) {
            Ok(Some(mut envelope)) => {
                let wire = Frame::message_wire_len(&envelope);
                if wire > MAX_ENVELOPE_WIRE {
                    // This envelope can never cross the wire; divert it
                    // to the dead-letter queue inside the same
                    // transaction so the channel keeps moving.
                    envelope.set_property(
                        DLQ_REASON_PROPERTY,
                        format!(
                            "oversized envelope: {wire} wire bytes exceeds \
                             channel cap {MAX_ENVELOPE_WIRE}"
                        ),
                    );
                    if session.put(DEAD_LETTER_QUEUE, envelope).is_err() {
                        return None; // manager stopped
                    }
                    oversized += 1;
                    continue;
                }
                batch.push(envelope);
                batch_bytes += wire;
                if batch.len() >= MAX_BATCH || batch_bytes >= BATCH_BYTE_BUDGET {
                    break;
                }
            }
            Ok(None) => break,
            Err(_) => return None, // manager stopped
        }
    }
    Some(Staged { batch, oversized })
}

/// Rolls back every in-flight session, newest first: each rollback
/// front-requeues its envelopes, so unwinding in reverse restores the
/// original FIFO order on the transmission queue. Redelivery counts are
/// not bumped — the loss was in transit, not a consumer backout.
fn rollback_window(window: &mut VecDeque<Inflight>, window_rollbacks: &Counter) {
    while let Some(mut inflight) = window.pop_back() {
        let _ = inflight.session.rollback_for_retry();
        window_rollbacks.incr();
    }
}

/// Entry point for the mover thread: picks the pipelined window loop when
/// the transport supports it, the classic one-batch-at-a-time lockstep
/// loop otherwise.
fn mover_loop(
    from: &Arc<QueueManager>,
    transport: &Arc<dyn Transport>,
    stop: &AtomicBool,
    stats: &ChannelStats,
    xmit_queue: &str,
) {
    if transport.pipeline().is_some() {
        pipelined_mover(from, transport, stop, stats, xmit_queue);
    } else {
        lockstep_mover(from, transport, stop, stats, xmit_queue);
    }
}

/// Classic lockstep mover: one batch in flight at a time, committed or
/// rolled back on the synchronous [`Transport::send_batch`] outcome.
fn lockstep_mover(
    from: &Arc<QueueManager>,
    transport: &Arc<dyn Transport>,
    stop: &AtomicBool,
    stats: &ChannelStats,
    xmit_queue: &str,
) {
    let Ok(xmit) = from.queue(xmit_queue) else {
        return;
    };
    while !stop.load(Ordering::SeqCst) {
        if !from.is_running() {
            // Sender crashed; a fresh channel is normally created against
            // the rebuilt manager, so just exit.
            return;
        }
        // Park on the transmission queue's condvar until an envelope is
        // put (bounded, so the stop flag stays responsive) before opening
        // a session: idle channels cost no transactions.
        match xmit.wait_nonempty(Wait::Timeout(IDLE_PARK)) {
            Ok(true) => {}
            Ok(false) => continue,
            Err(_) => return, // manager stopped
        }
        let mut session = from.session();
        if session.begin().is_err() {
            return;
        }
        let Some(Staged { batch, oversized }) = stage_batch(&mut session, xmit_queue) else {
            return; // manager stopped
        };
        if batch.is_empty() {
            if oversized > 0 {
                // Nothing to send, but oversized envelopes were staged
                // onto the dead-letter queue: make that move durable.
                if session.commit().is_ok() {
                    stats.oversized_dead_lettered.add(oversized);
                }
            } else {
                // Raced with another consumer; re-park.
                let _ = session.rollback_for_retry();
            }
            continue;
        }
        match transport.send_batch(&batch) {
            BatchOutcome::Delivered => {
                if session.commit().is_ok() {
                    stats.delivered.add(batch.len() as u64);
                    stats.oversized_dead_lettered.add(oversized);
                }
            }
            BatchOutcome::Dropped => {
                // Lost in transit: the rollback re-queues the envelopes
                // (without bumping backout counts) and the next iteration
                // retries immediately.
                stats.retries.incr();
                let _ = session.rollback_for_retry();
            }
            BatchOutcome::Unavailable => {
                // Partitioned / disconnected / remote down: keep the
                // envelopes and park until the transport heals (a
                // reconnect ends the backoff early).
                let _ = session.rollback_for_retry();
                transport.wait_ready(PARTITION_BACKOFF);
            }
        }
    }
}

/// Pipelined mover: keeps up to
/// [`PipelinedTransport::window`](crate::transport::PipelinedTransport::window)
/// batches in flight, each holding its own open session, and commits
/// sessions in submission order as the receiver's cumulative ack
/// watermark advances.
///
/// Invariants:
/// * Sessions commit strictly in submission order — a later batch's ack
///   can never commit past an earlier uncovered one, because the
///   watermark is cumulative.
/// * When the window's *front* batch is neither covered nor pending (its
///   connection epoch died), every in-flight session is rolled back
///   newest-first and the envelopes retransmit after reconnect; the
///   receiver's dedup window absorbs any batch that had actually landed.
/// * On stop, covered batches are still committed (their acks are final
///   even after disconnect) before the remainder rolls back, so no
///   acknowledged delivery is ever re-sent.
fn pipelined_mover(
    from: &Arc<QueueManager>,
    transport: &Arc<dyn Transport>,
    stop: &AtomicBool,
    stats: &ChannelStats,
    xmit_queue: &str,
) {
    let Some(pipe) = transport.pipeline() else {
        return;
    };
    let Ok(xmit) = from.queue(xmit_queue) else {
        return;
    };
    // Wake a mover parked in `wait_progress` (watching for acks) when new
    // envelopes land on the transmission queue, so a half-full window
    // tops up immediately instead of at the next park timeout. The weak
    // reference keeps the watcher from pinning the transport (and, via
    // duplex pairs, the remote manager) alive.
    let weak = Arc::downgrade(transport);
    xmit.add_put_watcher(Arc::new(move || {
        if let Some(t) = weak.upgrade() {
            if let Some(p) = t.pipeline() {
                p.poke();
            }
        }
    }));
    let window_rollbacks = from
        .obs()
        .metrics()
        .counter("mq.transport.window_rollbacks");
    let mut window: VecDeque<Inflight> = VecDeque::new();

    loop {
        let stopping = stop.load(Ordering::SeqCst) || !from.is_running();
        let progress = pipe.progress();
        // Commit every leading in-flight batch the watermark covers.
        // Acks are final even across a disconnect, so this also runs on
        // the stop path: an acknowledged batch must never retransmit.
        while window.front().is_some_and(|f| progress.covers(f.ticket)) {
            let Some(mut inflight) = window.pop_front() else {
                break;
            };
            if inflight.session.commit().is_ok() {
                stats.delivered.add(inflight.count);
                stats.oversized_dead_lettered.add(inflight.oversized);
            }
        }
        if stopping {
            rollback_window(&mut window, &window_rollbacks);
            return;
        }
        // The front batch is uncovered; if it is not pending either, its
        // connection died before the ack arrived. The peer may or may not
        // have accepted it, so re-queue the whole window and retransmit
        // after reconnect — receiver-side dedup keeps this exactly-once.
        if window
            .front()
            .is_some_and(|f| !progress.pending(f.ticket))
        {
            rollback_window(&mut window, &window_rollbacks);
            transport.wait_ready(PARTITION_BACKOFF);
            continue;
        }
        // Refill: stage and submit batches until the window is full or
        // the transmission queue runs dry.
        while progress.connected && window.len() < pipe.window() {
            if window.is_empty() {
                // Nothing in flight: park on the queue's condvar
                // (bounded, so the stop flag stays responsive).
                match xmit.wait_nonempty(Wait::Timeout(IDLE_PARK)) {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(_) => {
                        rollback_window(&mut window, &window_rollbacks);
                        return; // manager stopped
                    }
                }
            } else if xmit.depth() == 0 {
                break; // in-flight work to watch; don't park here
            }
            let mut session = from.session();
            if session.begin().is_err() {
                rollback_window(&mut window, &window_rollbacks);
                return;
            }
            let Some(Staged { batch, oversized }) = stage_batch(&mut session, xmit_queue) else {
                rollback_window(&mut window, &window_rollbacks);
                return; // manager stopped
            };
            if batch.is_empty() {
                if oversized > 0 {
                    // Only dead-letter diversions were staged; make the
                    // move durable without a wire round trip.
                    if session.commit().is_ok() {
                        stats.oversized_dead_lettered.add(oversized);
                    }
                } else {
                    // Raced with another consumer; re-park.
                    let _ = session.rollback_for_retry();
                }
                break;
            }
            match pipe.submit(&batch) {
                Ok(ticket) => {
                    window.push_back(Inflight {
                        ticket,
                        session,
                        count: batch.len() as u64,
                        oversized,
                    });
                }
                Err(SubmitError::Rejected) => {
                    // Encode failure — should be prevented by the byte
                    // budget; keep the envelopes and retry.
                    stats.retries.incr();
                    let _ = session.rollback_for_retry();
                    break;
                }
                Err(SubmitError::Unavailable) => {
                    // Disconnected (or stopping): the outer loop settles
                    // the in-flight window first, then backs off.
                    let _ = session.rollback_for_retry();
                    break;
                }
            }
        }
        // Park until something moves: an ack advancing the watermark, a
        // teardown, a poke from the put-watcher, or the timeout.
        if window.is_empty() {
            if !progress.connected {
                transport.wait_ready(PARTITION_BACKOFF);
            }
            continue;
        }
        let _ = pipe.wait_progress(progress, IDLE_PARK.to_duration());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, QueueAddress};
    use crate::net::LinkConfig;
    use crate::qmgr::{XMIT_DEST_MANAGER_PROPERTY, XMIT_DEST_QUEUE_PROPERTY};
    use simtime::SystemClock;

    fn pair() -> (Arc<QueueManager>, Arc<QueueManager>) {
        let clock = SystemClock::new();
        let a = QueueManager::builder("QA")
            .clock(clock.clone())
            .build()
            .unwrap();
        let b = QueueManager::builder("QB").clock(clock).build().unwrap();
        (a, b)
    }

    fn wait_for<F: Fn() -> bool>(what: &str, f: F) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !f() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn messages_flow_across_ideal_link() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        for i in 0..20 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(format!("m{i}")).build(),
            )
            .unwrap();
        }
        wait_for("20 deliveries", || b.queue("IN").unwrap().depth() == 20);
        // Envelope properties are stripped on delivery.
        let got = b.get("IN", Wait::NoWait).unwrap().unwrap();
        assert!(got.property(XMIT_DEST_QUEUE_PROPERTY).is_none());
        assert!(got.property(XMIT_DEST_MANAGER_PROPERTY).is_none());
    }

    #[test]
    fn link_stats_surface_in_sender_registry() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("m").build())
            .unwrap();
        wait_for("delivery", || b.queue("IN").unwrap().depth() == 1);
        let snap = a.obs().metrics().snapshot();
        assert!(snap.counter("mq.net.attempts") >= 1);
        assert!(snap.counter("mq.net.delivered") >= 1);
        assert!(snap.counter("mq.transport.batches_sent") >= 1);
        assert!(snap.counter("mq.transport.messages_sent") >= 1);
    }

    #[test]
    fn lossy_link_still_delivers_everything() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let link = Link::new(LinkConfig {
            drop_rate: 0.4,
            seed: 11,
            ..LinkConfig::default()
        });
        let channel = Channel::connect(&a, &b, link.clone()).unwrap();
        for i in 0..30 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(format!("m{i}")).build(),
            )
            .unwrap();
        }
        wait_for("30 deliveries despite loss", || {
            b.queue("IN").unwrap().depth() == 30
        });
        assert!(
            channel.stats().retries.get() > 0,
            "expected at least one retried drop"
        );
    }

    #[test]
    fn partition_pauses_then_heals() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let link = Link::ideal();
        link.set_up(false);
        let _channel = Channel::connect(&a, &b, link.clone()).unwrap();
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("x").build())
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(
            b.queue("IN").unwrap().depth(),
            0,
            "partitioned: no delivery"
        );
        assert!(
            link.stats().refused.get() > 0,
            "mover kept retrying against the partition"
        );
        link.set_up(true);
        wait_for("delivery after heal", || {
            b.queue("IN").unwrap().depth() == 1
        });
    }

    #[test]
    fn unknown_remote_queue_dead_letters() {
        let (a, b) = pair();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "NO.SUCH.Q"),
            Message::text("stray").build(),
        )
        .unwrap();
        wait_for("dead letter", || {
            b.queue(crate::qmgr::DEAD_LETTER_QUEUE).unwrap().depth() == 1
        });
    }

    #[test]
    fn duplex_channels_carry_request_reply() {
        let (a, b) = pair();
        b.create_queue("REQ").unwrap();
        a.create_queue("REP").unwrap();
        let (_c1, _c2) = Channel::connect_duplex(&a, &b, Link::ideal(), Link::ideal()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "REQ"),
            Message::text("ping")
                .reply_to(QueueAddress::new("QA", "REP"))
                .build(),
        )
        .unwrap();
        wait_for("request", || b.queue("REQ").unwrap().depth() == 1);
        let req = b.get("REQ", Wait::NoWait).unwrap().unwrap();
        let reply_to = req.reply_to().unwrap().clone();
        b.put_to(&reply_to, Message::text("pong").build()).unwrap();
        wait_for("reply", || a.queue("REP").unwrap().depth() == 1);
        let rep = a.get("REP", Wait::NoWait).unwrap().unwrap();
        assert_eq!(rep.payload_str(), Some("pong"));
    }

    #[test]
    fn stop_is_idempotent_and_joins() {
        let (a, b) = pair();
        let mut channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        channel.stop();
        channel.stop();
        assert_eq!(channel.xmit_queue(), "SYSTEM.XMIT.QB");
        assert_eq!(channel.name(), "QA->QB");
    }

    #[test]
    fn manager_shutdown_stops_channels_and_is_idempotent() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("m1").build())
            .unwrap();
        wait_for("pre-shutdown delivery", || {
            b.queue("IN").unwrap().depth() == 1
        });
        a.shutdown();
        a.shutdown(); // double shutdown: second call must be a no-op
        // The mover is gone: a new envelope stays on the xmit queue while
        // the manager itself keeps serving local traffic.
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("m2").build())
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(a.queue("SYSTEM.XMIT.QB").unwrap().depth(), 1);
        assert_eq!(b.queue("IN").unwrap().depth(), 1);
        // Dropping the (already stopped) channel handle is also fine.
        drop(channel);
    }

    #[test]
    fn batches_amortize_sessions_under_burst() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        // Park the mover behind a partition while the burst accumulates,
        // then heal: the backlog must cross in (few) batches.
        let link = Link::ideal();
        link.set_up(false);
        let _channel = Channel::connect(&a, &b, link.clone()).unwrap();
        for i in 0..200 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(format!("m{i}")).build(),
            )
            .unwrap();
        }
        link.set_up(true);
        wait_for("burst delivered", || b.queue("IN").unwrap().depth() == 200);
        let snap = a.obs().metrics().snapshot();
        let batches = snap.counter("mq.transport.batches_sent");
        assert!(
            batches < 200,
            "expected batched sends, got {batches} batches for 200 messages"
        );
    }

    #[test]
    fn persistent_messages_survive_sender_crash_mid_transit() {
        let clock = SystemClock::new();
        let journal = crate::journal::MemJournal::new();
        let a = QueueManager::builder("QA")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        let b = QueueManager::builder("QB")
            .clock(clock.clone())
            .build()
            .unwrap();
        b.create_queue("IN").unwrap();
        // Partitioned link: the envelope stays on the xmit queue.
        let link = Link::ideal();
        link.set_up(false);
        let _channel = Channel::connect(&a, &b, link.clone()).unwrap();
        a.put_to(
            &QueueAddress::new("QB", "IN"),
            Message::text("durable").persistent(true).build(),
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        a.crash();
        // Restart the sender from its journal; the envelope must still be
        // on the transmission queue, and a new channel delivers it.
        let a2 = QueueManager::builder("QA")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        assert_eq!(a2.queue("SYSTEM.XMIT.QB").unwrap().depth(), 1);
        a2.define_route("QB", "SYSTEM.XMIT.QB").unwrap();
        link.set_up(true);
        let _channel2 = Channel::connect(&a2, &b, link).unwrap();
        wait_for("post-crash delivery", || {
            b.queue("IN").unwrap().depth() == 1
        });
    }

    #[test]
    fn oversized_envelope_is_dead_lettered_and_channel_keeps_moving() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        let _channel = Channel::connect(&a, &b, Link::ideal()).unwrap();
        // One envelope that can never fit a frame, then a normal one
        // queued behind it: the big one must go to QA's dead-letter queue
        // and the small one must still be delivered.
        a.put_to(
            &QueueAddress::new("QB", "IN"),
            Message::text("x".repeat(MAX_ENVELOPE_WIRE + 1)).build(),
        )
        .unwrap();
        a.put_to(&QueueAddress::new("QB", "IN"), Message::text("small").build())
            .unwrap();
        wait_for("small envelope delivered past the oversized one", || {
            b.queue("IN").unwrap().depth() == 1
        });
        wait_for("oversized envelope dead-lettered", || {
            a.queue(crate::qmgr::DEAD_LETTER_QUEUE).unwrap().depth() == 1
        });
        let dead = a
            .get(crate::qmgr::DEAD_LETTER_QUEUE, Wait::NoWait)
            .unwrap()
            .unwrap();
        let reason = dead.str_property(DLQ_REASON_PROPERTY).unwrap();
        assert!(
            reason.contains("oversized envelope"),
            "reason names the cap: {reason}"
        );
        // The envelope keeps its addressing for post-mortem audit.
        assert_eq!(dead.str_property(XMIT_DEST_MANAGER_PROPERTY), Some("QB"));
        // Only the small envelope crossed; the oversized one never did.
        let got = b.get("IN", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("small"));
        assert_eq!(b.queue("IN").unwrap().depth(), 0);
    }

    #[test]
    fn byte_budget_cuts_batches_below_frame_cap() {
        let (a, b) = pair();
        b.create_queue("IN").unwrap();
        // Park the mover behind a partition, queue 6 × ~2.5 MiB (≈15 MiB
        // total — more than MAX_FRAME_BODY in one count-limited batch),
        // then heal. Without the byte budget the mover would stage all 6
        // in one batch and the frame encode would refuse it forever.
        let link = Link::ideal();
        link.set_up(false);
        let channel = Channel::connect(&a, &b, link.clone()).unwrap();
        let payload = "y".repeat(5 * MAX_FRAME_BODY / 32);
        for _ in 0..6 {
            a.put_to(
                &QueueAddress::new("QB", "IN"),
                Message::text(payload.clone()).build(),
            )
            .unwrap();
        }
        link.set_up(true);
        wait_for("all large envelopes delivered", || {
            b.queue("IN").unwrap().depth() == 6
        });
        let snap = a.obs().metrics().snapshot();
        assert!(
            snap.counter("mq.transport.batches_sent") >= 2,
            "byte budget must split the backlog into multiple batches"
        );
        assert_eq!(channel.stats().oversized_dead_lettered.get(), 0);
    }
}
