//! Simulated point-to-point network links.
//!
//! A [`Link`] models the wire between two queue managers: configurable base
//! latency, uniform jitter, message-drop probability, and an up/down switch
//! for partitions. Channels ([`crate::channel`]) consult the link for every
//! transfer attempt; because dropped transfers are retried from the
//! transmission queue, the *end-to-end* delivery guarantee stays intact —
//! exactly the property the paper's reliable-messaging substrate provides.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::Millis;

use crate::stats::{Counter, MetricsRegistry};

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Fixed one-way latency applied to every successful transfer.
    pub base_latency: Millis,
    /// Additional uniform random latency in `0..=jitter`.
    pub jitter: Millis,
    /// Probability in `[0, 1]` that a transfer attempt is dropped.
    pub drop_rate: f64,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            base_latency: Millis::ZERO,
            jitter: Millis::ZERO,
            drop_rate: 0.0,
            seed: 0x5EED,
        }
    }
}

/// Outcome of one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Deliver after the given latency.
    Deliver(Millis),
    /// The attempt was dropped; the sender should retry.
    Dropped,
    /// The link is partitioned; the sender should back off.
    Down,
}

/// Per-link statistics.
///
/// The cells are `Arc`s so they can double as registry-visible metrics:
/// [`Link::register_metrics`] exposes them as `mq.net.*`.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Transfer attempts made.
    pub attempts: Arc<Counter>,
    /// Attempts that were delivered.
    pub delivered: Arc<Counter>,
    /// Attempts dropped by the loss model.
    pub dropped: Arc<Counter>,
    /// Attempts refused because the link was down.
    pub refused: Arc<Counter>,
}

/// A simulated unidirectional network link.
pub struct Link {
    config: Mutex<LinkConfig>,
    rng: Mutex<StdRng>,
    up: AtomicBool,
    /// Bumped on every up/down transition; [`Link::wait_state_change`]
    /// parks on the paired condvar instead of sleep-polling.
    state_seq: Mutex<u64>,
    state_changed: Condvar,
    /// Fault-injection: this many upcoming transfers are dropped
    /// deterministically, ahead of the probabilistic loss model.
    force_drop: AtomicU64,
    stats: LinkStats,
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("config", &*self.config.lock())
            .field("up", &self.is_up())
            .finish()
    }
}

impl Link {
    /// Creates a link with the given parameters, initially up.
    pub fn new(config: LinkConfig) -> Arc<Link> {
        let rng = StdRng::seed_from_u64(config.seed);
        Arc::new(Link {
            config: Mutex::new(config),
            rng: Mutex::new(rng),
            up: AtomicBool::new(true),
            state_seq: Mutex::new(0),
            state_changed: Condvar::new(),
            force_drop: AtomicU64::new(0),
            stats: LinkStats::default(),
        })
    }

    /// Creates an ideal link: zero latency, no loss.
    pub fn ideal() -> Arc<Link> {
        Link::new(LinkConfig::default())
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Partitions (`false`) or heals (`true`) the link, waking any thread
    /// parked in [`Link::wait_state_change`] on an actual transition.
    pub fn set_up(&self, up: bool) {
        let prev = self.up.swap(up, Ordering::SeqCst);
        if prev != up {
            *self.state_seq.lock() += 1;
            self.state_changed.notify_all();
        }
    }

    /// Parks the caller until the link's up/down state changes or `timeout`
    /// elapses, whichever comes first; returns whether a transition was
    /// observed. Channels use this to back off from a partition without
    /// sleep-polling — a heal wakes them immediately.
    pub fn wait_state_change(&self, timeout: std::time::Duration) -> bool {
        let mut seq = self.state_seq.lock();
        let start = *seq;
        self.state_changed.wait_for(&mut seq, timeout);
        *seq != start
    }

    /// Replaces the link parameters at runtime.
    pub fn reconfigure(&self, config: LinkConfig) {
        *self.config.lock() = config;
    }

    /// Fault-injection hook: the next `n` transfer attempts are dropped
    /// deterministically (counted in [`LinkStats::dropped`]), regardless
    /// of the configured loss probability. Repeated calls accumulate.
    pub fn drop_next(&self, n: u64) {
        self.force_drop.fetch_add(n, Ordering::SeqCst);
    }

    /// Link statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Exposes this link's counters in `registry` under `mq.net.*`
    /// (attempts / delivered / dropped / refused). Registration follows the
    /// registry's first-registration-sticks rule, so on an observability hub
    /// shared by several links the first registered link's cells stay
    /// visible; per-link numbers remain available via [`Link::stats`].
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("mq.net.attempts", &self.stats.attempts);
        registry.register_counter("mq.net.delivered", &self.stats.delivered);
        registry.register_counter("mq.net.dropped", &self.stats.dropped);
        registry.register_counter("mq.net.refused", &self.stats.refused);
    }

    /// Samples the fate of one transfer attempt.
    pub fn transfer(&self) -> Transfer {
        self.stats.attempts.incr();
        if !self.is_up() {
            self.stats.refused.incr();
            return Transfer::Down;
        }
        if self
            .force_drop
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            self.stats.dropped.incr();
            return Transfer::Dropped;
        }
        let config = self.config.lock().clone();
        let mut rng = self.rng.lock();
        if config.drop_rate > 0.0 && rng.gen::<f64>() < config.drop_rate {
            self.stats.dropped.incr();
            return Transfer::Dropped;
        }
        let jitter = if config.jitter.as_u64() > 0 {
            Millis(rng.gen_range(0..=config.jitter.as_u64()))
        } else {
            Millis::ZERO
        };
        self.stats.delivered.incr();
        Transfer::Deliver(config.base_latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_always_delivers_instantly() {
        let link = Link::ideal();
        for _ in 0..100 {
            assert_eq!(link.transfer(), Transfer::Deliver(Millis::ZERO));
        }
        assert_eq!(link.stats().delivered.get(), 100);
        assert_eq!(link.stats().dropped.get(), 0);
    }

    #[test]
    fn latency_stays_within_base_plus_jitter() {
        let link = Link::new(LinkConfig {
            base_latency: Millis(10),
            jitter: Millis(5),
            drop_rate: 0.0,
            seed: 42,
        });
        for _ in 0..200 {
            match link.transfer() {
                Transfer::Deliver(lat) => {
                    assert!(lat >= Millis(10) && lat <= Millis(15), "latency {lat}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn drop_rate_approximately_respected() {
        let link = Link::new(LinkConfig {
            drop_rate: 0.5,
            seed: 7,
            ..LinkConfig::default()
        });
        for _ in 0..1000 {
            link.transfer();
        }
        let dropped = link.stats().dropped.get();
        assert!(
            (350..=650).contains(&dropped),
            "drop count {dropped} far from 50%"
        );
    }

    #[test]
    fn partition_refuses_and_heals() {
        let link = Link::ideal();
        link.set_up(false);
        assert!(!link.is_up());
        assert_eq!(link.transfer(), Transfer::Down);
        assert_eq!(link.stats().refused.get(), 1);
        link.set_up(true);
        assert!(matches!(link.transfer(), Transfer::Deliver(_)));
    }

    #[test]
    fn same_seed_gives_same_fates() {
        let mk = || {
            Link::new(LinkConfig {
                drop_rate: 0.3,
                jitter: Millis(20),
                seed: 99,
                ..LinkConfig::default()
            })
        };
        let a = mk();
        let b = mk();
        for _ in 0..50 {
            assert_eq!(a.transfer(), b.transfer());
        }
    }

    #[test]
    fn wait_state_change_wakes_on_heal() {
        let link = Link::ideal();
        link.set_up(false);
        let waiter = {
            let link = link.clone();
            std::thread::spawn(move || {
                link.wait_state_change(std::time::Duration::from_secs(5))
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let started = std::time::Instant::now();
        link.set_up(true);
        assert!(waiter.join().unwrap(), "state change observed");
        assert!(
            started.elapsed() < std::time::Duration::from_secs(1),
            "woken by the notify, not the timeout"
        );
        // No transition: times out and reports none.
        assert!(!link.wait_state_change(std::time::Duration::from_millis(5)));
        // Redundant set_up (already up) is not a transition.
        link.set_up(true);
        assert!(!link.wait_state_change(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn stats_register_as_mq_net_metrics() {
        let registry = MetricsRegistry::new();
        let link = Link::ideal();
        link.register_metrics(&registry);
        link.transfer();
        link.set_up(false);
        link.transfer();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("mq.net.attempts"), 2);
        assert_eq!(snap.counter("mq.net.delivered"), 1);
        assert_eq!(snap.counter("mq.net.refused"), 1);
        assert_eq!(snap.counter("mq.net.dropped"), 0);
    }

    #[test]
    fn reconfigure_takes_effect() {
        let link = Link::ideal();
        link.reconfigure(LinkConfig {
            base_latency: Millis(7),
            ..LinkConfig::default()
        });
        assert_eq!(link.transfer(), Transfer::Deliver(Millis(7)));
    }
}
