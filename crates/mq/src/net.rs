//! Simulated point-to-point network links.
//!
//! A [`Link`] models the wire between two queue managers: configurable base
//! latency, uniform jitter, message-drop probability, and an up/down switch
//! for partitions. Channels ([`crate::channel`]) consult the link for every
//! transfer attempt; because dropped transfers are retried from the
//! transmission queue, the *end-to-end* delivery guarantee stays intact —
//! exactly the property the paper's reliable-messaging substrate provides.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::Millis;

use crate::stats::Counter;

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Fixed one-way latency applied to every successful transfer.
    pub base_latency: Millis,
    /// Additional uniform random latency in `0..=jitter`.
    pub jitter: Millis,
    /// Probability in `[0, 1]` that a transfer attempt is dropped.
    pub drop_rate: f64,
    /// RNG seed, for reproducible experiments.
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            base_latency: Millis::ZERO,
            jitter: Millis::ZERO,
            drop_rate: 0.0,
            seed: 0x5EED,
        }
    }
}

/// Outcome of one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transfer {
    /// Deliver after the given latency.
    Deliver(Millis),
    /// The attempt was dropped; the sender should retry.
    Dropped,
    /// The link is partitioned; the sender should back off.
    Down,
}

/// Per-link statistics.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Transfer attempts made.
    pub attempts: Counter,
    /// Attempts that were delivered.
    pub delivered: Counter,
    /// Attempts dropped by the loss model.
    pub dropped: Counter,
    /// Attempts refused because the link was down.
    pub refused: Counter,
}

/// A simulated unidirectional network link.
pub struct Link {
    config: Mutex<LinkConfig>,
    rng: Mutex<StdRng>,
    up: AtomicBool,
    stats: LinkStats,
}

impl fmt::Debug for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Link")
            .field("config", &*self.config.lock())
            .field("up", &self.is_up())
            .finish()
    }
}

impl Link {
    /// Creates a link with the given parameters, initially up.
    pub fn new(config: LinkConfig) -> Arc<Link> {
        let rng = StdRng::seed_from_u64(config.seed);
        Arc::new(Link {
            config: Mutex::new(config),
            rng: Mutex::new(rng),
            up: AtomicBool::new(true),
            stats: LinkStats::default(),
        })
    }

    /// Creates an ideal link: zero latency, no loss.
    pub fn ideal() -> Arc<Link> {
        Link::new(LinkConfig::default())
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Partitions (`false`) or heals (`true`) the link.
    pub fn set_up(&self, up: bool) {
        self.up.store(up, Ordering::SeqCst);
    }

    /// Replaces the link parameters at runtime.
    pub fn reconfigure(&self, config: LinkConfig) {
        *self.config.lock() = config;
    }

    /// Link statistics.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Samples the fate of one transfer attempt.
    pub fn transfer(&self) -> Transfer {
        self.stats.attempts.incr();
        if !self.is_up() {
            self.stats.refused.incr();
            return Transfer::Down;
        }
        let config = self.config.lock().clone();
        let mut rng = self.rng.lock();
        if config.drop_rate > 0.0 && rng.gen::<f64>() < config.drop_rate {
            self.stats.dropped.incr();
            return Transfer::Dropped;
        }
        let jitter = if config.jitter.as_u64() > 0 {
            Millis(rng.gen_range(0..=config.jitter.as_u64()))
        } else {
            Millis::ZERO
        };
        self.stats.delivered.incr();
        Transfer::Deliver(config.base_latency + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_always_delivers_instantly() {
        let link = Link::ideal();
        for _ in 0..100 {
            assert_eq!(link.transfer(), Transfer::Deliver(Millis::ZERO));
        }
        assert_eq!(link.stats().delivered.get(), 100);
        assert_eq!(link.stats().dropped.get(), 0);
    }

    #[test]
    fn latency_stays_within_base_plus_jitter() {
        let link = Link::new(LinkConfig {
            base_latency: Millis(10),
            jitter: Millis(5),
            drop_rate: 0.0,
            seed: 42,
        });
        for _ in 0..200 {
            match link.transfer() {
                Transfer::Deliver(lat) => {
                    assert!(lat >= Millis(10) && lat <= Millis(15), "latency {lat}")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn drop_rate_approximately_respected() {
        let link = Link::new(LinkConfig {
            drop_rate: 0.5,
            seed: 7,
            ..LinkConfig::default()
        });
        for _ in 0..1000 {
            link.transfer();
        }
        let dropped = link.stats().dropped.get();
        assert!(
            (350..=650).contains(&dropped),
            "drop count {dropped} far from 50%"
        );
    }

    #[test]
    fn partition_refuses_and_heals() {
        let link = Link::ideal();
        link.set_up(false);
        assert!(!link.is_up());
        assert_eq!(link.transfer(), Transfer::Down);
        assert_eq!(link.stats().refused.get(), 1);
        link.set_up(true);
        assert!(matches!(link.transfer(), Transfer::Deliver(_)));
    }

    #[test]
    fn same_seed_gives_same_fates() {
        let mk = || {
            Link::new(LinkConfig {
                drop_rate: 0.3,
                jitter: Millis(20),
                seed: 99,
                ..LinkConfig::default()
            })
        };
        let a = mk();
        let b = mk();
        for _ in 0..50 {
            assert_eq!(a.transfer(), b.transfer());
        }
    }

    #[test]
    fn reconfigure_takes_effect() {
        let link = Link::ideal();
        link.reconfigure(LinkConfig {
            base_latency: Millis(7),
            ..LinkConfig::default()
        });
        assert_eq!(link.transfer(), Transfer::Deliver(Millis(7)));
    }
}
