//! A single message queue: priority bands, FIFO within priority, expiry,
//! selectors, browsing, and blocking consumption.
//!
//! Internally the queue keeps messages in an id-keyed store with per-
//! priority FIFO bands of ids plus a correlation-id index, so targeted
//! consumption by correlation id (`get_by_correlation`) — which the
//! conditional-messaging layer uses heavily to pick one message's
//! compensations and log entries out of busy service queues — costs
//! O(matches) instead of a full queue scan. Band entries whose message was
//! removed through another path are skipped (and dropped) lazily.
//!
//! Queues are owned by a [`crate::QueueManager`]; applications obtain
//! `Arc<Queue>` handles via [`crate::QueueManager::queue`] for read-only
//! inspection (depth, browse, stats) and go through sessions for get/put so
//! that journaling and transactions are handled uniformly.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simtime::{Millis, SharedClock};

use crate::error::{MqError, MqResult};
use crate::journal::{Journal, JournalRecord};
use crate::message::{Message, MessageId};
use crate::selector::Selector;
use crate::stats::{Histogram, QueueStats};

/// How long a consumer is willing to wait for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Return immediately if no matching message is available.
    NoWait,
    /// Wait up to the given duration of queue-manager clock time.
    Timeout(Millis),
    /// Wait until a message arrives or the queue closes.
    Forever,
}

/// Per-queue configuration.
#[derive(Debug, Clone, Default)]
pub struct QueueConfig {
    /// Maximum queue depth; puts beyond it fail with [`MqError::QueueFull`].
    pub max_depth: Option<usize>,
}

const PRIORITY_BANDS: usize = 10;

#[derive(Debug)]
struct Inner {
    /// One FIFO band of message ids per priority level; may contain stale
    /// ids (messages already removed), skipped lazily.
    bands: [VecDeque<MessageId>; PRIORITY_BANDS],
    /// The actual messages, keyed by id. `store.len()` is the queue depth.
    /// `Arc`-wrapped so browse hands out shared handles instead of deep-
    /// copying every payload; consumption unwraps (or clones only when a
    /// browse snapshot still holds the message).
    store: HashMap<MessageId, Arc<Message>>,
    /// Correlation id → enqueued message ids (FIFO; may contain stale ids).
    by_correlation: HashMap<String, VecDeque<MessageId>>,
    open: bool,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            bands: Default::default(),
            store: HashMap::new(),
            by_correlation: HashMap::new(),
            open: true,
        }
    }

    /// Removes a message from the store and its correlation index (its
    /// band entry goes stale and is dropped lazily).
    fn detach(&mut self, id: MessageId) -> Option<Message> {
        let msg = self.store.remove(&id)?;
        if let Some(corr) = msg.correlation_id() {
            if let Some(ids) = self.by_correlation.get_mut(corr) {
                ids.retain(|x| *x != id);
                if ids.is_empty() {
                    self.by_correlation.remove(corr);
                }
            }
        }
        Some(unshare(msg))
    }
}

/// Takes the `Message` out of a store handle: free when no browse snapshot
/// shares it, a deep clone only when one does.
fn unshare(msg: Arc<Message>) -> Message {
    Arc::try_unwrap(msg).unwrap_or_else(|shared| (*shared).clone())
}

/// Callback invoked (outside the queue lock) after a message becomes
/// visible on the queue. The event-driven evaluation manager registers one
/// on `DS.ACK.Q` so acknowledgment arrival wakes it instead of a poll.
pub type PutWatcher = Arc<dyn Fn() + Send + Sync>;

/// A named message queue.
pub struct Queue {
    name: String,
    clock: SharedClock,
    journal: Arc<dyn Journal>,
    config: QueueConfig,
    inner: Mutex<Inner>,
    available: Condvar,
    stats: QueueStats,
    /// Journal-append latency (micros), shared with the owning manager's
    /// `mq.journal.append_micros` histogram when built via the manager.
    journal_append_micros: Arc<Histogram>,
    /// Observers notified after each put; see [`Queue::add_put_watcher`].
    put_watchers: Mutex<Vec<PutWatcher>>,
}

impl fmt::Debug for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Queue")
            .field("name", &self.name)
            .field("depth", &self.depth())
            .finish()
    }
}

impl Queue {
    /// Builds a standalone queue with unregistered stats (tests only; the
    /// manager path goes through [`Queue::new_instrumented`]).
    #[cfg(test)]
    pub(crate) fn new(
        name: String,
        clock: SharedClock,
        journal: Arc<dyn Journal>,
        config: QueueConfig,
    ) -> Arc<Queue> {
        Queue::new_instrumented(
            name,
            clock,
            journal,
            config,
            QueueStats::default(),
            Arc::new(Histogram::default()),
        )
    }

    /// Builds a queue whose stats cells (and journal-append histogram) are
    /// already registered in a metrics registry by the owning manager.
    pub(crate) fn new_instrumented(
        name: String,
        clock: SharedClock,
        journal: Arc<dyn Journal>,
        config: QueueConfig,
        stats: QueueStats,
        journal_append_micros: Arc<Histogram>,
    ) -> Arc<Queue> {
        Arc::new(Queue {
            name,
            clock,
            journal,
            config,
            inner: Mutex::new(Inner::new()),
            available: Condvar::new(),
            stats,
            journal_append_micros,
            put_watchers: Mutex::new(Vec::new()),
        })
    }

    /// The queue's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current number of messages on the queue.
    pub fn depth(&self) -> usize {
        self.inner.lock().store.len()
    }

    /// Whether the queue currently holds no messages. A cheap peek so idle
    /// wakeups (e.g. the ack drain) can skip opening a session — and its
    /// journal bookkeeping — entirely.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().store.is_empty()
    }

    /// Registers a callback to run after every put (visible enqueue),
    /// outside the queue lock and on the putting thread. Watchers must not
    /// put to this same queue (that would recurse).
    pub fn add_put_watcher(&self, watcher: PutWatcher) {
        self.put_watchers.lock().push(watcher);
    }

    fn notify_put_watchers(&self) {
        let watchers: Vec<PutWatcher> = self.put_watchers.lock().clone();
        for w in watchers {
            w();
        }
    }

    /// Blocks until the queue is non-empty, per `wait`, without consuming.
    /// Returns `true` when a message is available at return. The
    /// event-driven evaluation daemon parks here (on the queue's condvar)
    /// instead of sleeping a fixed poll interval.
    ///
    /// # Errors
    ///
    /// [`MqError::ManagerStopped`] if the queue closes while waiting.
    pub fn wait_nonempty(&self, wait: Wait) -> MqResult<bool> {
        let deadline = match wait {
            Wait::NoWait => return Ok(!self.is_empty()),
            Wait::Timeout(t) => Some(self.clock.now() + t),
            Wait::Forever => None,
        };
        let mut inner = self.inner.lock();
        loop {
            self.check_open(&inner)?;
            if !inner.store.is_empty() {
                return Ok(true);
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(false),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                // Virtual clock (or no deadline): poll in short real-time
                // slices so an `advance` on another thread is noticed.
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            self.available.wait_for(&mut inner, real_wait);
        }
    }

    /// The queue's statistics counters.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Snapshots all non-expired messages without consuming them, in
    /// delivery order (priority, then FIFO). The returned handles share the
    /// queue's storage — browsing never deep-copies payloads.
    pub fn browse(&self) -> Vec<Arc<Message>> {
        self.browse_selected(None)
    }

    /// Snapshots non-expired messages matching `selector` without
    /// consuming; cheap `Arc` handles, as with [`Queue::browse`].
    pub fn browse_selected(&self, selector: Option<&Selector>) -> Vec<Arc<Message>> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        self.stats.browses.incr();
        let mut out = Vec::new();
        for band_idx in (0..PRIORITY_BANDS).rev() {
            // Drop stale ids while browsing; collect live matches.
            let ids: Vec<MessageId> = inner.bands[band_idx].iter().copied().collect();
            let mut live = VecDeque::with_capacity(ids.len());
            for id in ids {
                let Some(msg) = inner.store.get(&id) else {
                    continue;
                };
                live.push_back(id);
                if msg.is_expired(now) {
                    continue;
                }
                if selector.is_none_or(|s| s.matches(msg)) {
                    out.push(Arc::clone(msg));
                }
            }
            inner.bands[band_idx] = live;
        }
        out
    }

    /// Appends a journal record, recording its wall-clock latency (which
    /// includes the fsync for durable file journals).
    fn append_timed(&self, record: &JournalRecord) -> MqResult<()> {
        let started = std::time::Instant::now();
        let result = self.journal.append(record);
        self.journal_append_micros.record_duration(started.elapsed());
        result
    }

    // ------------------------------------------------------------ puts --

    /// Enqueues a message. `journal_put` is false when the enqueue is
    /// already covered by a `TxCommit` journal record.
    pub(crate) fn put(&self, mut msg: Message, journal_put: bool) -> MqResult<()> {
        msg.stamp_enqueue(self.clock.now());
        if journal_put && msg.is_persistent() && self.journal.is_durable() {
            // WAL discipline: the record must be stable before the message
            // becomes visible.
            self.append_timed(&JournalRecord::Put {
                queue: self.name.clone(),
                message: msg.clone(),
            })?;
        }
        let mut inner = self.inner.lock();
        self.check_open(&inner)?;
        self.check_depth(&inner)?;
        self.insert(&mut inner, msg, false);
        drop(inner);
        self.available.notify_one();
        self.notify_put_watchers();
        Ok(())
    }

    /// Returns a message to the *front* of its priority band after a
    /// transaction rollback. Never journaled: the original `Put` record (if
    /// any) still covers it. `bump` increments the redelivery count — false
    /// for infrastructure retries (channel movers) that must not consume the
    /// application's backout budget.
    pub(crate) fn requeue_front(&self, mut msg: Message, bump: bool) {
        if bump {
            msg.bump_redelivery();
            self.stats.redelivered.incr();
        }
        let mut inner = self.inner.lock();
        self.insert(&mut inner, msg, true);
        drop(inner);
        self.available.notify_one();
    }

    /// Re-inserts a message during journal replay (no journaling, no
    /// re-stamping — the recovered message keeps its original headers).
    pub(crate) fn restore(&self, msg: Message) {
        let mut inner = self.inner.lock();
        self.insert(&mut inner, msg, false);
    }

    /// Enqueues a message whose durability is already covered by a
    /// transaction's `TxCommit` record. Bypasses the depth limit: the
    /// transaction was accepted at stage time and must not fail mid-commit.
    pub(crate) fn put_committed(&self, mut msg: Message) -> MqResult<()> {
        msg.stamp_enqueue(self.clock.now());
        let mut inner = self.inner.lock();
        self.check_open(&inner)?;
        self.insert(&mut inner, msg, false);
        drop(inner);
        self.available.notify_one();
        self.notify_put_watchers();
        Ok(())
    }

    /// Removes a specific message by id (journal replay and annihilation).
    pub(crate) fn remove_by_id(&self, id: MessageId) -> Option<Message> {
        let mut inner = self.inner.lock();
        let msg = inner.detach(id)?;
        self.stats.depth.set(inner.store.len() as u64);
        Some(msg)
    }

    fn insert(&self, inner: &mut Inner, msg: Message, front: bool) {
        let band = usize::from(msg.priority().level()).min(PRIORITY_BANDS - 1);
        let id = msg.id();
        if front {
            inner.bands[band].push_front(id);
        } else {
            inner.bands[band].push_back(id);
        }
        if let Some(corr) = msg.correlation_id() {
            let ids = inner.by_correlation.entry(corr.to_owned()).or_default();
            if front {
                ids.push_front(id);
            } else {
                ids.push_back(id);
            }
        }
        inner.store.insert(id, Arc::new(msg));
        self.stats.enqueued.incr();
        self.stats.depth.set(inner.store.len() as u64);
    }

    fn check_open(&self, inner: &Inner) -> MqResult<()> {
        if inner.open {
            Ok(())
        } else {
            Err(MqError::ManagerStopped(self.name.clone()))
        }
    }

    fn check_depth(&self, inner: &Inner) -> MqResult<()> {
        match self.config.max_depth {
            Some(max) if inner.store.len() >= max => Err(MqError::QueueFull(self.name.clone())),
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------ gets --

    /// Removes and returns the first matching message, without waiting.
    ///
    /// `journal_get` is false for transactional gets (covered later by the
    /// transaction's `TxCommit` record, or undone by rollback).
    pub(crate) fn try_take(
        &self,
        selector: Option<&Selector>,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let mut inner = self.inner.lock();
        self.check_open(&inner)?;
        self.take_locked(&mut inner, selector, journal_get)
    }

    /// Removes and returns the oldest message with the given correlation
    /// id, using the correlation index (O(matches), not O(depth)).
    pub(crate) fn try_take_by_correlation(
        &self,
        correlation: &str,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        self.check_open(&inner)?;
        loop {
            let Some(ids) = inner.by_correlation.get_mut(correlation) else {
                return Ok(None);
            };
            let Some(id) = ids.pop_front() else {
                inner.by_correlation.remove(correlation);
                return Ok(None);
            };
            let Some(msg) = inner.store.remove(&id).map(unshare) else {
                continue; // stale
            };
            if inner
                .by_correlation
                .get(correlation)
                .is_some_and(VecDeque::is_empty)
            {
                inner.by_correlation.remove(correlation);
            }
            self.stats.depth.set(inner.store.len() as u64);
            if msg.is_expired(now) {
                self.stats.expired.incr();
                if msg.is_persistent() && self.journal.is_durable() {
                    self.append_timed(&JournalRecord::Expired {
                        queue: self.name.clone(),
                        message_id: msg.id(),
                    })?;
                }
                continue;
            }
            self.stats.dequeued.incr();
            if journal_get && msg.is_persistent() && self.journal.is_durable() {
                self.append_timed(&JournalRecord::Get {
                    queue: self.name.clone(),
                    message_id: msg.id(),
                })?;
            }
            return Ok(Some(msg));
        }
    }

    /// Removes and returns the oldest message with the given correlation
    /// id, waiting per `wait`.
    pub(crate) fn take_by_correlation_blocking(
        &self,
        correlation: &str,
        wait: Wait,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let deadline = match wait {
            Wait::NoWait => return self.try_take_by_correlation(correlation, journal_get),
            Wait::Timeout(t) => Some(self.clock.now() + t),
            Wait::Forever => None,
        };
        loop {
            if let Some(msg) = self.try_take_by_correlation(correlation, journal_get)? {
                return Ok(Some(msg));
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(None),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            let mut inner = self.inner.lock();
            self.check_open(&inner)?;
            self.available.wait_for(&mut inner, real_wait);
        }
    }

    /// Removes and returns the first matching message, waiting per `wait`.
    pub(crate) fn take_blocking(
        &self,
        selector: Option<&Selector>,
        wait: Wait,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let deadline = match wait {
            Wait::NoWait => return self.try_take(selector, journal_get),
            Wait::Timeout(t) => Some(self.clock.now() + t),
            Wait::Forever => None,
        };
        let mut inner = self.inner.lock();
        loop {
            self.check_open(&inner)?;
            if let Some(msg) = self.take_locked(&mut inner, selector, journal_get)? {
                return Ok(Some(msg));
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(None),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                // Virtual clock (or no deadline): poll in short real-time
                // slices so an `advance` on another thread is noticed.
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            self.available.wait_for(&mut inner, real_wait);
        }
    }

    fn take_locked(
        &self,
        inner: &mut Inner,
        selector: Option<&Selector>,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let now = self.clock.now();
        for band_idx in (0..PRIORITY_BANDS).rev() {
            let mut i = 0;
            while i < inner.bands[band_idx].len() {
                let id = inner.bands[band_idx][i];
                let Some(msg) = inner.store.get(&id) else {
                    // Stale id: message removed through another path.
                    inner.bands[band_idx].remove(i);
                    continue;
                };
                if msg.is_expired(now) {
                    inner.bands[band_idx].remove(i);
                    let dead = inner.detach(id).expect("message present");
                    self.stats.expired.incr();
                    self.stats.depth.set(inner.store.len() as u64);
                    if dead.is_persistent() && self.journal.is_durable() {
                        self.append_timed(&JournalRecord::Expired {
                            queue: self.name.clone(),
                            message_id: dead.id(),
                        })?;
                    }
                    continue; // same index now holds the next entry
                }
                let matches = selector.is_none_or(|s| s.matches(msg));
                if matches {
                    inner.bands[band_idx].remove(i);
                    let msg = inner.detach(id).expect("message present");
                    self.stats.dequeued.incr();
                    self.stats.depth.set(inner.store.len() as u64);
                    if journal_get && msg.is_persistent() && self.journal.is_durable() {
                        self.append_timed(&JournalRecord::Get {
                            queue: self.name.clone(),
                            message_id: msg.id(),
                        })?;
                    }
                    return Ok(Some(msg));
                }
                i += 1;
            }
        }
        Ok(None)
    }

    /// Discards all messages; returns how many were removed. Expired and
    /// live messages alike are journaled as consumed so recovery agrees.
    pub fn purge(&self) -> MqResult<usize> {
        let mut inner = self.inner.lock();
        let ids: Vec<MessageId> = inner.store.keys().copied().collect();
        let mut n = 0;
        for id in ids {
            let msg = inner.detach(id).expect("key present");
            if msg.is_persistent() && self.journal.is_durable() {
                self.append_timed(&JournalRecord::Get {
                    queue: self.name.clone(),
                    message_id: msg.id(),
                })?;
            }
            n += 1;
        }
        for band in inner.bands.iter_mut() {
            band.clear();
        }
        self.stats.depth.set(0);
        Ok(n)
    }

    /// Closes the queue, waking all blocked consumers with an error.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock();
        inner.open = false;
        drop(inner);
        self.available.notify_all();
    }

    /// Wakes blocked consumers so they can re-check the (virtual) clock.
    /// Used by tests that advance a `SimClock` while a consumer waits.
    pub fn kick(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use crate::message::Priority;
    use simtime::{SimClock, SystemClock};

    fn queue_with(clock: SharedClock) -> Arc<Queue> {
        Queue::new(
            "TEST.Q".into(),
            clock,
            MemJournal::new(),
            QueueConfig::default(),
        )
    }

    fn sim_queue() -> (Arc<SimClock>, Arc<Queue>) {
        let clock = SimClock::new();
        let q = queue_with(clock.clone());
        (clock, q)
    }

    fn text(s: &str) -> Message {
        Message::text(s).build()
    }

    #[test]
    fn fifo_within_priority() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        q.put(text("c"), true).unwrap();
        let order: Vec<_> = (0..3)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.try_take(None, true).unwrap().is_none());
    }

    #[test]
    fn higher_priority_first() {
        let (_c, q) = sim_queue();
        q.put(
            Message::text("low").priority(Priority::new(1)).build(),
            true,
        )
        .unwrap();
        q.put(
            Message::text("high").priority(Priority::new(8)).build(),
            true,
        )
        .unwrap();
        q.put(
            Message::text("mid").priority(Priority::new(4)).build(),
            true,
        )
        .unwrap();
        let order: Vec<_> = (0..3)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn depth_and_stats_track_operations() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.stats().enqueued.get(), 2);
        assert_eq!(q.stats().depth.high_water(), 2);
        q.try_take(None, true).unwrap().unwrap();
        assert_eq!(q.depth(), 1);
        assert_eq!(q.stats().dequeued.get(), 1);
    }

    #[test]
    fn is_empty_and_put_watchers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (_c, q) = sim_queue();
        assert!(q.is_empty());
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        q.add_put_watcher(Arc::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        q.put(text("a"), true).unwrap();
        assert!(!q.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        q.try_take(None, true).unwrap().unwrap();
        assert!(q.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_nonempty_wakes_on_put_and_times_out() {
        let q = queue_with(SystemClock::new());
        assert!(!q.wait_nonempty(Wait::NoWait).unwrap());
        assert!(!q.wait_nonempty(Wait::Timeout(Millis(10))).unwrap());
        let q2 = q.clone();
        let putter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.put(text("a"), true).unwrap();
        });
        assert!(q.wait_nonempty(Wait::Timeout(Millis(5_000))).unwrap());
        putter.join().unwrap();
        assert!(q.wait_nonempty(Wait::NoWait).unwrap());
    }

    #[test]
    fn max_depth_rejects_puts() {
        let clock = SimClock::new();
        let q = Queue::new(
            "SMALL.Q".into(),
            clock,
            MemJournal::new(),
            QueueConfig { max_depth: Some(2) },
        );
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        match q.put(text("c"), true) {
            Err(MqError::QueueFull(name)) => assert_eq!(name, "SMALL.Q"),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn expired_messages_are_skipped_and_counted() {
        let (clock, q) = sim_queue();
        q.put(Message::text("short").ttl(Millis(10)).build(), true)
            .unwrap();
        q.put(text("long"), true).unwrap();
        clock.advance(Millis(50));
        let got = q.try_take(None, true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("long"));
        assert_eq!(q.stats().expired.get(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_persistent_message_journals_expiry() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "J.Q".into(),
            clock.clone(),
            journal.clone(),
            QueueConfig::default(),
        );
        let msg = Message::text("x").persistent(true).ttl(Millis(5)).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        clock.advance(Millis(10));
        assert!(q.try_take(None, true).unwrap().is_none());
        let recs = journal.replay().unwrap();
        assert!(recs.iter().any(|r| matches!(
            r,
            JournalRecord::Expired { message_id, .. } if *message_id == id
        )));
    }

    #[test]
    fn selector_takes_first_match_leaving_others() {
        let (_c, q) = sim_queue();
        q.put(Message::text("m1").property("k", 1i64).build(), true)
            .unwrap();
        q.put(Message::text("m2").property("k", 2i64).build(), true)
            .unwrap();
        q.put(Message::text("m3").property("k", 1i64).build(), true)
            .unwrap();
        let sel = Selector::parse("k = 2").unwrap();
        let got = q.try_take(Some(&sel), true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("m2"));
        assert_eq!(q.depth(), 2);
        // Remaining messages keep FIFO order.
        assert_eq!(
            q.try_take(None, true).unwrap().unwrap().payload_str(),
            Some("m1")
        );
    }

    #[test]
    fn browse_does_not_consume() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(Message::text("b").priority(Priority::new(9)).build(), true)
            .unwrap();
        let snapshot = q.browse();
        assert_eq!(snapshot.len(), 2);
        // Delivery order: high priority first.
        assert_eq!(snapshot[0].payload_str(), Some("b"));
        assert_eq!(q.depth(), 2);
        let sel = Selector::parse("priority = 9").unwrap();
        assert_eq!(q.browse_selected(Some(&sel)).len(), 1);
    }

    #[test]
    fn requeue_front_preserves_head_position_and_bumps_redelivery() {
        let (_c, q) = sim_queue();
        q.put(text("first"), true).unwrap();
        q.put(text("second"), true).unwrap();
        let m = q.try_take(None, false).unwrap().unwrap();
        assert_eq!(m.redelivery_count(), 0);
        q.requeue_front(m, true);
        let again = q.try_take(None, false).unwrap().unwrap();
        assert_eq!(again.payload_str(), Some("first"));
        assert_eq!(again.redelivery_count(), 1);
        assert_eq!(q.stats().redelivered.get(), 1);
    }

    #[test]
    fn take_by_correlation_uses_index() {
        let (_c, q) = sim_queue();
        for i in 0..5 {
            q.put(
                Message::text(format!("m{i}"))
                    .correlation_id(format!("corr-{}", i % 2))
                    .build(),
                true,
            )
            .unwrap();
        }
        q.put(text("no-corr"), true).unwrap();
        // corr-1 messages are m1, m3 (FIFO).
        let a = q.try_take_by_correlation("corr-1", true).unwrap().unwrap();
        assert_eq!(a.payload_str(), Some("m1"));
        let b = q.try_take_by_correlation("corr-1", true).unwrap().unwrap();
        assert_eq!(b.payload_str(), Some("m3"));
        assert!(q.try_take_by_correlation("corr-1", true).unwrap().is_none());
        assert!(q.try_take_by_correlation("corr-9", true).unwrap().is_none());
        assert_eq!(q.depth(), 4);
        // Remaining FIFO order unaffected: m0, m2, m4, no-corr.
        let rest: Vec<_> = (0..4)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(rest, vec!["m0", "m2", "m4", "no-corr"]);
    }

    #[test]
    fn take_by_correlation_skips_expired() {
        let (clock, q) = sim_queue();
        q.put(
            Message::text("stale")
                .correlation_id("c")
                .ttl(Millis(5))
                .build(),
            true,
        )
        .unwrap();
        q.put(Message::text("fresh").correlation_id("c").build(), true)
            .unwrap();
        clock.advance(Millis(10));
        let got = q.try_take_by_correlation("c", true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("fresh"));
        assert_eq!(q.stats().expired.get(), 1);
    }

    #[test]
    fn stale_band_entries_are_skipped_after_corr_take() {
        let (_c, q) = sim_queue();
        q.put(Message::text("x").correlation_id("c").build(), true)
            .unwrap();
        q.put(text("y"), true).unwrap();
        q.try_take_by_correlation("c", true).unwrap().unwrap();
        // The band still holds a stale id for "x"; a normal take must skip
        // it and return "y".
        let got = q.try_take(None, true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("y"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn remove_by_id_keeps_index_consistent() {
        let (_c, q) = sim_queue();
        let msg = Message::text("x").correlation_id("c").build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        assert!(q.remove_by_id(id).is_some());
        assert!(q.remove_by_id(id).is_none());
        assert!(q.try_take_by_correlation("c", true).unwrap().is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn blocking_take_wakes_on_put_system_clock() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let q2 = q.clone();
        let consumer =
            std::thread::spawn(move || q2.take_blocking(None, Wait::Timeout(Millis(2_000)), true));
        std::thread::sleep(Duration::from_millis(30));
        q.put(text("late"), true).unwrap();
        let got = consumer.join().unwrap().unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("late"));
    }

    #[test]
    fn blocking_take_times_out_system_clock() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let got = q
            .take_blocking(None, Wait::Timeout(Millis(30)), true)
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn blocking_take_times_out_sim_clock() {
        let (clock, q) = sim_queue();
        let q2 = q.clone();
        let consumer =
            std::thread::spawn(move || q2.take_blocking(None, Wait::Timeout(Millis(100)), true));
        std::thread::sleep(Duration::from_millis(20));
        clock.advance(Millis(150));
        q.kick();
        let got = consumer.join().unwrap().unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn nowait_returns_immediately() {
        let (_c, q) = sim_queue();
        assert!(q.take_blocking(None, Wait::NoWait, true).unwrap().is_none());
    }

    #[test]
    fn close_wakes_blocked_consumer_with_error() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.take_blocking(None, Wait::Forever, true));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        match consumer.join().unwrap() {
            Err(MqError::ManagerStopped(_)) => {}
            other => panic!("expected ManagerStopped, got {other:?}"),
        }
    }

    #[test]
    fn puts_fail_after_close() {
        let (_c, q) = sim_queue();
        q.close();
        assert!(matches!(
            q.put(text("x"), true),
            Err(MqError::ManagerStopped(_))
        ));
    }

    #[test]
    fn purge_empties_queue() {
        let (_c, q) = sim_queue();
        for i in 0..5 {
            q.put(text(&format!("m{i}")), true).unwrap();
        }
        assert_eq!(q.purge().unwrap(), 5);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn persistent_put_and_get_are_journaled() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new("P.Q".into(), clock, journal.clone(), QueueConfig::default());
        let msg = Message::text("x").persistent(true).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        q.try_take(None, true).unwrap().unwrap();
        let recs = journal.replay().unwrap();
        assert!(matches!(&recs[0], JournalRecord::Put { message, .. } if message.id() == id));
        assert!(matches!(&recs[1], JournalRecord::Get { message_id, .. } if *message_id == id));
    }

    #[test]
    fn non_persistent_messages_are_not_journaled() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "NP.Q".into(),
            clock,
            journal.clone(),
            QueueConfig::default(),
        );
        q.put(text("volatile"), true).unwrap();
        q.try_take(None, true).unwrap().unwrap();
        assert_eq!(journal.record_count(), 0);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_messages() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        q.put(text(&format!("{t}-{i}")), true).unwrap();
                    }
                })
            })
            .collect();
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || {
                    while consumed.load(Ordering::SeqCst) < 1000 {
                        if q.take_blocking(None, Wait::Timeout(Millis(100)), true)
                            .unwrap()
                            .is_some()
                        {
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        use std::sync::atomic::Ordering;
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 1000);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.stats().dequeued.get(), 1000);
    }
}
