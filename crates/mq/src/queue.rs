//! A single message queue: priority bands, FIFO within priority, expiry,
//! selectors, browsing, and blocking consumption.
//!
//! The queue itself is an orchestration shell: all in-memory state lives
//! in a [`crate::store::MessageStore`] (id-keyed map, priority bands,
//! correlation and property-value indexes, expiry heap, pending
//! transactional gets), while this module owns journaling, statistics,
//! clock access and blocking. Selector gets whose selector pins an
//! equality (`shard = 7 AND kind = 'ack'`) are served as **point reads**
//! from the property index instead of a band scan; targeted consumption
//! by correlation id costs O(matches) the same way.
//!
//! Journaled mutations hold the owning manager's **mutation gate** (a
//! shared read lock) across `[journal append + state change]`, so a
//! checkpoint — which write-holds the gate while snapshotting live state
//! and truncating history — can never observe a mutation whose record it
//! truncates but whose effect it missed (see [`crate::QueueManager`]).
//!
//! Queues are owned by a [`crate::QueueManager`]; applications obtain
//! `Arc<Queue>` handles via [`crate::QueueManager::queue`] for read-only
//! inspection (depth, browse, stats) and go through sessions for get/put so
//! that journaling and transactions are handled uniformly.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use simtime::{Millis, SharedClock};

use crate::error::{MqError, MqResult};
use crate::journal::{Journal, JournalRecord};
use crate::message::{Message, MessageId, PropertyValue};
use crate::selector::Selector;
use crate::stats::{Histogram, QueueStats};
use crate::store::{MessageStore, PRIORITY_BANDS};

/// How long a consumer is willing to wait for a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Return immediately if no matching message is available.
    NoWait,
    /// Wait up to the given duration of queue-manager clock time.
    Timeout(Millis),
    /// Wait until a message arrives or the queue closes.
    Forever,
}

/// Per-queue configuration.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Maximum queue depth; puts beyond it fail with [`MqError::QueueFull`].
    pub max_depth: Option<usize>,
    /// Retention ceiling: every message's lifetime is capped at this age
    /// (a tighter per-message TTL still wins). Expired messages are
    /// removed by the index-driven TTL sweep and checkpointed away.
    pub retention: Option<Millis>,
    /// Maintain per-property value-band indexes so selector equality gets
    /// become point reads (on by default; turn off for write-heavy queues
    /// that are never read with selectors).
    pub index_properties: bool,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            max_depth: None,
            retention: None,
            index_properties: true,
        }
    }
}

/// Callback invoked (outside the queue lock) after a message becomes
/// visible on the queue. The event-driven evaluation manager registers one
/// on `DS.ACK.Q` so acknowledgment arrival wakes it instead of a poll.
pub type PutWatcher = Arc<dyn Fn() + Send + Sync>;

/// A named message queue.
pub struct Queue {
    name: String,
    clock: SharedClock,
    journal: Arc<dyn Journal>,
    config: QueueConfig,
    store: Mutex<MessageStore>,
    available: Condvar,
    /// The owning manager's mutation gate (see module docs): read-held
    /// across every `[journal append + state change]`, write-held by
    /// checkpoints. Never acquired re-entrantly — notifications and
    /// watcher callbacks run strictly after the guard is released.
    // lint: lock-alias Queue.gate QueueManager.mutation_gate
    gate: Arc<RwLock<()>>,
    stats: QueueStats,
    /// Journal-append latency (micros), shared with the owning manager's
    /// `mq.journal.append_micros` histogram when built via the manager.
    journal_append_micros: Arc<Histogram>,
    /// Observers notified after each put; see [`Queue::add_put_watcher`].
    put_watchers: Mutex<Vec<PutWatcher>>,
}

impl fmt::Debug for Queue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Queue")
            .field("name", &self.name)
            .field("depth", &self.depth())
            .finish()
    }
}

impl Queue {
    /// Builds a standalone queue with unregistered stats (tests only; the
    /// manager path goes through [`Queue::new_instrumented`]).
    #[cfg(test)]
    pub(crate) fn new(
        name: String,
        clock: SharedClock,
        journal: Arc<dyn Journal>,
        config: QueueConfig,
    ) -> Arc<Queue> {
        Queue::new_instrumented(
            name,
            clock,
            journal,
            config,
            QueueStats::default(),
            Arc::new(Histogram::default()),
            Arc::new(RwLock::new(())),
        )
    }

    /// Builds a queue whose stats cells (and journal-append histogram) are
    /// already registered in a metrics registry by the owning manager, and
    /// which shares the manager's mutation gate.
    pub(crate) fn new_instrumented(
        name: String,
        clock: SharedClock,
        journal: Arc<dyn Journal>,
        config: QueueConfig,
        stats: QueueStats,
        journal_append_micros: Arc<Histogram>,
        gate: Arc<RwLock<()>>,
    ) -> Arc<Queue> {
        let index_properties = config.index_properties;
        Arc::new(Queue {
            name,
            clock,
            journal,
            config,
            store: Mutex::new(MessageStore::new(index_properties)),
            available: Condvar::new(),
            gate,
            stats,
            journal_append_micros,
            put_watchers: Mutex::new(Vec::new()),
        })
    }

    /// The queue's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current number of messages on the queue.
    pub fn depth(&self) -> usize {
        self.store.lock().len()
    }

    /// Whether the queue currently holds no messages. A cheap peek so idle
    /// wakeups (e.g. the ack drain) can skip opening a session — and its
    /// journal bookkeeping — entirely.
    pub fn is_empty(&self) -> bool {
        self.store.lock().is_empty()
    }

    /// Registers a callback to run after every put (visible enqueue),
    /// outside the queue lock and on the putting thread. Watchers must not
    /// put to this same queue (that would recurse).
    pub fn add_put_watcher(&self, watcher: PutWatcher) {
        self.put_watchers.lock().push(watcher);
    }

    fn notify_put_watchers(&self) {
        let watchers: Vec<PutWatcher> = self.put_watchers.lock().clone();
        for w in watchers {
            w();
        }
    }

    /// Blocks until the queue is non-empty, per `wait`, without consuming.
    /// Returns `true` when a message is available at return. The
    /// event-driven evaluation daemon parks here (on the queue's condvar)
    /// instead of sleeping a fixed poll interval.
    ///
    /// # Errors
    ///
    /// [`MqError::ManagerStopped`] if the queue closes while waiting.
    pub fn wait_nonempty(&self, wait: Wait) -> MqResult<bool> {
        let (deadline, timeout) = match wait {
            Wait::NoWait => return Ok(!self.is_empty()),
            Wait::Timeout(t) => (Some(self.clock.now() + t), Some(t)),
            Wait::Forever => (None, None),
        };
        // Under a virtual clock, a timed wait is additionally bounded in
        // real time: daemon loops (channel movers, listeners, ack pumps)
        // lean on the timeout to re-check their stop flags, and a sim
        // clock nobody advances anymore must not park them forever.
        let mut real_slices = match timeout {
            Some(t) if self.clock.is_virtual() => Some((t.as_u64() / 2).max(1)),
            _ => None,
        };
        let mut store = self.store.lock();
        loop {
            self.check_open(&store)?;
            if !store.is_empty() {
                return Ok(true);
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(false),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                // Virtual clock (or no deadline): poll in short real-time
                // slices so an `advance` on another thread is noticed.
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            if let Some(slices) = &mut real_slices {
                if *slices == 0 {
                    return Ok(false);
                }
                *slices -= 1;
            }
            self.available.wait_for(&mut store, real_wait);
        }
    }

    /// The queue's statistics counters.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Snapshots all non-expired messages without consuming them, in
    /// delivery order (priority, then FIFO). The returned handles share the
    /// queue's storage — browsing never deep-copies payloads.
    pub fn browse(&self) -> Vec<Arc<Message>> {
        self.browse_selected(None)
    }

    /// Snapshots non-expired messages matching `selector` without
    /// consuming; cheap `Arc` handles, as with [`Queue::browse`].
    pub fn browse_selected(&self, selector: Option<&Selector>) -> Vec<Arc<Message>> {
        let now = self.clock.now();
        let mut store = self.store.lock();
        self.stats.browses.incr();
        let mut out = Vec::new();
        for band_idx in (0..PRIORITY_BANDS).rev() {
            // Drop stale ids while browsing; collect live matches.
            let ids: Vec<MessageId> = store.bands[band_idx].iter().copied().collect();
            let mut live = VecDeque::with_capacity(ids.len());
            for id in ids {
                let Some(entry) = store.get(id) else {
                    continue;
                };
                live.push_back(id);
                if entry.msg.is_expired(now) {
                    continue;
                }
                if selector.is_none_or(|s| s.matches(&entry.msg)) {
                    out.push(Arc::clone(&entry.msg));
                }
            }
            store.bands[band_idx] = live;
        }
        out
    }

    /// Whether any live message matches `selector` — the existence probe
    /// behind receiver-side duplicate checks. Uses the property index as
    /// a point read when the selector pins an equality; never consumes,
    /// never prunes.
    pub fn any_selected(&self, selector: &Selector) -> bool {
        let now = self.clock.now();
        let store = self.store.lock();
        if self.config.index_properties {
            let hints = selector.point_constraints();
            if !hints.is_empty() {
                let mut bucket: Option<&VecDeque<MessageId>> = None;
                for (name, value) in &hints {
                    match store.hint_bucket(name, value) {
                        // Absent bucket: no live message carries that
                        // value, so nothing can match.
                        None => return false,
                        Some(b) => {
                            if bucket.is_none_or(|cur| b.len() < cur.len()) {
                                bucket = Some(b);
                            }
                        }
                    }
                }
                return bucket.into_iter().flatten().any(|id| {
                    store
                        .get(*id)
                        .is_some_and(|e| !e.msg.is_expired(now) && selector.matches(&e.msg))
                });
            }
        }
        store
            .entries
            .values()
            .any(|e| !e.msg.is_expired(now) && selector.matches(&e.msg))
    }

    /// Appends a journal record, recording its wall-clock latency (which
    /// includes the fsync for durable file journals).
    fn append_timed(&self, record: &JournalRecord) -> MqResult<()> {
        let started = std::time::Instant::now();
        let result = self.journal.append(record);
        self.journal_append_micros.record_duration(started.elapsed());
        result
    }

    // ------------------------------------------------------------ puts --

    /// Enqueues a message. `journal_put` is false when the enqueue is
    /// already covered by a `TxCommit` journal record.
    // lint: custody(msg, err-reverts)
    pub(crate) fn put(&self, mut msg: Message, journal_put: bool) -> MqResult<()> {
        let now = self.clock.now();
        msg.stamp_enqueue(now);
        if let Some(retention) = self.config.retention {
            msg.apply_retention(now + retention);
        }
        // Gate read-held across [append + insert]: a checkpoint cannot
        // truncate this Put record while the message is missing from its
        // snapshot.
        let gate = self.gate.read();
        if journal_put && msg.is_persistent() && self.journal.is_durable() {
            // WAL discipline: the record must be stable before the message
            // becomes visible.
            self.append_timed(&JournalRecord::Put {
                queue: self.name.clone(),
                message: msg.clone(),
            })?;
        }
        let mut store = self.store.lock();
        self.check_open(&store)?;
        self.check_depth(&store)?;
        self.insert(&mut store, msg, false);
        drop(store);
        drop(gate);
        self.notify_arrival();
        Ok(())
    }

    /// Returns a message to the *front* of its priority band after a
    /// transaction rollback. Never journaled: the original `Put` record (if
    /// any) still covers it, and the insert clears the pending-get entry
    /// the provisional consumption left behind. `bump` increments the
    /// redelivery count — false for infrastructure retries (channel movers)
    /// that must not consume the application's backout budget.
    // lint: custody(msg)
    pub(crate) fn requeue_front(&self, mut msg: Message, bump: bool) {
        if bump {
            msg.bump_redelivery();
            self.stats.redelivered.incr();
        }
        let mut store = self.store.lock();
        self.insert(&mut store, msg, true);
        drop(store);
        self.available.notify_one();
    }

    /// Re-inserts a message during journal replay (no journaling, no
    /// re-stamping — the recovered message keeps its original headers).
    // lint: custody(msg)
    pub(crate) fn restore(&self, msg: Message) {
        let mut store = self.store.lock();
        self.insert(&mut store, msg, false);
    }

    /// Enqueues a message whose durability is already covered by another
    /// journal record (`TxCommit`, `RelayCustody`). Bypasses the depth
    /// limit: the transaction was accepted at stage time and must not fail
    /// mid-commit. The caller must read-hold the mutation gate around the
    /// covering append and this insert, then call [`Queue::notify_arrival`]
    /// after releasing it — watchers must never run under the gate.
    // lint: custody(msg, err-reverts)
    pub(crate) fn put_committed(&self, mut msg: Message) -> MqResult<()> {
        let now = self.clock.now();
        msg.stamp_enqueue(now);
        if let Some(retention) = self.config.retention {
            msg.apply_retention(now + retention);
        }
        let mut store = self.store.lock();
        self.check_open(&store)?;
        self.insert(&mut store, msg, false);
        Ok(())
    }

    /// Wakes one parked consumer and runs the put watchers. Pairs with
    /// [`Queue::put_committed`] once the caller has released the gate.
    pub(crate) fn notify_arrival(&self) {
        self.available.notify_one();
        self.notify_put_watchers();
    }

    /// Removes a specific message by id (journal replay and annihilation).
    pub(crate) fn remove_by_id(&self, id: MessageId) -> Option<Message> {
        let mut store = self.store.lock();
        let msg = store.detach(id)?;
        self.stats.depth.set(store.len() as u64);
        Some(msg)
    }

    /// Drops the pending-get entry of a transactionally consumed message
    /// once its covering record (`TxCommit`, dead-letter) is durable. The
    /// caller holds the mutation gate.
    pub(crate) fn finalize_pending(&self, id: MessageId) {
        self.store.lock().finalize_pending(id);
    }

    /// Live persistent messages in delivery order plus persistent pending
    /// transactional gets — the set a checkpoint snapshot re-journals.
    pub(crate) fn snapshot_persistent(&self) -> Vec<Arc<Message>> {
        self.store.lock().snapshot_persistent()
    }

    // lint: custody(msg)
    fn insert(&self, store: &mut MessageStore, msg: Message, front: bool) {
        store.insert(msg, front);
        self.stats.enqueued.incr();
        self.stats.depth.set(store.len() as u64);
    }

    fn check_open(&self, store: &MessageStore) -> MqResult<()> {
        if store.open {
            Ok(())
        } else {
            Err(MqError::ManagerStopped(self.name.clone()))
        }
    }

    fn check_depth(&self, store: &MessageStore) -> MqResult<()> {
        match self.config.max_depth {
            Some(max) if store.len() >= max => Err(MqError::QueueFull(self.name.clone())),
            _ => Ok(()),
        }
    }

    // ------------------------------------------------------------ gets --

    /// Removes and returns the first matching message, without waiting.
    ///
    /// `journal_get` is false for transactional gets (covered later by the
    /// transaction's `TxCommit` record, or undone by rollback).
    pub(crate) fn try_take(
        &self,
        selector: Option<&Selector>,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let _gate = self.gate.read();
        let mut store = self.store.lock();
        self.check_open(&store)?;
        self.take_locked(&mut store, selector, journal_get)
    }

    /// Removes and returns the oldest message with the given correlation
    /// id, using the correlation index (O(matches), not O(depth)).
    pub(crate) fn try_take_by_correlation(
        &self,
        correlation: &str,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let now = self.clock.now();
        let _gate = self.gate.read();
        let mut store = self.store.lock();
        self.check_open(&store)?;
        loop {
            let Some(ids) = store.by_correlation.get_mut(correlation) else {
                return Ok(None);
            };
            let Some(id) = ids.pop_front() else {
                store.by_correlation.remove(correlation);
                return Ok(None);
            };
            let Some(entry) = store.get(id) else {
                continue; // stale
            };
            if entry.msg.is_expired(now) {
                self.expire_locked(&mut store, id)?;
                continue;
            }
            return self.consume_locked(&mut store, id, journal_get).map(Some);
        }
    }

    /// Removes and returns the oldest message with the given correlation
    /// id, waiting per `wait`.
    pub(crate) fn take_by_correlation_blocking(
        &self,
        correlation: &str,
        wait: Wait,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let deadline = match wait {
            Wait::NoWait => return self.try_take_by_correlation(correlation, journal_get),
            Wait::Timeout(t) => Some(self.clock.now() + t),
            Wait::Forever => None,
        };
        loop {
            if let Some(msg) = self.try_take_by_correlation(correlation, journal_get)? {
                return Ok(Some(msg));
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(None),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            let mut store = self.store.lock();
            self.check_open(&store)?;
            self.available.wait_for(&mut store, real_wait);
        }
    }

    /// Removes and returns the first matching message, waiting per `wait`.
    pub(crate) fn take_blocking(
        &self,
        selector: Option<&Selector>,
        wait: Wait,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let deadline = match wait {
            Wait::NoWait => return self.try_take(selector, journal_get),
            Wait::Timeout(t) => Some(self.clock.now() + t),
            Wait::Forever => None,
        };
        loop {
            // Attempt under the gate, then release it before parking: a
            // checkpoint must never wait on parked consumers. The store
            // version detects arrivals (and closes) in the unlocked gap,
            // so the condvar wait cannot miss a wakeup.
            let seen_version;
            {
                let _gate = self.gate.read();
                let mut store = self.store.lock();
                self.check_open(&store)?;
                if let Some(msg) = self.take_locked(&mut store, selector, journal_get)? {
                    return Ok(Some(msg));
                }
                seen_version = store.version();
            }
            let now = self.clock.now();
            let real_wait = match deadline {
                Some(d) if now >= d => return Ok(None),
                Some(d) if !self.clock.is_virtual() => (d - now).to_duration(),
                // Virtual clock (or no deadline): poll in short real-time
                // slices so an `advance` on another thread is noticed.
                _ if self.clock.is_virtual() => Duration::from_millis(2),
                _ => Duration::from_millis(200),
            };
            let mut store = self.store.lock();
            self.check_open(&store)?;
            if store.version() == seen_version {
                self.available.wait_for(&mut store, real_wait);
            }
        }
    }

    fn take_locked(
        &self,
        store: &mut MessageStore,
        selector: Option<&Selector>,
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        if let Some(sel) = selector {
            if self.config.index_properties {
                let hints = sel.point_constraints();
                if !hints.is_empty() {
                    return self.take_indexed(store, sel, &hints, journal_get);
                }
            }
        }
        let now = self.clock.now();
        for band_idx in (0..PRIORITY_BANDS).rev() {
            let mut i = 0;
            while i < store.bands[band_idx].len() {
                let id = store.bands[band_idx][i];
                let Some(entry) = store.get(id) else {
                    // Stale id: message removed through another path.
                    store.bands[band_idx].remove(i);
                    continue;
                };
                if entry.msg.is_expired(now) {
                    store.bands[band_idx].remove(i);
                    self.expire_locked(store, id)?;
                    continue; // same index now holds the next entry
                }
                if selector.is_none_or(|s| s.matches(&entry.msg)) {
                    store.bands[band_idx].remove(i);
                    return self.consume_locked(store, id, journal_get).map(Some);
                }
                i += 1;
            }
        }
        Ok(None)
    }

    /// Serves a selector get as a point read: pick the narrowest index
    /// bucket among the selector's equality constraints, verify each
    /// candidate against the full selector, and consume the one a band
    /// scan would have chosen (highest priority, then lowest sequence
    /// number). Stale bucket entries are pruned on the way through.
    fn take_indexed(
        &self,
        store: &mut MessageStore,
        selector: &Selector,
        hints: &[(String, PropertyValue)],
        journal_get: bool,
    ) -> MqResult<Option<Message>> {
        let now = self.clock.now();
        let mut chosen: Option<(usize, usize)> = None; // (bucket len, hint idx)
        for (idx, (name, value)) in hints.iter().enumerate() {
            match store.hint_bucket(name, value) {
                // Absent bucket: no live message carries this value, and
                // the constraint is conjunctive — nothing can match.
                None => return Ok(None),
                Some(bucket) => {
                    let len = bucket.len();
                    if chosen.is_none_or(|(best, _)| len < best) {
                        chosen = Some((len, idx));
                    }
                }
            }
        }
        let Some((_, hint_idx)) = chosen else {
            return Ok(None);
        };
        let (name, value) = &hints[hint_idx];
        let ids: Vec<MessageId> = store
            .hint_bucket(name, value)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        let mut survivors = VecDeque::with_capacity(ids.len());
        let mut ripe = Vec::new();
        let mut best: Option<(u8, u64, MessageId)> = None;
        for id in ids {
            let Some(entry) = store.get(id) else {
                continue; // stale: prune
            };
            if entry.msg.is_expired(now) {
                ripe.push(id);
                continue;
            }
            survivors.push_back(id);
            if selector.matches(&entry.msg) {
                let prio = entry.msg.priority().level();
                let better = match best {
                    None => true,
                    Some((bp, bs, _)) => prio > bp || (prio == bp && entry.seq < bs),
                };
                if better {
                    best = Some((prio, entry.seq, id));
                }
            }
        }
        if let Some((_, _, id)) = best {
            survivors.retain(|x| *x != id);
        }
        store.replace_bucket(name, value, survivors);
        for id in ripe {
            self.expire_locked(store, id)?;
        }
        match best {
            Some((_, _, id)) => self.consume_locked(store, id, journal_get).map(Some),
            None => Ok(None),
        }
    }

    /// Detaches an expired message and journals the expiry.
    fn expire_locked(&self, store: &mut MessageStore, id: MessageId) -> MqResult<()> {
        let Some(dead) = store.detach(id) else {
            return Ok(());
        };
        self.stats.expired.incr();
        self.stats.depth.set(store.len() as u64);
        if dead.is_persistent() && self.journal.is_durable() {
            self.append_timed(&JournalRecord::Expired {
                queue: self.name.clone(),
                message_id: dead.id(),
            })?;
        }
        Ok(())
    }

    /// Detaches a live message as one consumed delivery: journals the Get,
    /// or — for transactional gets whose `TxCommit` record comes later —
    /// parks it in the pending-get table so checkpoints still see it.
    fn consume_locked(
        &self,
        store: &mut MessageStore,
        id: MessageId,
        journal_get: bool,
    ) -> MqResult<Message> {
        let persistent = store.get(id).is_some_and(|e| e.msg.is_persistent());
        let durable = persistent && self.journal.is_durable();
        let msg = if durable && !journal_get {
            store.detach_pending(id)
        } else {
            store.detach(id)
        }
        .expect("message present");
        self.stats.dequeued.incr();
        self.stats.depth.set(store.len() as u64);
        if durable && journal_get {
            self.append_timed(&JournalRecord::Get {
                queue: self.name.clone(),
                message_id: id,
            })?;
        }
        Ok(msg)
    }

    /// Expires every message whose TTL or retention deadline has passed,
    /// driven by the expiry heap — O(expired · log depth), not O(depth).
    /// Returns how many were expired. Checkpoints run this first so a
    /// snapshot carries no ripe messages.
    pub fn sweep_expired(&self) -> MqResult<usize> {
        let now = self.clock.now();
        let _gate = self.gate.read();
        let mut store = self.store.lock();
        let ripe = store.ripe_expired(now);
        let mut n = 0;
        for id in ripe {
            if store.get(id).is_some_and(|e| e.msg.is_expired(now)) {
                self.expire_locked(&mut store, id)?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Discards all messages; returns how many were removed. Expired and
    /// live messages alike are journaled as consumed so recovery agrees.
    pub fn purge(&self) -> MqResult<usize> {
        let _gate = self.gate.read();
        let mut store = self.store.lock();
        let ids: Vec<MessageId> = store.entries.keys().copied().collect();
        let mut n = 0;
        for id in ids {
            let msg = store.detach(id).expect("key present");
            if msg.is_persistent() && self.journal.is_durable() {
                self.append_timed(&JournalRecord::Get {
                    queue: self.name.clone(),
                    message_id: msg.id(),
                })?;
            }
            n += 1;
        }
        for band in store.bands.iter_mut() {
            band.clear();
        }
        self.stats.depth.set(0);
        Ok(n)
    }

    /// Closes the queue, waking all blocked consumers with an error.
    pub(crate) fn close(&self) {
        let mut store = self.store.lock();
        store.open = false;
        // Version bump: a consumer between its gated attempt and its park
        // re-checks instead of sleeping through the close.
        store.bump_version();
        drop(store);
        self.available.notify_all();
    }

    /// Wakes blocked consumers so they can re-check the (virtual) clock.
    /// Used by tests that advance a `SimClock` while a consumer waits.
    pub fn kick(&self) {
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use crate::message::Priority;
    use simtime::{SimClock, SystemClock};

    fn queue_with(clock: SharedClock) -> Arc<Queue> {
        Queue::new(
            "TEST.Q".into(),
            clock,
            MemJournal::new(),
            QueueConfig::default(),
        )
    }

    fn sim_queue() -> (Arc<SimClock>, Arc<Queue>) {
        let clock = SimClock::new();
        let q = queue_with(clock.clone());
        (clock, q)
    }

    fn text(s: &str) -> Message {
        Message::text(s).build()
    }

    #[test]
    fn fifo_within_priority() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        q.put(text("c"), true).unwrap();
        let order: Vec<_> = (0..3)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.try_take(None, true).unwrap().is_none());
    }

    #[test]
    fn higher_priority_first() {
        let (_c, q) = sim_queue();
        q.put(
            Message::text("low").priority(Priority::new(1)).build(),
            true,
        )
        .unwrap();
        q.put(
            Message::text("high").priority(Priority::new(8)).build(),
            true,
        )
        .unwrap();
        q.put(
            Message::text("mid").priority(Priority::new(4)).build(),
            true,
        )
        .unwrap();
        let order: Vec<_> = (0..3)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn depth_and_stats_track_operations() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.stats().enqueued.get(), 2);
        assert_eq!(q.stats().depth.high_water(), 2);
        q.try_take(None, true).unwrap().unwrap();
        assert_eq!(q.depth(), 1);
        assert_eq!(q.stats().dequeued.get(), 1);
    }

    #[test]
    fn is_empty_and_put_watchers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (_c, q) = sim_queue();
        assert!(q.is_empty());
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = fired.clone();
        q.add_put_watcher(Arc::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        q.put(text("a"), true).unwrap();
        assert!(!q.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        q.try_take(None, true).unwrap().unwrap();
        assert!(q.is_empty());
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn wait_nonempty_wakes_on_put_and_times_out() {
        let q = queue_with(SystemClock::new());
        assert!(!q.wait_nonempty(Wait::NoWait).unwrap());
        assert!(!q.wait_nonempty(Wait::Timeout(Millis(10))).unwrap());
        let q2 = q.clone();
        let putter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.put(text("a"), true).unwrap();
        });
        assert!(q.wait_nonempty(Wait::Timeout(Millis(5_000))).unwrap());
        putter.join().unwrap();
        assert!(q.wait_nonempty(Wait::NoWait).unwrap());
    }

    #[test]
    fn max_depth_rejects_puts() {
        let clock = SimClock::new();
        let q = Queue::new(
            "SMALL.Q".into(),
            clock,
            MemJournal::new(),
            QueueConfig {
                max_depth: Some(2),
                ..QueueConfig::default()
            },
        );
        q.put(text("a"), true).unwrap();
        q.put(text("b"), true).unwrap();
        match q.put(text("c"), true) {
            Err(MqError::QueueFull(name)) => assert_eq!(name, "SMALL.Q"),
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn expired_messages_are_skipped_and_counted() {
        let (clock, q) = sim_queue();
        q.put(Message::text("short").ttl(Millis(10)).build(), true)
            .unwrap();
        q.put(text("long"), true).unwrap();
        clock.advance(Millis(50));
        let got = q.try_take(None, true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("long"));
        assert_eq!(q.stats().expired.get(), 1);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn expired_persistent_message_journals_expiry() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "J.Q".into(),
            clock.clone(),
            journal.clone(),
            QueueConfig::default(),
        );
        let msg = Message::text("x").persistent(true).ttl(Millis(5)).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        clock.advance(Millis(10));
        assert!(q.try_take(None, true).unwrap().is_none());
        let recs = journal.replay_collect().unwrap();
        assert!(recs.iter().any(|r| matches!(
            r,
            JournalRecord::Expired { message_id, .. } if *message_id == id
        )));
    }

    #[test]
    fn retention_caps_message_lifetime() {
        let clock = SimClock::new();
        let q = Queue::new(
            "RET.Q".into(),
            clock.clone(),
            MemJournal::new(),
            QueueConfig {
                retention: Some(Millis(20)),
                ..QueueConfig::default()
            },
        );
        q.put(text("ages-out"), true).unwrap();
        // A tighter per-message TTL still wins over retention.
        q.put(Message::text("tighter").ttl(Millis(5)).build(), true)
            .unwrap();
        clock.advance(Millis(10));
        assert_eq!(q.sweep_expired().unwrap(), 1, "TTL 5 expired, retention not yet");
        assert_eq!(q.depth(), 1);
        clock.advance(Millis(15));
        assert_eq!(q.sweep_expired().unwrap(), 1, "retention cap reached");
        assert_eq!(q.depth(), 0);
        assert_eq!(q.stats().expired.get(), 2);
    }

    #[test]
    fn sweep_expired_journals_persistent_expiries() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "SW.Q".into(),
            clock.clone(),
            journal.clone(),
            QueueConfig::default(),
        );
        let msg = Message::text("x").persistent(true).ttl(Millis(5)).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        q.put(Message::text("keep").persistent(true).build(), true)
            .unwrap();
        clock.advance(Millis(10));
        assert_eq!(q.sweep_expired().unwrap(), 1);
        assert_eq!(q.sweep_expired().unwrap(), 0, "sweep is idempotent");
        assert_eq!(q.depth(), 1);
        let recs = journal.replay_collect().unwrap();
        assert!(recs.iter().any(|r| matches!(
            r,
            JournalRecord::Expired { message_id, .. } if *message_id == id
        )));
    }

    #[test]
    fn selector_takes_first_match_leaving_others() {
        let (_c, q) = sim_queue();
        q.put(Message::text("m1").property("k", 1i64).build(), true)
            .unwrap();
        q.put(Message::text("m2").property("k", 2i64).build(), true)
            .unwrap();
        q.put(Message::text("m3").property("k", 1i64).build(), true)
            .unwrap();
        let sel = Selector::parse("k = 2").unwrap();
        let got = q.try_take(Some(&sel), true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("m2"));
        assert_eq!(q.depth(), 2);
        // Remaining messages keep FIFO order.
        assert_eq!(
            q.try_take(None, true).unwrap().unwrap().payload_str(),
            Some("m1")
        );
    }

    #[test]
    fn indexed_and_scanned_selector_gets_agree() {
        // Two queues with identical contents: one serving selector gets
        // from the property index, one forced onto the band scan. Every
        // get must return the same message in the same order.
        let clock = SimClock::new();
        let indexed = Queue::new(
            "IDX.Q".into(),
            clock.clone(),
            MemJournal::new(),
            QueueConfig::default(),
        );
        let scanned = Queue::new(
            "SCAN.Q".into(),
            clock.clone(),
            MemJournal::new(),
            QueueConfig {
                index_properties: false,
                ..QueueConfig::default()
            },
        );
        let mut payloads = Vec::new();
        for i in 0..40u8 {
            let m = Message::text(format!("m{i}"))
                .property("shard", i64::from(i % 5))
                .property("kind", if i % 2 == 0 { "even" } else { "odd" })
                .priority(Priority::new(i % 3))
                .build();
            payloads.push(m.clone());
        }
        for m in &payloads {
            indexed.put(m.clone(), true).unwrap();
            scanned.put(m.clone(), true).unwrap();
        }
        let selectors = [
            "shard = 3",
            "shard = 1 AND kind = 'even'",
            "kind = 'odd'",
            "shard = 2 AND priority = 2",
            "shard = 9", // matches nothing
        ];
        for src in selectors {
            let sel = Selector::parse(src).unwrap();
            loop {
                let a = indexed.try_take(Some(&sel), true).unwrap();
                let b = scanned.try_take(Some(&sel), true).unwrap();
                assert_eq!(
                    a.as_ref().map(Message::id),
                    b.as_ref().map(Message::id),
                    "selector {src:?} diverged between index and scan"
                );
                if a.is_none() {
                    break;
                }
            }
        }
        assert_eq!(indexed.depth(), scanned.depth());
    }

    #[test]
    fn indexed_take_respects_priority_over_bucket_order() {
        let (_c, q) = sim_queue();
        q.put(
            Message::text("early-low")
                .property("k", 1i64)
                .priority(Priority::new(1))
                .build(),
            true,
        )
        .unwrap();
        q.put(
            Message::text("late-high")
                .property("k", 1i64)
                .priority(Priority::new(7))
                .build(),
            true,
        )
        .unwrap();
        let sel = Selector::parse("k = 1").unwrap();
        let got = q.try_take(Some(&sel), true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("late-high"));
    }

    #[test]
    fn browse_does_not_consume() {
        let (_c, q) = sim_queue();
        q.put(text("a"), true).unwrap();
        q.put(Message::text("b").priority(Priority::new(9)).build(), true)
            .unwrap();
        let snapshot = q.browse();
        assert_eq!(snapshot.len(), 2);
        // Delivery order: high priority first.
        assert_eq!(snapshot[0].payload_str(), Some("b"));
        assert_eq!(q.depth(), 2);
        let sel = Selector::parse("priority = 9").unwrap();
        assert_eq!(q.browse_selected(Some(&sel)).len(), 1);
    }

    #[test]
    fn any_selected_probes_without_consuming() {
        let (_c, q) = sim_queue();
        q.put(Message::text("m").property("k", 1i64).build(), true)
            .unwrap();
        let hit = Selector::parse("k = 1").unwrap();
        let miss = Selector::parse("k = 2").unwrap();
        assert!(q.any_selected(&hit));
        assert!(!q.any_selected(&miss));
        assert_eq!(q.depth(), 1, "probe must not consume");
    }

    #[test]
    fn requeue_front_preserves_head_position_and_bumps_redelivery() {
        let (_c, q) = sim_queue();
        q.put(text("first"), true).unwrap();
        q.put(text("second"), true).unwrap();
        let m = q.try_take(None, false).unwrap().unwrap();
        assert_eq!(m.redelivery_count(), 0);
        q.requeue_front(m, true);
        let again = q.try_take(None, false).unwrap().unwrap();
        assert_eq!(again.payload_str(), Some("first"));
        assert_eq!(again.redelivery_count(), 1);
        assert_eq!(q.stats().redelivered.get(), 1);
    }

    #[test]
    fn take_by_correlation_uses_index() {
        let (_c, q) = sim_queue();
        for i in 0..5 {
            q.put(
                Message::text(format!("m{i}"))
                    .correlation_id(format!("corr-{}", i % 2))
                    .build(),
                true,
            )
            .unwrap();
        }
        q.put(text("no-corr"), true).unwrap();
        // corr-1 messages are m1, m3 (FIFO).
        let a = q.try_take_by_correlation("corr-1", true).unwrap().unwrap();
        assert_eq!(a.payload_str(), Some("m1"));
        let b = q.try_take_by_correlation("corr-1", true).unwrap().unwrap();
        assert_eq!(b.payload_str(), Some("m3"));
        assert!(q.try_take_by_correlation("corr-1", true).unwrap().is_none());
        assert!(q.try_take_by_correlation("corr-9", true).unwrap().is_none());
        assert_eq!(q.depth(), 4);
        // Remaining FIFO order unaffected: m0, m2, m4, no-corr.
        let rest: Vec<_> = (0..4)
            .map(|_| q.try_take(None, true).unwrap().unwrap())
            .map(|m| m.payload_str().unwrap().to_owned())
            .collect();
        assert_eq!(rest, vec!["m0", "m2", "m4", "no-corr"]);
    }

    #[test]
    fn take_by_correlation_skips_expired() {
        let (clock, q) = sim_queue();
        q.put(
            Message::text("stale")
                .correlation_id("c")
                .ttl(Millis(5))
                .build(),
            true,
        )
        .unwrap();
        q.put(Message::text("fresh").correlation_id("c").build(), true)
            .unwrap();
        clock.advance(Millis(10));
        let got = q.try_take_by_correlation("c", true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("fresh"));
        assert_eq!(q.stats().expired.get(), 1);
    }

    #[test]
    fn stale_band_entries_are_skipped_after_corr_take() {
        let (_c, q) = sim_queue();
        q.put(Message::text("x").correlation_id("c").build(), true)
            .unwrap();
        q.put(text("y"), true).unwrap();
        q.try_take_by_correlation("c", true).unwrap().unwrap();
        // The band still holds a stale id for "x"; a normal take must skip
        // it and return "y".
        let got = q.try_take(None, true).unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("y"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn remove_by_id_keeps_index_consistent() {
        let (_c, q) = sim_queue();
        let msg = Message::text("x").correlation_id("c").build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        assert!(q.remove_by_id(id).is_some());
        assert!(q.remove_by_id(id).is_none());
        assert!(q.try_take_by_correlation("c", true).unwrap().is_none());
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn blocking_take_wakes_on_put_system_clock() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let q2 = q.clone();
        let consumer =
            std::thread::spawn(move || q2.take_blocking(None, Wait::Timeout(Millis(2_000)), true));
        std::thread::sleep(Duration::from_millis(30));
        q.put(text("late"), true).unwrap();
        let got = consumer.join().unwrap().unwrap().unwrap();
        assert_eq!(got.payload_str(), Some("late"));
    }

    #[test]
    fn blocking_take_times_out_system_clock() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let got = q
            .take_blocking(None, Wait::Timeout(Millis(30)), true)
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn blocking_take_times_out_sim_clock() {
        let (clock, q) = sim_queue();
        let q2 = q.clone();
        let consumer =
            std::thread::spawn(move || q2.take_blocking(None, Wait::Timeout(Millis(100)), true));
        std::thread::sleep(Duration::from_millis(20));
        clock.advance(Millis(150));
        q.kick();
        let got = consumer.join().unwrap().unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn nowait_returns_immediately() {
        let (_c, q) = sim_queue();
        assert!(q.take_blocking(None, Wait::NoWait, true).unwrap().is_none());
    }

    #[test]
    fn close_wakes_blocked_consumer_with_error() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.take_blocking(None, Wait::Forever, true));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        match consumer.join().unwrap() {
            Err(MqError::ManagerStopped(_)) => {}
            other => panic!("expected ManagerStopped, got {other:?}"),
        }
    }

    #[test]
    fn puts_fail_after_close() {
        let (_c, q) = sim_queue();
        q.close();
        assert!(matches!(
            q.put(text("x"), true),
            Err(MqError::ManagerStopped(_))
        ));
    }

    #[test]
    fn purge_empties_queue() {
        let (_c, q) = sim_queue();
        for i in 0..5 {
            q.put(text(&format!("m{i}")), true).unwrap();
        }
        assert_eq!(q.purge().unwrap(), 5);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn persistent_put_and_get_are_journaled() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new("P.Q".into(), clock, journal.clone(), QueueConfig::default());
        let msg = Message::text("x").persistent(true).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        q.try_take(None, true).unwrap().unwrap();
        let recs = journal.replay_collect().unwrap();
        assert!(matches!(&recs[0], JournalRecord::Put { message, .. } if message.id() == id));
        assert!(matches!(&recs[1], JournalRecord::Get { message_id, .. } if *message_id == id));
    }

    #[test]
    fn transactional_get_parks_pending_until_finalized() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "TX.Q".into(),
            clock,
            journal.clone(),
            QueueConfig::default(),
        );
        let msg = Message::text("x").persistent(true).build();
        let id = msg.id();
        q.put(msg, true).unwrap();
        // Transactional get: no Get record yet, message held pending.
        q.try_take(None, false).unwrap().unwrap();
        assert_eq!(q.depth(), 0);
        let snap = q.snapshot_persistent();
        assert_eq!(snap.len(), 1, "pending get still owed to checkpoints");
        assert_eq!(snap[0].id(), id);
        q.finalize_pending(id);
        assert!(q.snapshot_persistent().is_empty());
    }

    #[test]
    fn non_persistent_messages_are_not_journaled() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let q = Queue::new(
            "NP.Q".into(),
            clock,
            journal.clone(),
            QueueConfig::default(),
        );
        q.put(text("volatile"), true).unwrap();
        q.try_take(None, true).unwrap().unwrap();
        assert_eq!(journal.record_count(), 0);
    }

    #[test]
    fn concurrent_producers_consumers_conserve_messages() {
        let clock: SharedClock = SystemClock::new();
        let q = queue_with(clock);
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        q.put(text(&format!("{t}-{i}")), true).unwrap();
                    }
                })
            })
            .collect();
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || {
                    while consumed.load(Ordering::SeqCst) < 1000 {
                        if q.take_blocking(None, Wait::Timeout(Millis(100)), true)
                            .unwrap()
                            .is_some()
                        {
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        use std::sync::atomic::Ordering;
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), 1000);
        assert_eq!(q.depth(), 0);
        assert_eq!(q.stats().dequeued.get(), 1000);
    }
}
