//! Publish/subscribe topics layered on queues.
//!
//! The conditional-messaging paper frames message queuing and
//! publish/subscribe as the two messaging models its concept applies to
//! (§2: "specific models of conditional messaging can be defined with
//! respect to … message queuing and publish/subscribe systems"). This
//! module supplies the pub/sub substrate: a [`Topic`] fans published
//! messages out to one queue per subscription, optionally filtered by a
//! [selector](crate::selector). Subscriptions are *durable*: the
//! registration is journaled (as a persistent message on a registry
//! queue), so both the subscription and its undelivered messages survive a
//! queue-manager restart.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{MqError, MqResult};
use crate::message::{Message, QueueAddress};
use crate::qmgr::QueueManager;
use crate::selector::Selector;
use crate::stats::Counter;
use crate::Wait;

/// Property on registry records naming the subscription.
const P_SUB_NAME: &str = "sys.topic.sub.name";
/// Property on registry records carrying the selector source, if any.
const P_SUB_SELECTOR: &str = "sys.topic.sub.selector";

#[derive(Debug)]
struct Subscription {
    queue: String,
    selector: Option<Selector>,
}

/// Per-topic statistics.
#[derive(Debug, Default)]
pub struct TopicStats {
    /// Messages published to the topic.
    pub published: Counter,
    /// Message copies delivered to subscription queues.
    pub delivered: Counter,
    /// Copies suppressed by subscription selectors.
    pub filtered: Counter,
}

/// A publish/subscribe topic on one queue manager.
pub struct Topic {
    name: String,
    qmgr: Arc<QueueManager>,
    registry_queue: String,
    subscriptions: RwLock<HashMap<String, Subscription>>,
    stats: TopicStats,
}

impl fmt::Debug for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topic")
            .field("name", &self.name)
            .field("subscriptions", &self.subscription_count())
            .finish()
    }
}

impl Topic {
    /// Opens (or re-opens) a topic, recovering durable subscriptions from
    /// the registry queue.
    ///
    /// # Errors
    ///
    /// Queue-creation or journal failures; malformed registry records.
    pub fn open(qmgr: Arc<QueueManager>, name: impl Into<String>) -> MqResult<Arc<Topic>> {
        let name = name.into();
        let registry_queue = format!("SYSTEM.TOPIC.{name}.SUBS");
        qmgr.ensure_queue(&registry_queue)?;
        let topic = Topic {
            name,
            qmgr,
            registry_queue,
            subscriptions: RwLock::new(HashMap::new()),
            stats: TopicStats::default(),
        };
        // Recover durable subscriptions.
        let mut subs = topic.subscriptions.write();
        for record in topic.qmgr.queue(&topic.registry_queue)?.browse() {
            let Some(sub_name) = record.str_property(P_SUB_NAME).map(str::to_owned) else {
                continue;
            };
            let selector = match record.str_property(P_SUB_SELECTOR) {
                Some(src) => Some(Selector::parse(src)?),
                None => None,
            };
            let queue = topic.queue_for(&sub_name);
            topic.qmgr.ensure_queue(&queue)?;
            subs.insert(sub_name, Subscription { queue, selector });
        }
        drop(subs);
        Ok(Arc::new(topic))
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Topic statistics.
    pub fn stats(&self) -> &TopicStats {
        &self.stats
    }

    fn queue_for(&self, sub_name: &str) -> String {
        format!("TOPIC.{}.{}", self.name, sub_name)
    }

    /// Creates a durable subscription; returns the name of the queue its
    /// messages are delivered to. Re-subscribing with the same name is
    /// idempotent (the existing queue is reused).
    ///
    /// # Errors
    ///
    /// Queue-creation or journal failures.
    pub fn subscribe(&self, sub_name: &str) -> MqResult<String> {
        self.subscribe_inner(sub_name, None)
    }

    /// Creates a durable subscription that only receives messages matching
    /// `selector`.
    ///
    /// # Errors
    ///
    /// Same as [`Topic::subscribe`].
    pub fn subscribe_filtered(&self, sub_name: &str, selector: Selector) -> MqResult<String> {
        self.subscribe_inner(sub_name, Some(selector))
    }

    fn subscribe_inner(&self, sub_name: &str, selector: Option<Selector>) -> MqResult<String> {
        let queue = self.queue_for(sub_name);
        self.qmgr.ensure_queue(&queue)?;
        let mut subs = self.subscriptions.write();
        if !subs.contains_key(sub_name) {
            let mut record = Message::text("")
                .property(P_SUB_NAME, sub_name)
                .persistent(true)
                .correlation_id(sub_name)
                .build();
            if let Some(sel) = &selector {
                record.set_property(P_SUB_SELECTOR, sel.source());
            }
            self.qmgr.put(&self.registry_queue, record)?;
        }
        subs.insert(
            sub_name.to_owned(),
            Subscription {
                queue: queue.clone(),
                selector,
            },
        );
        Ok(queue)
    }

    /// Removes a subscription and deletes its queue (undelivered messages
    /// are discarded).
    ///
    /// # Errors
    ///
    /// [`MqError::QueueNotFound`] when no such subscription exists.
    pub fn unsubscribe(&self, sub_name: &str) -> MqResult<()> {
        let mut subs = self.subscriptions.write();
        let sub = subs
            .remove(sub_name)
            .ok_or_else(|| MqError::QueueNotFound(self.queue_for(sub_name)))?;
        // Remove the durable registration (correlation-indexed).
        while self
            .qmgr
            .get_by_correlation(&self.registry_queue, sub_name, Wait::NoWait)?
            .is_some()
        {}
        self.qmgr.delete_queue(&sub.queue)?;
        Ok(())
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.read().len()
    }

    /// The queues of all active subscriptions (sorted by subscription
    /// name), as fully qualified addresses.
    pub fn subscriber_queues(&self) -> Vec<(String, QueueAddress)> {
        let subs = self.subscriptions.read();
        let mut out: Vec<(String, QueueAddress)> = subs
            .iter()
            .map(|(name, sub)| {
                (
                    name.clone(),
                    QueueAddress::new(self.qmgr.name(), sub.queue.clone()),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Publishes a message: one copy per subscription whose selector (if
    /// any) matches. Returns the number of copies delivered.
    ///
    /// # Errors
    ///
    /// Put failures.
    pub fn publish(&self, msg: Message) -> MqResult<usize> {
        self.stats.published.incr();
        let subs = self.subscriptions.read();
        let mut delivered = 0;
        for sub in subs.values() {
            if sub.selector.as_ref().is_none_or(|s| s.matches(&msg)) {
                // Each subscriber gets its own copy with a fresh identity
                // (pub/sub semantics: independent deliveries).
                let copy = clone_for_subscriber(&msg);
                self.qmgr.put(&sub.queue, copy)?;
                delivered += 1;
            } else {
                self.stats.filtered.incr();
            }
        }
        self.stats.delivered.add(delivered as u64);
        Ok(delivered)
    }
}

/// Clones a message with a fresh message id for an independent delivery.
fn clone_for_subscriber(msg: &Message) -> Message {
    let mut builder = Message::builder(msg.payload().clone())
        .priority(msg.priority())
        .persistent(msg.is_persistent());
    for (k, v) in msg.properties() {
        builder = builder.property(k, v.clone());
    }
    if let Some(ttl) = msg.ttl() {
        builder = builder.ttl(ttl);
    }
    if let Some(corr) = msg.correlation_id() {
        builder = builder.correlation_id(corr);
    }
    if let Some(reply) = msg.reply_to() {
        builder = builder.reply_to(reply.clone());
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::MemJournal;
    use simtime::SimClock;

    fn manager() -> (Arc<MemJournal>, Arc<QueueManager>) {
        let journal = MemJournal::new();
        let qm = QueueManager::builder("QM1")
            .clock(SimClock::new())
            .journal(journal.clone())
            .build()
            .unwrap();
        (journal, qm)
    }

    #[test]
    fn publish_fans_out_to_all_subscribers() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm.clone(), "news").unwrap();
        let q1 = topic.subscribe("alice").unwrap();
        let q2 = topic.subscribe("bob").unwrap();
        assert_eq!(topic.subscription_count(), 2);
        let n = topic
            .publish(Message::text("headline").persistent(true).build())
            .unwrap();
        assert_eq!(n, 2);
        let m1 = qm.get(&q1, Wait::NoWait).unwrap().unwrap();
        let m2 = qm.get(&q2, Wait::NoWait).unwrap().unwrap();
        assert_eq!(m1.payload_str(), Some("headline"));
        assert_eq!(m2.payload_str(), Some("headline"));
        assert_ne!(m1.id(), m2.id(), "independent deliveries");
        assert_eq!(topic.stats().published.get(), 1);
        assert_eq!(topic.stats().delivered.get(), 2);
    }

    #[test]
    fn selector_filtered_subscription() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm.clone(), "alerts").unwrap();
        let all = topic.subscribe("all").unwrap();
        let urgent_only = topic
            .subscribe_filtered("urgent", Selector::parse("severity >= 7").unwrap())
            .unwrap();
        topic
            .publish(Message::text("minor").property("severity", 3i64).build())
            .unwrap();
        topic
            .publish(Message::text("major").property("severity", 9i64).build())
            .unwrap();
        assert_eq!(qm.queue(&all).unwrap().depth(), 2);
        assert_eq!(qm.queue(&urgent_only).unwrap().depth(), 1);
        assert_eq!(topic.stats().filtered.get(), 1);
    }

    #[test]
    fn no_subscribers_publishes_to_nobody() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm, "void").unwrap();
        assert_eq!(topic.publish(Message::text("x").build()).unwrap(), 0);
    }

    #[test]
    fn unsubscribe_removes_queue_and_registration() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm.clone(), "news").unwrap();
        let q = topic.subscribe("alice").unwrap();
        topic.unsubscribe("alice").unwrap();
        assert_eq!(topic.subscription_count(), 0);
        assert!(!qm.queue_exists(&q));
        assert!(matches!(
            topic.unsubscribe("alice"),
            Err(MqError::QueueNotFound(_))
        ));
        assert_eq!(topic.publish(Message::text("x").build()).unwrap(), 0);
    }

    #[test]
    fn resubscribe_is_idempotent() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm.clone(), "news").unwrap();
        let q1 = topic.subscribe("alice").unwrap();
        let q2 = topic.subscribe("alice").unwrap();
        assert_eq!(q1, q2);
        assert_eq!(topic.subscription_count(), 1);
        // Only one durable registration exists.
        assert_eq!(qm.queue("SYSTEM.TOPIC.news.SUBS").unwrap().depth(), 1);
    }

    #[test]
    fn durable_subscriptions_survive_crash() {
        let (journal, qm) = manager();
        {
            let topic = Topic::open(qm.clone(), "news").unwrap();
            topic.subscribe("alice").unwrap();
            topic
                .subscribe_filtered("urgent", Selector::parse("severity > 5").unwrap())
                .unwrap();
            topic
                .publish(
                    Message::text("before crash")
                        .property("severity", 9i64)
                        .persistent(true)
                        .build(),
                )
                .unwrap();
            qm.crash();
        }
        let qm2 = QueueManager::builder("QM1")
            .clock(SimClock::new())
            .journal(journal)
            .build()
            .unwrap();
        let topic = Topic::open(qm2.clone(), "news").unwrap();
        assert_eq!(topic.subscription_count(), 2, "registrations recovered");
        // Undelivered persistent copies survived too.
        assert_eq!(qm2.queue("TOPIC.news.alice").unwrap().depth(), 1);
        assert_eq!(qm2.queue("TOPIC.news.urgent").unwrap().depth(), 1);
        // And the selector still filters after recovery.
        topic
            .publish(Message::text("calm").property("severity", 1i64).build())
            .unwrap();
        assert_eq!(qm2.queue("TOPIC.news.alice").unwrap().depth(), 2);
        assert_eq!(qm2.queue("TOPIC.news.urgent").unwrap().depth(), 1);
    }

    #[test]
    fn publish_preserves_message_attributes() {
        let (_j, qm) = manager();
        let topic = Topic::open(qm.clone(), "t").unwrap();
        let q = topic.subscribe("s").unwrap();
        let original = Message::text("body")
            .property("k", "v")
            .priority(crate::Priority::new(8))
            .persistent(true)
            .correlation_id("corr-1")
            .reply_to(QueueAddress::new("QM1", "REPLY"))
            .build();
        topic.publish(original).unwrap();
        let copy = qm.get(&q, Wait::NoWait).unwrap().unwrap();
        assert_eq!(copy.str_property("k"), Some("v"));
        assert_eq!(copy.priority().level(), 8);
        assert!(copy.is_persistent());
        assert_eq!(copy.correlation_id(), Some("corr-1"));
        assert_eq!(copy.reply_to().unwrap().queue, "REPLY");
    }
}
