//! Error types for the `mq` middleware substrate.

use std::fmt;

/// Errors reported by queue managers, sessions, journals and channels.
#[derive(Debug)]
#[non_exhaustive]
pub enum MqError {
    /// The named queue does not exist on the queue manager.
    QueueNotFound(String),
    /// A queue with this name already exists.
    QueueExists(String),
    /// No route (channel) is defined to the named remote queue manager.
    NoRoute(String),
    /// The queue has reached its configured maximum depth.
    QueueFull(String),
    /// The queue manager has been stopped or crashed.
    ManagerStopped(String),
    /// A transactional operation was attempted outside a transaction.
    NoTransaction,
    /// `begin` was called while a transaction was already active.
    TransactionActive,
    /// A message selector failed to parse or evaluate.
    Selector(crate::selector::SelectorError),
    /// A journal record failed to encode or decode.
    Codec(crate::codec::CodecError),
    /// The journal storage failed.
    Io(std::io::Error),
    /// A journal record failed its integrity check during replay.
    JournalCorrupt {
        /// Byte offset of the corrupt record.
        offset: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A channel transport failed (socket setup, handshake, or framing).
    Transport {
        /// The peer's name or socket address.
        peer: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The message exceeds the queue manager's maximum message length.
    MessageTooLarge {
        /// Size of the offending message payload in bytes.
        size: usize,
        /// Configured maximum in bytes.
        max: usize,
    },
}

impl fmt::Display for MqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqError::QueueNotFound(q) => write!(f, "queue not found: {q}"),
            MqError::QueueExists(q) => write!(f, "queue already exists: {q}"),
            MqError::NoRoute(m) => write!(f, "no channel to queue manager: {m}"),
            MqError::QueueFull(q) => write!(f, "queue full: {q}"),
            MqError::ManagerStopped(m) => write!(f, "queue manager stopped: {m}"),
            MqError::NoTransaction => write!(f, "no transaction is active"),
            MqError::TransactionActive => write!(f, "a transaction is already active"),
            MqError::Selector(e) => write!(f, "selector error: {e}"),
            MqError::Codec(e) => write!(f, "codec error: {e}"),
            MqError::Io(e) => write!(f, "journal i/o error: {e}"),
            MqError::JournalCorrupt { offset, reason } => {
                write!(f, "journal corrupt at offset {offset}: {reason}")
            }
            MqError::Transport { peer, reason } => {
                write!(f, "transport error ({peer}): {reason}")
            }
            MqError::MessageTooLarge { size, max } => {
                write!(f, "message of {size} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for MqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MqError::Io(e) => Some(e),
            MqError::Codec(e) => Some(e),
            MqError::Selector(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MqError {
    fn from(e: std::io::Error) -> Self {
        MqError::Io(e)
    }
}

impl From<crate::codec::CodecError> for MqError {
    fn from(e: crate::codec::CodecError) -> Self {
        MqError::Codec(e)
    }
}

impl From<crate::selector::SelectorError> for MqError {
    fn from(e: crate::selector::SelectorError) -> Self {
        MqError::Selector(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type MqResult<T> = Result<T, MqError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let cases: Vec<(MqError, &str)> = vec![
            (MqError::QueueNotFound("A".into()), "queue not found: A"),
            (MqError::QueueExists("B".into()), "queue already exists: B"),
            (
                MqError::NoRoute("QM2".into()),
                "no channel to queue manager: QM2",
            ),
            (MqError::QueueFull("C".into()), "queue full: C"),
            (MqError::NoTransaction, "no transaction is active"),
            (
                MqError::TransactionActive,
                "a transaction is already active",
            ),
            (
                MqError::MessageTooLarge { size: 10, max: 5 },
                "message of 10 bytes exceeds maximum 5",
            ),
            (
                MqError::Transport {
                    peer: "QM.B".into(),
                    reason: "handshake refused".into(),
                },
                "transport error (QM.B): handshake refused",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<MqError>();
    }

    #[test]
    fn io_error_converts_with_source() {
        let io = std::io::Error::other("disk gone");
        let err: MqError = io.into();
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("disk gone"));
    }
}
