//! Metrics: lock-free atomic cells and the named-metric registry.
//!
//! The cells ([`Counter`], [`Gauge`], [`Histogram`]) are plain `AtomicU64`
//! structures — updating one is a handful of relaxed atomic operations, no
//! locks and no allocation, so they are safe to hit on every hot path.
//! The [`MetricsRegistry`] names cells so observers can discover them: a
//! component registers its cells once at construction time (the only
//! allocating step) and keeps the returned `Arc` handles; readers call
//! [`MetricsRegistry::snapshot`] at any moment and get a consistent-enough
//! point-in-time view without stopping writers.
//!
//! Naming scheme (see DESIGN.md "Observability"):
//! `layer.component[.instance].metric`, e.g. `mq.queue.Q.A.enqueued`,
//! `mq.tx.committed`, `cond.verdict.failure`, `dsphere.aborted`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge tracking a current value and its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// Sets the gauge, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.current.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Reads the high-water mark.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Default bucket upper bounds for latency histograms, in microseconds.
///
/// Covers sub-microsecond in-memory operations up to multi-second stalls;
/// values above the last bound land in the implicit overflow bucket. The
/// sub-10 ms range is deliberately fine-grained (~1.5–2× steps): the
/// pipelined transport's per-batch ack latency sits in the hundreds of
/// microseconds on loopback, and a quantile can only resolve to its
/// bucket's upper bound — with the old 100 → 500 → 1000 → 5000 µs ladder
/// a 300 µs p95 reported as 500 and anything past 1 ms collapsed to
/// 5000. Recording stays a linear scan over a few dozen bounds.
pub const DEFAULT_LATENCY_BOUNDS_US: [u64; 25] = [
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    150,
    200,
    300,
    500,
    750,
    1_000,
    1_500,
    2_000,
    3_000,
    5_000,
    7_500,
    10_000,
    20_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
];

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket bounds are fixed at construction; recording a sample is a linear
/// scan over at most a few dozen bounds plus three relaxed atomic adds —
/// no locks, no allocation.
pub struct Histogram {
    bounds: Vec<u64>,
    /// One cell per bound plus a final overflow cell.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new(&DEFAULT_LATENCY_BOUNDS_US)
    }
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    /// A sample `v` lands in the first bucket with `v <= bound`, or in the
    /// overflow bucket past the last bound.
    pub fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascending");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records an elapsed [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the value at quantile `q` (0.0..=1.0) as the upper bound
    /// of the bucket containing that rank. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or_else(|| self.max());
            }
        }
        self.max()
    }
}

/// Point-in-time copy of a [`Gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Value at snapshot time.
    pub current: u64,
    /// High-water mark at snapshot time.
    pub high_water: u64,
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds.
    pub bounds: Vec<u64>,
    /// Per-bucket counts (overflow bucket last).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time view of every named metric in a [`MetricsRegistry`].
///
/// Writers are never stopped, so counters keep moving while the snapshot
/// is taken; each individual cell is read atomically.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total number of named metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of metrics with a non-zero value (counter > 0, gauge
    /// high-water > 0, histogram with at least one sample).
    pub fn populated(&self) -> usize {
        self.counters.values().filter(|v| **v > 0).count()
            + self.gauges.values().filter(|g| g.high_water > 0).count()
            + self.histograms.values().filter(|h| h.count > 0).count()
    }

    /// Renders the snapshot as aligned `name value` lines for logs and the
    /// experiment binaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!(
                "{name} {} (high-water {})\n",
                g.current, g.high_water
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name} count={} mean={:.1} p50={} p99={} max={}\n",
                h.count,
                h.mean(),
                quantile_of(h, 0.50),
                quantile_of(h, 0.99),
                h.max,
            ));
        }
        out
    }
}

fn quantile_of(h: &HistogramSnapshot, q: f64) -> u64 {
    let total: u64 = h.buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, c) in h.buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return h.bounds.get(i).copied().unwrap_or(h.max);
        }
    }
    h.max
}

/// A registry of named metric cells.
///
/// `counter` / `gauge` / `histogram` are get-or-create: the first call for
/// a name registers the cell, later calls return the same `Arc`. Components
/// register at construction time and hold the handles — lookups never
/// happen on hot paths.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it if new.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, registering it if new.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name` (default latency buckets),
    /// registering it if new.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Registers an externally-owned counter cell under `name` so it shows
    /// up in [`MetricsRegistry::snapshot`]. If the name is already taken
    /// the existing cell wins (first registration sticks) — components that
    /// own their cells (e.g. a journal created before the registry) call
    /// this once when attached to a manager.
    pub fn register_counter(&self, name: &str, cell: &Arc<Counter>) {
        self.counters
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| cell.clone());
    }

    /// Registers an externally-owned gauge cell under `name`; first
    /// registration sticks (see [`MetricsRegistry::register_counter`]).
    pub fn register_gauge(&self, name: &str, cell: &Arc<Gauge>) {
        self.gauges
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| cell.clone());
    }

    /// Registers an externally-owned histogram cell under `name`; first
    /// registration sticks (see [`MetricsRegistry::register_counter`]).
    pub fn register_histogram(&self, name: &str, cell: &Arc<Histogram>) {
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_insert_with(|| cell.clone());
    }

    /// Takes a point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    GaugeSnapshot {
                        current: v.get(),
                        high_water: v.high_water(),
                    },
                )
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .iter()
            .map(|(k, v)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: v.bounds().to_vec(),
                        buckets: v.bucket_counts(),
                        count: v.count(),
                        sum: v.sum(),
                        max: v.max(),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Per-queue statistics, registered as `mq.queue.<name>.*`.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Messages successfully enqueued.
    pub enqueued: Arc<Counter>,
    /// Messages consumed (non-transactionally, or by committed transactions).
    pub dequeued: Arc<Counter>,
    /// Messages discarded because their expiry passed.
    pub expired: Arc<Counter>,
    /// Messages returned to the queue by transaction rollback.
    pub redelivered: Arc<Counter>,
    /// Messages rerouted to the dead-letter queue.
    pub dead_lettered: Arc<Counter>,
    /// Browse operations served.
    pub browses: Arc<Counter>,
    /// Queue depth gauge (with high-water mark).
    pub depth: Arc<Gauge>,
}

impl QueueStats {
    /// Creates stats whose cells are registered in `registry` under
    /// `mq.queue.<queue>.*`.
    pub fn registered(registry: &MetricsRegistry, queue: &str) -> QueueStats {
        // Each name is spelled out as a full literal so the registry
        // lint can check it against the declared metric-name registry.
        QueueStats {
            enqueued: registry.counter(&format!("mq.queue.{queue}.enqueued")),
            dequeued: registry.counter(&format!("mq.queue.{queue}.dequeued")),
            expired: registry.counter(&format!("mq.queue.{queue}.expired")),
            redelivered: registry.counter(&format!("mq.queue.{queue}.redelivered")),
            dead_lettered: registry.counter(&format!("mq.queue.{queue}.dead_lettered")),
            browses: registry.counter(&format!("mq.queue.{queue}.browses")),
            depth: registry.gauge(&format!("mq.queue.{queue}.depth")),
        }
    }
}

/// Per-queue-manager statistics, registered as `mq.*`.
#[derive(Debug, Default)]
pub struct ManagerStats {
    /// Transactions committed.
    pub tx_committed: Arc<Counter>,
    /// Transactions rolled back.
    pub tx_rolled_back: Arc<Counter>,
    /// Messages forwarded to remote queue managers.
    pub forwarded: Arc<Counter>,
    /// Messages received from remote queue managers.
    pub received_remote: Arc<Counter>,
    /// Latency of durable journal appends (put + fsync where the backend
    /// syncs), in microseconds.
    pub journal_append_micros: Arc<Histogram>,
}

impl ManagerStats {
    /// Creates stats whose cells are registered in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> ManagerStats {
        ManagerStats {
            tx_committed: registry.counter("mq.tx.committed"),
            tx_rolled_back: registry.counter("mq.tx.rolled_back"),
            forwarded: registry.counter("mq.forwarded"),
            received_remote: registry.counter("mq.received_remote"),
            journal_append_micros: registry.histogram("mq.journal.append_micros"),
        }
    }
}

/// Relay-federation statistics for one queue manager, registered as
/// `mq.relay.*`. Counts what happens to envelopes arriving from channels:
/// accepted locally, forwarded downstream, discarded as duplicates, or
/// dead-lettered because no viable next hop exists.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Envelopes accepted from a channel and delivered to a local queue.
    pub delivered_local: Arc<Counter>,
    /// In-transit envelopes re-enqueued toward their destination manager.
    pub forwarded: Arc<Counter>,
    /// Envelopes discarded by the manager-level idempotency check
    /// (origin-manager + message id already seen).
    pub duplicates: Arc<Counter>,
    /// Envelopes dead-lettered by the relay (unknown destination manager,
    /// hop count exhausted, TTL expired).
    pub dead_lettered: Arc<Counter>,
    /// Hop count observed on each envelope when it arrived here.
    pub hops: Arc<Histogram>,
}

impl RelayStats {
    /// Creates stats whose cells are registered in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> RelayStats {
        RelayStats {
            delivered_local: registry.counter("mq.relay.delivered_local"),
            forwarded: registry.counter("mq.relay.forwarded"),
            duplicates: registry.counter("mq.relay.duplicates"),
            dead_lettered: registry.counter("mq.relay.dead_lettered"),
            hops: registry.histogram("mq.relay.hops"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.set(3);
        g.set(10);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(Counter::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn histogram_buckets_samples_at_bounds() {
        let h = Histogram::new(&[10, 100, 1000]);
        // Boundary values land in the bucket whose bound they equal.
        h.record(0);
        h.record(10); // first bucket (v <= 10)
        h.record(11); // second bucket
        h.record(100); // second bucket
        h.record(101); // third bucket
        h.record(1000); // third bucket
        h.record(1001); // overflow
        h.record(u64::MAX); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let h = Histogram::new(&[1, 2, 4, 8, 16]);
        for v in [1, 1, 2, 3, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 21);
        assert!((h.mean() - 3.5).abs() < f64::EPSILON);
        assert_eq!(h.max(), 9);
        // Ranks: 2×≤1, 1×≤2, 1×≤4, 1×≤8, 1×≤16.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 2);
        assert_eq!(h.quantile(1.0), 16);
        // Empty histogram.
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn histogram_default_bounds_cover_latencies() {
        let h = Histogram::default();
        h.record_duration(std::time::Duration::from_micros(7));
        h.record_duration(std::time::Duration::from_millis(3));
        assert_eq!(h.count(), 2);
        assert_eq!(h.bounds(), &DEFAULT_LATENCY_BOUNDS_US);
    }

    #[test]
    fn default_bounds_resolve_sub_millisecond_quantiles() {
        // A sub-millisecond batch p95 must be measurable: samples in the
        // hundreds of microseconds may not collapse into a ≥1 ms bucket.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(280);
        }
        assert_eq!(h.quantile(0.95), 300, "p95 resolves below 1 ms");
        // And the 1–10 ms band keeps sub-5 ms resolution.
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1_400);
        }
        assert_eq!(h.quantile(0.95), 1_500);
    }

    #[test]
    fn registry_get_or_create_returns_same_cell() {
        let r = MetricsRegistry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.incr();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        let g1 = r.gauge("x.depth");
        let g2 = r.gauge("x.depth");
        assert!(Arc::ptr_eq(&g1, &g2));
        let h1 = r.histogram("x.lat");
        let h2 = r.histogram("x.lat");
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn snapshot_reflects_registered_metrics() {
        let r = MetricsRegistry::new();
        r.counter("a").add(3);
        r.gauge("b").set(7);
        r.histogram("c").record(42);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.gauges["b"].high_water, 7);
        assert_eq!(snap.histograms["c"].count, 1);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.populated(), 3);
        let text = snap.render();
        assert!(text.contains("a 3"), "{text}");
        assert!(text.contains("b 7"), "{text}");
        assert!(text.contains("c count=1"), "{text}");
    }

    #[test]
    fn snapshot_is_consistent_under_concurrent_writers() {
        let r = Arc::new(MetricsRegistry::new());
        let c = r.counter("w.count");
        let h = r.histogram("w.lat");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let (c, h, stop) = (c.clone(), h.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.incr();
                        h.record(n % 2000);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        // Counters and histograms must only move forward between snapshots,
        // and each histogram snapshot must be internally consistent
        // (bucket counts sum to at most the concurrently-advancing total).
        let mut last_count = 0u64;
        for _ in 0..50 {
            let snap = r.snapshot();
            let count = snap.counter("w.count");
            assert!(count >= last_count, "counter went backwards");
            last_count = count;
            let hist = &snap.histograms["w.lat"];
            let bucket_sum: u64 = hist.buckets.iter().sum();
            assert!(
                bucket_sum <= hist.count + 4,
                "bucket sum {bucket_sum} far beyond count {hist:?}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(r.snapshot().counter("w.count"), written);
        assert_eq!(r.snapshot().histograms["w.lat"].count, written);
    }

    #[test]
    fn registered_queue_and_manager_stats_appear_in_snapshot() {
        let r = MetricsRegistry::new();
        let qs = QueueStats::registered(&r, "Q.A");
        let ms = ManagerStats::registered(&r);
        qs.enqueued.incr();
        qs.depth.set(5);
        ms.tx_committed.incr();
        ms.journal_append_micros.record(12);
        let snap = r.snapshot();
        assert_eq!(snap.counter("mq.queue.Q.A.enqueued"), 1);
        assert_eq!(snap.gauges["mq.queue.Q.A.depth"].high_water, 5);
        assert_eq!(snap.counter("mq.tx.committed"), 1);
        assert_eq!(snap.histograms["mq.journal.append_micros"].count, 1);
    }
}
