//! Lightweight atomic counters exposed by queues and queue managers.
//!
//! The benchmark harness reads these to report throughput and loss/expiry
//! figures without instrumenting the hot path with locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge tracking a current value and its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    current: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// Sets the gauge, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.current.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Reads the current value.
    pub fn get(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// Reads the high-water mark.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Per-queue statistics.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Messages successfully enqueued.
    pub enqueued: Counter,
    /// Messages consumed (non-transactionally, or by committed transactions).
    pub dequeued: Counter,
    /// Messages discarded because their expiry passed.
    pub expired: Counter,
    /// Messages returned to the queue by transaction rollback.
    pub redelivered: Counter,
    /// Messages rerouted to the dead-letter queue.
    pub dead_lettered: Counter,
    /// Browse operations served.
    pub browses: Counter,
    /// Queue depth gauge (with high-water mark).
    pub depth: Gauge,
}

/// Per-queue-manager statistics.
#[derive(Debug, Default)]
pub struct ManagerStats {
    /// Transactions committed.
    pub tx_committed: Counter,
    /// Transactions rolled back.
    pub tx_rolled_back: Counter,
    /// Messages forwarded to remote queue managers.
    pub forwarded: Counter,
    /// Messages received from remote queue managers.
    pub received_remote: Counter,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.set(3);
        g.set(10);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn counters_are_thread_safe() {
        let c = std::sync::Arc::new(Counter::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
