//! Seeded ABBA inversion: `forward` takes `a` then `b`, `backward`
//! takes `b` then `a`.

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let sum = *ga + *gb;
        drop(gb);
        drop(ga);
        sum
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let sum = *ga + *gb;
        drop(ga);
        drop(gb);
        sum
    }
}
