//! Seeded registry violation: one emission is misspelled relative to
//! the declared metric-name registry.

/// The declared registry for this mini-crate.
// lint: registry metric-name
pub const METRICS: &[&str] = &["app.sent", "app.received", "app.queue.*.depth"];

pub struct Registry;

impl Registry {
    pub fn counter(&self, name: &str) -> u64 {
        name.len() as u64
    }
}

pub fn wire(r: &Registry, queue: &str) -> u64 {
    let mut total = r.counter("app.sent");
    total += r.counter("app.recieved");
    total += r.counter(&format!("app.queue.{queue}.depth"));
    total
}
