//! Clean negatives: consistent lock order, a respected never-hold
//! discipline, discharged custody (strict and err-reverts), matching
//! registry emissions — and a `//` inside a string literal that must
//! NOT be lexed as a comment (the string even spells out a lint
//! annotation; treating it as one would fabricate a violation).

use parking_lot::Mutex;

/// Registry for the one metric this crate emits.
// lint: registry metric-name
pub const METRICS: &[&str] = &["clean.ticks"];

pub struct Message;

pub enum Error {
    Closed,
}

pub struct Clean {
    // lint: never-hold(Clean.a) across tick
    a: Mutex<u32>,
    b: Mutex<u32>,
    open: bool,
}

impl Clean {
    /// Both fns take `a` before `b`: no inversion.
    pub fn first(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let sum = *ga + *gb;
        drop(gb);
        drop(ga);
        sum
    }

    pub fn second(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let sum = *ga * *gb;
        drop(gb);
        drop(ga);
        sum
    }

    /// The declared discipline is respected: `tick` runs after drop.
    pub fn advance(&self) {
        let mut ga = self.a.lock();
        *ga += 1;
        drop(ga);
        self.tick();
    }

    fn tick(&self) {}

    /// Strict custody discharged on the only path.
    // lint: custody(msg)
    pub fn put(&self, msg: Message) {
        self.store(msg);
    }

    /// err-reverts: the `?` hands custody back to the caller.
    // lint: custody(msg, err-reverts)
    pub fn deliver(&self, msg: Message) -> Result<(), Error> {
        self.check()?;
        self.store(msg);
        Ok(())
    }

    fn store(&self, msg: Message) {
        let _ = msg;
    }

    fn check(&self) -> Result<(), Error> {
        if self.open {
            Ok(())
        } else {
            Err(Error::Closed)
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        name.len() as u64
    }

    pub fn observe(&self) -> u64 {
        self.counter("clean.ticks")
    }

    /// The `//` in these strings is string content, not a comment; a
    /// lexer that treated it as one would swallow the closing quote
    /// and register the embedded text as a real annotation.
    pub fn describe(&self) -> String {
        let url = "https://example.com/locking#discipline";
        let trap = "not a comment: // lint: never-hold(Clean.b) across first";
        format!("{url} {trap}")
    }
}
