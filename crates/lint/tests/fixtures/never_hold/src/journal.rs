//! Seeded never-hold violation: the buffer lock is declared
//! never-held across `sync_data`, but `append` pays the sync while
//! still holding it (directly and through a helper).

use parking_lot::Mutex;

pub struct Journal {
    /// Guards the staging buffer; the fsync must happen outside it.
    // lint: never-hold(Journal.inner) across sync_data
    inner: Mutex<Vec<u8>>,
}

impl Journal {
    pub fn append(&self, byte: u8) {
        let mut inner = self.inner.lock();
        inner.push(byte);
        self.sync_data();
        drop(inner);
    }

    pub fn append_indirect(&self, byte: u8) {
        let mut inner = self.inner.lock();
        inner.push(byte);
        self.flush_helper();
        drop(inner);
    }

    fn flush_helper(&self) {
        self.sync_data();
    }

    fn sync_data(&self) {}

    pub fn append_clean(&self, byte: u8) {
        let mut inner = self.inner.lock();
        inner.push(byte);
        drop(inner);
        self.sync_data();
    }
}
