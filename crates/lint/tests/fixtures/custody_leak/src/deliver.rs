//! Seeded custody leaks: an early `return Err` that abandons the
//! message, and a `?` that propagates an error while custody is live.

pub struct Message;

pub enum Error {
    Closed,
}

pub struct Queue {
    open: bool,
}

impl Queue {
    /// Clean: custody moves into `store` on every path.
    // lint: custody(msg)
    pub fn put(&self, msg: Message) {
        self.store(msg);
    }

    /// Leak: the early return drops the message on the floor.
    // lint: custody(msg)
    pub fn deliver(&self, msg: Message) -> Result<(), Error> {
        if !self.open {
            return Err(Error::Closed);
        }
        self.store(msg);
        Ok(())
    }

    /// Leak: `?` abandons the message when the precondition fails.
    // lint: custody(msg)
    pub fn forward(&self, msg: Message) -> Result<(), Error> {
        self.check()?;
        self.store(msg);
        Ok(())
    }

    fn store(&self, msg: Message) {
        let _ = msg;
    }

    fn check(&self) -> Result<(), Error> {
        if self.open {
            Ok(())
        } else {
            Err(Error::Closed)
        }
    }
}
