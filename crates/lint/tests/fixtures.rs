//! Golden-file corpus for the cond-verify passes.
//!
//! Each directory under `tests/fixtures/` is a miniature crate layout
//! (`src/*.rs`) with an `expected.txt` holding the exact formatted
//! findings `run_all` must produce — seeded violations must fire with
//! both sites in the diagnostic, and the clean corpus must stay
//! silent. Regenerate a golden file with
//! `cargo run -p cond-lint -- --root crates/lint/tests/fixtures/<case>`.

use std::path::Path;

fn check(case: &str) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case);
    let findings = cond_lint::run_all(&root)
        .unwrap_or_else(|e| panic!("fixture `{case}` failed to scan: {e}"));
    let actual: String = findings.iter().map(|f| format!("{f}\n")).collect();
    let expected = std::fs::read_to_string(root.join("expected.txt"))
        .unwrap_or_else(|e| panic!("fixture `{case}` has no expected.txt: {e}"));
    assert_eq!(
        actual, expected,
        "fixture `{case}` diverged from its golden file"
    );
}

/// Opposite acquisition orders of the same two locks: one finding
/// naming both acquisition sites.
#[test]
fn abba_inversion_is_reported_with_both_sites() {
    check("abba");
}

/// A declared `never-hold(<lock>) across <fn>` violated directly and
/// through a helper; the transitive report names the reached callee.
#[test]
fn never_hold_fires_directly_and_transitively() {
    check("never_hold");
}

/// Custody leaks on an early `return Err` and on a `?` exit; the
/// discharged path stays silent.
#[test]
fn custody_leaks_on_early_return_and_try() {
    check("custody_leak");
}

/// A misspelled metric emission against the declared registry;
/// wildcarded `format!` names match.
#[test]
fn registry_typo_is_flagged() {
    check("registry_typo");
}

/// Disciplined code — including `//` inside string literals, one of
/// which spells out a lint annotation — produces zero findings.
#[test]
fn clean_corpus_is_silent() {
    check("clean");
}
