//! `cond-lint` — project-specific source lints for the
//! conditional-messaging workspace.
//!
//! Clippy catches general Rust hazards; this tool catches the hazards
//! *specific to this codebase's rules of engagement*:
//!
//! | rule | flags | where |
//! |------|-------|-------|
//! | `sleep` | `std::thread::sleep` poll loops | library code |
//! | `std-sync` | `std::sync::Mutex`/`RwLock`/`Condvar` instead of the workspace `parking_lot` | library and binary code |
//! | `wall-clock` | `SystemTime::now` / `Instant::now` bypassing `simtime` | library code |
//! | `unwrap` | `.unwrap()` / `.expect(` panics | library code |
//!
//! The scanner is token-level, not syntactic: it first *cleans* each
//! source file — blanking comments (line and nested block), string and
//! character literals (including raw and byte strings) while preserving
//! line structure — then strips `#[cfg(test)]` regions by brace matching,
//! and only then applies substring rules. That keeps the tool dependency-
//! free (no rustc libs in this offline workspace) while avoiding the
//! classic grep false positives on comments, doc examples and test code.
//!
//! Findings can be suppressed through an allowlist file (default
//! `lint.allow` at the workspace root) of `<rule> <path-prefix>` lines;
//! `--deny` turns any unallowed finding into a non-zero exit.
//!
//! The `crates/simtime` crate is exempt from the `sleep` and `wall-clock`
//! rules by construction: it *is* the timebase, so its `SystemClock` must
//! touch the real clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod verify;

use std::fmt;
use std::path::{Path, PathBuf};

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LintRule {
    /// `std::thread::sleep` in library code.
    Sleep,
    /// `std::sync` locking primitives instead of `parking_lot`.
    StdSync,
    /// Wall-clock reads bypassing `simtime`.
    WallClock,
    /// `.unwrap()` / `.expect(` outside tests.
    Unwrap,
    /// Potential ABBA lock inversion (cond-verify lock-order pass).
    LockOrder,
    /// Violation of a declared `never-hold(<lock>) across <fn>`
    /// discipline (cond-verify lock-order pass).
    NeverHold,
    /// Leaked message custody (cond-verify custody pass).
    Custody,
    /// Emission missing from its declared registry (cond-verify
    /// registry pass).
    Registry,
}

/// Token-level rules, in reporting order (the cond-verify rules are
/// listed in [`VERIFY_RULES`] and produced by [`verify::run`]).
pub const ALL_RULES: [LintRule; 4] = [
    LintRule::Sleep,
    LintRule::StdSync,
    LintRule::WallClock,
    LintRule::Unwrap,
];

/// The inter-procedural cond-verify rules.
pub const VERIFY_RULES: [LintRule; 4] = [
    LintRule::LockOrder,
    LintRule::NeverHold,
    LintRule::Custody,
    LintRule::Registry,
];

impl LintRule {
    /// The rule's stable name, as used in allowlist files.
    pub fn name(self) -> &'static str {
        match self {
            LintRule::Sleep => "sleep",
            LintRule::StdSync => "std-sync",
            LintRule::WallClock => "wall-clock",
            LintRule::Unwrap => "unwrap",
            LintRule::LockOrder => "lock-order",
            LintRule::NeverHold => "never-hold",
            LintRule::Custody => "custody",
            LintRule::Registry => "registry",
        }
    }

    /// Parses an allowlist rule name (`*` is not a rule; see
    /// [`Allowlist`]).
    pub fn parse(name: &str) -> Option<LintRule> {
        ALL_RULES
            .into_iter()
            .chain(VERIFY_RULES)
            .find(|r| r.name() == name)
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Crate library code: all rules apply.
    Library,
    /// Binary / example entry points (`src/bin`, `main.rs`, `build.rs`):
    /// panicking and real-time reads are accepted, `std-sync` still
    /// applies.
    App,
    /// Test and bench code (`tests/`, `benches/` directories): exempt.
    Test,
}

/// Classifies `path` (workspace-relative, `/`-separated).
pub fn classify(path: &str) -> FileClass {
    let components: Vec<&str> = path.split('/').collect();
    if components
        .iter()
        .any(|c| *c == "tests" || *c == "benches")
    {
        return FileClass::Test;
    }
    let file = components.last().copied().unwrap_or("");
    if components.iter().any(|c| *c == "bin" || *c == "examples")
        || file == "main.rs"
        || file == "build.rs"
    {
        return FileClass::App;
    }
    FileClass::Library
}

/// Whether `rule` applies to a file of class `class` at `path`.
pub fn rule_applies(rule: LintRule, class: FileClass, path: &str) -> bool {
    // simtime implements the clock abstraction itself: it must sleep and
    // read the real clock.
    if path.starts_with("crates/simtime/") && matches!(rule, LintRule::Sleep | LintRule::WallClock)
    {
        return false;
    }
    match class {
        FileClass::Test => false,
        FileClass::App => matches!(rule, LintRule::StdSync),
        FileClass::Library => true,
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: LintRule,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

// ---------------------------------------------------------------- cleaning

/// Blanks comments and string/char literals from Rust source, preserving
/// line structure, so substring rules cannot fire inside them.
///
/// Handles line comments, nested block comments, plain/byte strings with
/// escapes, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`), char literals,
/// and tells lifetimes (`'a`) apart from char literals (`'a'`).
pub fn clean_source(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;

    // Emits `c` verbatim if it is a newline, otherwise a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < chars.len() {
        let c = chars[i];
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                blank(&mut out, chars[i]);
                i += 1;
            }
            continue;
        }
        // Nested block comment.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte-raw strings: r"…", r#"…"#, br##"…"##.
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"')
                && !prev_is_ident(&chars, i)
            {
                // Emit the prefix as-is, blank the body.
                for &p in &chars[i..=j] {
                    out.push(p);
                }
                i = j + 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for &p in &chars[i..=i + hashes] {
                                out.push(p);
                            }
                            i += hashes + 1;
                            break 'raw;
                        }
                    }
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Plain / byte strings.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < chars.len() {
                if chars[i] == '\\' {
                    blank(&mut out, chars[i]);
                    if i + 1 < chars.len() {
                        blank(&mut out, chars[i + 1]);
                    }
                    i += 2;
                } else if chars[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = match chars.get(i + 1) {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                out.push('\'');
                i += 1;
                while i < chars.len() {
                    if chars[i] == '\\' {
                        blank(&mut out, chars[i]);
                        if i + 1 < chars.len() {
                            blank(&mut out, chars[i + 1]);
                        }
                        i += 2;
                    } else if chars[i] == '\'' {
                        out.push('\'');
                        i += 1;
                        break;
                    } else {
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

// ----------------------------------------------------------- test regions

/// Blanks every `#[cfg(test)]`-gated item (typically `mod tests { … }`)
/// from *cleaned* source, preserving line structure, so the rules only see
/// production code.
pub fn strip_test_regions(cleaned: &str) -> String {
    const MARKER: &str = "#[cfg(test)]";
    let mut out: Vec<char> = cleaned.chars().collect();
    let mut search_from = 0usize;
    loop {
        let hay: String = out[search_from..].iter().collect();
        let Some(rel) = hay.find(MARKER) else { break };
        // `find` returns a byte offset into a string of 1-byte chars here?
        // Not necessarily: cleaned text retains non-ASCII identifiers.
        // Recompute as a char offset.
        let rel_chars = hay[..rel].chars().count();
        let start = search_from + rel_chars;
        let mut i = start + MARKER.chars().count();
        // Skip following attributes and whitespace to the item itself.
        loop {
            while i < out.len() && out[i].is_whitespace() {
                i += 1;
            }
            if out.get(i) == Some(&'#') && out.get(i + 1) == Some(&'[') {
                let mut depth = 0usize;
                while i < out.len() {
                    match out[i] {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // Consume the item: to the matching `}` of its first top-level
        // brace, or to `;` for brace-less items.
        let mut brace_depth = 0usize;
        let mut entered = false;
        while i < out.len() {
            match out[i] {
                '{' => {
                    brace_depth += 1;
                    entered = true;
                }
                '}' => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if entered && brace_depth == 0 {
                        i += 1;
                        break;
                    }
                }
                ';' if !entered => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let end = i.min(out.len());
        for cell in &mut out[start..end] {
            if *cell != '\n' {
                *cell = ' ';
            }
        }
        search_from = i;
    }
    out.into_iter().collect()
}

// ----------------------------------------------------------------- rules

/// Applies the substring rules to one file's cleaned, test-stripped text.
pub fn scan_text(path: &str, text: &str) -> Vec<Finding> {
    let class = classify(path);
    let mut findings = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for rule in ALL_RULES {
            if !rule_applies(rule, class, path) {
                continue;
            }
            if line_matches(rule, line) {
                findings.push(Finding {
                    rule,
                    path: path.to_owned(),
                    line: idx + 1,
                    snippet: String::new(), // filled in from the raw source
                });
            }
        }
    }
    findings
}

fn line_matches(rule: LintRule, line: &str) -> bool {
    match rule {
        LintRule::Sleep => line.contains("std::thread::sleep") || line.contains("thread::sleep("),
        LintRule::StdSync => {
            if let Some(pos) = line.find("std::sync::") {
                let rest = &line[pos + "std::sync::".len()..];
                if rest.starts_with("Mutex")
                    || rest.starts_with("RwLock")
                    || rest.starts_with("Condvar")
                {
                    return true;
                }
                // `use std::sync::{Arc, Mutex};` — look inside the group.
                if let Some(group) = rest.strip_prefix('{') {
                    let group = group.split('}').next().unwrap_or(group);
                    return group.split(',').any(|item| {
                        let item = item.trim();
                        item.starts_with("Mutex")
                            || item.starts_with("RwLock")
                            || item.starts_with("Condvar")
                    });
                }
            }
            false
        }
        LintRule::WallClock => {
            line.contains("SystemTime::now") || line.contains("Instant::now")
        }
        LintRule::Unwrap => {
            if line.contains(".unwrap()") {
                return true;
            }
            // `.expect(` — but not a method named `expect` called on
            // `self` (e.g. a recursive-descent parser's token matcher).
            line.match_indices(".expect(").any(|(pos, _)| {
                let recv = &line[..pos];
                let is_self = recv.ends_with("self")
                    && !recv[..recv.len() - 4]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                !is_self
            })
        }
        // Verify rules are produced by the `verify` passes, never by the
        // token scan.
        LintRule::LockOrder | LintRule::NeverHold | LintRule::Custody | LintRule::Registry => {
            false
        }
    }
}

/// Cleans `src`, strips test regions, scans it, and fills snippets from
/// the original source.
pub fn scan_file(path: &str, src: &str) -> Vec<Finding> {
    let prepared = strip_test_regions(&clean_source(src));
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = scan_text(path, &prepared);
    for f in &mut findings {
        f.snippet = raw_lines
            .get(f.line - 1)
            .map(|l| l.trim().to_owned())
            .unwrap_or_default();
    }
    findings
}

// -------------------------------------------------------------- allowlist

/// A parsed allowlist: `<rule-or-*> <path-prefix>` lines, `#` comments.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(Option<LintRule>, String)>,
}

impl Allowlist {
    /// Parses allowlist text.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line (unknown rule
    /// name or missing path).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
                return Err(format!("allowlist line {}: missing path prefix", idx + 1));
            };
            let rule = if rule == "*" {
                None
            } else {
                Some(
                    LintRule::parse(rule)
                        .ok_or_else(|| format!("allowlist line {}: unknown rule `{rule}`", idx + 1))?,
                )
            };
            entries.push((rule, path.to_owned()));
        }
        Ok(Allowlist { entries })
    }

    /// Whether `finding` is covered by an entry.
    pub fn allows(&self, finding: &Finding) -> bool {
        self.entries.iter().any(|(rule, prefix)| {
            rule.is_none_or(|r| r == finding.rule) && finding.path.starts_with(prefix)
        })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ------------------------------------------------------------------ walk

/// Collects the workspace-relative paths of the `.rs` files to lint under
/// `root`: everything except `vendor/`, `target/` and hidden directories.
///
/// # Errors
///
/// Propagates filesystem errors from directory traversal.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "vendor" || name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every eligible file under `root`, returning all findings (the
/// caller applies the allowlist).
///
/// # Errors
///
/// Propagates filesystem errors from traversal or reads.
pub fn run(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        findings.extend(scan_file(&rel, &src));
    }
    Ok(findings)
}

/// Runs the token scan *and* the cond-verify inter-procedural passes,
/// returning the merged findings sorted by (path, line, rule) so output
/// is deterministic across filesystems.
///
/// # Errors
///
/// Propagates filesystem errors from traversal or reads.
pub fn run_all(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = run(root)?;
    findings.extend(verify::run(root)?);
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule.name()).cmp(&(b.path.as_str(), b.line, b.rule.name()))
    });
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---------------------------------------------------- classification

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/mq/src/queue.rs"), FileClass::Library);
        assert_eq!(classify("crates/core/src/lib.rs"), FileClass::Library);
        assert_eq!(classify("tests/properties.rs"), FileClass::Test);
        assert_eq!(classify("crates/mq/benches/bench.rs"), FileClass::Test);
        assert_eq!(
            classify("crates/bench/src/bin/exp_fig6_overhead.rs"),
            FileClass::App
        );
        assert_eq!(classify("examples/quickstart.rs"), FileClass::App);
        assert_eq!(classify("crates/lint/src/main.rs"), FileClass::App);
    }

    #[test]
    fn journal_module_is_fully_linted() {
        // The group-commit flusher must park on a condvar, never poll: the
        // sleep rule (and every other library rule) has to cover the
        // journal module's files, while the throughput bench stays App.
        for p in [
            "crates/mq/src/journal/mod.rs",
            "crates/mq/src/journal/file.rs",
            "crates/mq/src/journal/group.rs",
            "crates/mq/src/shard.rs",
        ] {
            assert_eq!(classify(p), FileClass::Library, "{p}");
            for rule in [
                LintRule::Sleep,
                LintRule::StdSync,
                LintRule::WallClock,
                LintRule::Unwrap,
            ] {
                assert!(rule_applies(rule, classify(p), p), "{rule:?} must cover {p}");
            }
        }
        assert_eq!(classify("crates/bench/src/bin/exp_journal.rs"), FileClass::App);
    }

    #[test]
    fn transport_module_is_fully_linted() {
        // The TCP supervisor/acceptor must park on condvars and socket
        // read-timeouts, never thread::sleep, and stay panic-free: every
        // library rule has to cover the transport module's files, while
        // its bench stays App. (The accepted wall-clock exception — the
        // per-batch latency histogram — is documented in lint.allow.)
        for p in [
            "crates/mq/src/transport/mod.rs",
            "crates/mq/src/transport/frame.rs",
            "crates/mq/src/transport/tcp.rs",
        ] {
            assert_eq!(classify(p), FileClass::Library, "{p}");
            for rule in [
                LintRule::Sleep,
                LintRule::StdSync,
                LintRule::WallClock,
                LintRule::Unwrap,
            ] {
                assert!(rule_applies(rule, classify(p), p), "{rule:?} must cover {p}");
            }
        }
        assert_eq!(classify("crates/bench/src/bin/exp_tcp.rs"), FileClass::App);
    }

    #[test]
    fn relay_module_is_fully_linted() {
        // The relay seam sits on the hot delivery path of every transport:
        // it must stay panic-free, condvar-parked and sim-clocked, with
        // zero lint.allow entries of its own — every library rule covers
        // it in full, while its experiment binary stays App.
        let p = "crates/mq/src/relay.rs";
        assert_eq!(classify(p), FileClass::Library);
        for rule in [
            LintRule::Sleep,
            LintRule::StdSync,
            LintRule::WallClock,
            LintRule::Unwrap,
        ] {
            assert!(rule_applies(rule, classify(p), p), "{rule:?} must cover {p}");
        }
        assert_eq!(
            classify("crates/bench/src/bin/exp_federation.rs"),
            FileClass::App
        );
    }

    #[test]
    fn store_module_is_fully_linted() {
        // The storage inversion made these the primary store: the message
        // store's indexes and the segmented journal's roll/checkpoint/
        // truncate machinery must stay panic-free, std::sync-free and
        // sim-clocked — every library rule covers them in full, while the
        // storage experiment binary stays App.
        for p in [
            "crates/mq/src/store.rs",
            "crates/mq/src/journal/segment.rs",
        ] {
            assert_eq!(classify(p), FileClass::Library, "{p}");
            for rule in [
                LintRule::Sleep,
                LintRule::StdSync,
                LintRule::WallClock,
                LintRule::Unwrap,
            ] {
                assert!(rule_applies(rule, classify(p), p), "{rule:?} must cover {p}");
            }
        }
        assert_eq!(classify("crates/bench/src/bin/exp_store.rs"), FileClass::App);
    }

    #[test]
    fn scenario_crate_is_fully_linted() {
        // The scenario engine drives crash-and-rebuild and fault
        // schedules against live managers: its executor must park on
        // condvars (the Pacer), never sleep-poll, stay panic-free, and
        // read only the scenario clock — every library rule covers the
        // whole crate with zero lint.allow entries, while its experiment
        // binary stays App.
        for p in [
            "crates/scenario/src/lib.rs",
            "crates/scenario/src/toml.rs",
            "crates/scenario/src/spec.rs",
            "crates/scenario/src/compile.rs",
            "crates/scenario/src/exec.rs",
            "crates/scenario/src/oracle.rs",
            "crates/scenario/src/pacer.rs",
            "crates/scenario/src/error.rs",
        ] {
            assert_eq!(classify(p), FileClass::Library, "{p}");
            for rule in [
                LintRule::Sleep,
                LintRule::StdSync,
                LintRule::WallClock,
                LintRule::Unwrap,
            ] {
                assert!(rule_applies(rule, classify(p), p), "{rule:?} must cover {p}");
            }
        }
        assert_eq!(
            classify("crates/bench/src/bin/exp_scenario.rs"),
            FileClass::App
        );
    }

    #[test]
    fn simtime_exempt_from_time_rules_only() {
        let p = "crates/simtime/src/lib.rs";
        assert!(!rule_applies(LintRule::Sleep, classify(p), p));
        assert!(!rule_applies(LintRule::WallClock, classify(p), p));
        assert!(rule_applies(LintRule::Unwrap, classify(p), p));
        assert!(rule_applies(LintRule::StdSync, classify(p), p));
    }

    // --------------------------------------------------------- cleaning

    #[test]
    fn cleaning_blanks_comments_and_strings() {
        let src = r#"let x = "std::thread::sleep"; // std::thread::sleep
/* std::thread::sleep /* nested */ still comment */
let y = 1;"#;
        let cleaned = clean_source(src);
        assert!(!cleaned.contains("sleep"), "{cleaned}");
        assert!(cleaned.contains("let y = 1;"));
        assert_eq!(cleaned.lines().count(), src.lines().count());
    }

    #[test]
    fn cleaning_handles_raw_strings_and_chars() {
        let src = "let s = r#\"Instant::now()\"#; let c = '\"'; let l: &'static str = x; Instant::now();";
        let cleaned = clean_source(src);
        // The literal content is blanked, the real call survives.
        assert_eq!(cleaned.matches("Instant::now").count(), 1);
        assert!(cleaned.contains("&'static str"));
    }

    #[test]
    fn cleaning_handles_escaped_quote_in_string() {
        let src = r#"let s = "a\"b.unwrap()c"; s.len();"#;
        let cleaned = clean_source(src);
        assert!(!cleaned.contains(".unwrap()"));
        assert!(cleaned.contains("s.len();"));
    }

    // ----------------------------------------------------- test regions

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\nfn tail() {}\n";
        let stripped = strip_test_regions(clean_source(src).as_str());
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("pub fn f()"));
        assert!(stripped.contains("fn tail()"));
        assert_eq!(stripped.lines().count(), src.lines().count());
    }

    #[test]
    fn cfg_test_with_extra_attribute_is_stripped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests { fn g() { x.unwrap(); } }\nfn keep() {}\n";
        let stripped = strip_test_regions(clean_source(src).as_str());
        assert!(!stripped.contains("unwrap"));
        assert!(stripped.contains("fn keep()"));
    }

    // ------------------------------------------------------------ rules

    #[test]
    fn sleep_rule_fires_in_library_code() {
        let f = scan_file("crates/x/src/lib.rs", "fn f() { std::thread::sleep(d); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, LintRule::Sleep);
        assert_eq!(f[0].line, 1);
        assert!(f[0].snippet.contains("std::thread::sleep"));
    }

    #[test]
    fn sleep_rule_silent_in_tests_and_comments() {
        assert!(scan_file("tests/t.rs", "fn f() { std::thread::sleep(d); }").is_empty());
        assert!(scan_file("crates/x/src/lib.rs", "// std::thread::sleep(d);").is_empty());
        let in_mod =
            "fn ok() {}\n#[cfg(test)]\nmod tests { fn f() { std::thread::sleep(d); } }\n";
        assert!(scan_file("crates/x/src/lib.rs", in_mod).is_empty());
    }

    #[test]
    fn std_sync_rule_fires_on_direct_and_grouped_use() {
        let direct = scan_file("crates/x/src/a.rs", "use std::sync::Mutex;");
        assert_eq!(direct.len(), 1);
        assert_eq!(direct[0].rule, LintRule::StdSync);
        let grouped = scan_file("crates/x/src/a.rs", "use std::sync::{Arc, RwLock};");
        assert_eq!(grouped.len(), 1);
        let qualified = scan_file("crates/x/src/a.rs", "let m = std::sync::Condvar::new();");
        assert_eq!(qualified.len(), 1);
    }

    #[test]
    fn std_sync_rule_accepts_arc_atomics_and_mpsc() {
        assert!(scan_file("crates/x/src/a.rs", "use std::sync::Arc;").is_empty());
        assert!(scan_file("crates/x/src/a.rs", "use std::sync::{Arc, mpsc};").is_empty());
        assert!(
            scan_file("crates/x/src/a.rs", "use std::sync::atomic::AtomicBool;").is_empty()
        );
    }

    #[test]
    fn std_sync_rule_applies_to_app_code_too() {
        let f = scan_file("crates/bench/src/bin/exp.rs", "use std::sync::Mutex;");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn wall_clock_rule_fires_in_library_not_app() {
        let lib = scan_file("crates/x/src/a.rs", "let t = Instant::now();");
        assert_eq!(lib.len(), 1);
        assert_eq!(lib[0].rule, LintRule::WallClock);
        let sys = scan_file("crates/x/src/a.rs", "let t = SystemTime::now();");
        assert_eq!(sys.len(), 1);
        assert!(scan_file("crates/x/src/bin/b.rs", "let t = Instant::now();").is_empty());
    }

    #[test]
    fn unwrap_rule_fires_on_unwrap_and_expect() {
        let f = scan_file(
            "crates/x/src/a.rs",
            "let a = x.unwrap();\nlet b = y.expect(\"reason\");\n",
        );
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == LintRule::Unwrap));
        assert!(scan_file("tests/t.rs", "x.unwrap();").is_empty());
    }

    #[test]
    fn unwrap_rule_ignores_expect_method_on_self() {
        // A recursive-descent parser's own `expect` token matcher is not
        // `Option::expect`.
        assert!(scan_file(
            "crates/x/src/a.rs",
            "self.expect(&TokenKind::Comma, \"','\")?;"
        )
        .is_empty());
        // …but `Option::expect` on another receiver still fires.
        assert_eq!(
            scan_file("crates/x/src/a.rs", "herself.expect(\"present\");").len(),
            1
        );
    }

    // -------------------------------------------------------- allowlist

    #[test]
    fn allowlist_matches_rule_and_prefix() {
        let list = Allowlist::parse(
            "# wall-clock waits on real time here\nwall-clock crates/mq/src/queue.rs\n* crates/legacy/\n",
        )
        .unwrap();
        assert_eq!(list.len(), 2);
        let hit = Finding {
            rule: LintRule::WallClock,
            path: "crates/mq/src/queue.rs".into(),
            line: 1,
            snippet: String::new(),
        };
        assert!(list.allows(&hit));
        let wrong_rule = Finding {
            rule: LintRule::Unwrap,
            ..hit.clone()
        };
        assert!(!list.allows(&wrong_rule));
        let wildcard = Finding {
            rule: LintRule::Unwrap,
            path: "crates/legacy/src/old.rs".into(),
            line: 1,
            snippet: String::new(),
        };
        assert!(list.allows(&wildcard));
        let other_file = Finding {
            rule: LintRule::WallClock,
            path: "crates/mq/src/session.rs".into(),
            line: 1,
            snippet: String::new(),
        };
        assert!(!list.allows(&other_file));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("wall-clock").is_err());
        assert!(Allowlist::parse("no-such-rule crates/x/").is_err());
        assert!(Allowlist::parse("").unwrap().is_empty());
    }
}
