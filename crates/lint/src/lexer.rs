//! Token lexer for the `cond-verify` passes.
//!
//! Unlike [`crate::clean_source`] (which blanks literals so substring
//! rules cannot fire inside them), this lexer *tokenizes* the source:
//! the registry pass needs the actual values of string and integer
//! literals, and the parser needs identifier/punctuation structure.
//!
//! Correctness notes the fixture corpus pins down:
//! * `//` inside a string literal (URLs!) is **not** a comment start —
//!   plain, raw (`r"…"`, `r#"…"#`), and byte (`b"…"`, `br"…"`) strings
//!   are consumed as single tokens, as are char/byte-char literals.
//! * Lifetimes (`'a`) are distinguished from char literals (`'a'`).
//! * `// lint: …` comments are captured as [`Annotation`]s instead of
//!   being discarded; every other comment (line, doc, nested block) is
//!   skipped.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `self`, `fn`, `impl`, …).
    Ident(String),
    /// Lifetime or loop label (without the leading `'`).
    Lifetime(String),
    /// Integer literal value (suffix and `_` separators stripped).
    /// Floats and integers too large for `u64` lex as [`Tok::Num`].
    Int(u64),
    /// Numeric literal whose exact value the passes do not need.
    Num,
    /// String literal (plain/byte: escapes cooked; raw: body verbatim).
    Str(String),
    /// Char or byte-char literal.
    Char,
    /// Single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A captured `// lint: …` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-based source line the comment appears on.
    pub line: u32,
    /// The text after `lint:`, trimmed.
    pub text: String,
}

/// Lexes `src` into tokens and captured lint annotations.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Annotation>) {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
        annotations: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    tokens: Vec<Token>,
    annotations: Vec<Annotation>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.tokens.push(Token { tok, line });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Annotation>) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.bump();
                let s = self.plain_string();
                self.push(Tok::Str(s), line);
            } else if c == '\'' {
                self.char_or_lifetime(line);
            } else if c.is_ascii_digit() {
                self.number(line);
            } else if c.is_alphanumeric() || c == '_' {
                self.ident_or_prefixed_literal(line);
            } else {
                self.bump();
                self.push(Tok::Punct(c), line);
            }
        }
        (self.tokens, self.annotations)
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `// lint: …` (any number of slashes tolerated, doc comments too).
        let body = text.trim_start_matches('/').trim_start();
        if let Some(rest) = body.strip_prefix("lint:") {
            self.annotations.push(Annotation {
                line,
                text: rest.trim().to_owned(),
            });
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while self.i < self.chars.len() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a plain/byte string body after the opening quote,
    /// returning the cooked value (simple escapes resolved, unknown
    /// escapes kept verbatim without the backslash).
    fn plain_string(&mut self) -> String {
        let mut value = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('0') => value.push('\0'),
                    Some(other) => value.push(other), // \\ \" \' and the rest
                    None => break,
                },
                other => value.push(other),
            }
        }
        value
    }

    /// Consumes a raw string body after `r#*"`, returning it verbatim.
    fn raw_string(&mut self, hashes: usize) -> String {
        let mut value = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut k = 0;
                while k < hashes && self.peek(k) == Some('#') {
                    k += 1;
                }
                if k == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            value.push(c);
        }
        value
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a'` / `'\n'` / `'\u{…}'` are chars; `'a` / `'static` are
        // lifetimes or labels.
        let is_char = match self.peek(1) {
            Some('\\') => true,
            Some(_) => self.peek(2) == Some('\''),
            None => false,
        };
        self.bump(); // the quote
        if is_char {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(Tok::Char, line);
        } else {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Tok::Lifetime(name), line);
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let digits: String = text.chars().filter(|c| *c != '_').collect();
            match u64::from_str_radix(&digits, 16) {
                Ok(v) => self.push(Tok::Int(v), line),
                Err(_) => self.push(Tok::Num, line),
            }
            self.eat_numeric_suffix();
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // A fractional part or exponent makes it a float (but `1..n` is a
        // range, not a float).
        let mut is_float = false;
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if matches!(self.peek(0), Some('e') | Some('E'))
            && self
                .peek(1)
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
        {
            is_float = true;
            self.bump();
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if is_float {
            self.push(Tok::Num, line);
        } else {
            let digits: String = text.chars().filter(|c| *c != '_').collect();
            match digits.parse::<u64>() {
                Ok(v) => self.push(Tok::Int(v), line),
                Err(_) => self.push(Tok::Num, line),
            }
        }
        self.eat_numeric_suffix();
    }

    fn eat_numeric_suffix(&mut self) {
        // `64u64`, `1.5f32` — the suffix is part of the literal, not an
        // identifier token.
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"…" / r#"…"# / b"…" / br#"…"# — but
        // only when the ident is exactly the prefix (so `for`, `br0ken`
        // and raw identifiers like `r#type` stay identifiers).
        let is_raw = name == "r" || name == "br";
        let is_byte = name == "b" || name == "br";
        if is_raw || is_byte {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                if is_raw || hashes > 0 {
                    for _ in 0..=hashes {
                        self.bump(); // hashes + opening quote
                    }
                    let s = self.raw_string(hashes);
                    self.push(Tok::Str(s), line);
                } else {
                    self.bump(); // opening quote of b"…"
                    let s = self.plain_string();
                    self.push(Tok::Str(s), line);
                }
                return;
            }
            if name == "b" && self.peek(0) == Some('\'') {
                // Byte-char literal b'x'.
                self.bump();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(Tok::Char, line);
                return;
            }
        }
        self.push(Tok::Ident(name), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).0.into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn url_in_string_is_not_a_comment() {
        // The satellite regression: `//` inside a string literal must not
        // start a comment and swallow the rest of the line.
        let t = toks(r#"let u = "https://example.com"; x.unwrap();"#);
        assert!(t.contains(&Tok::Str("https://example.com".into())));
        assert!(t.contains(&Tok::Ident("unwrap".into())), "{t:?}");
    }

    #[test]
    fn raw_and_byte_strings_keep_slashes_inside() {
        let t = toks(r##"let a = r#"//raw"#; let b = b"//bytes"; tail();"##);
        assert!(t.contains(&Tok::Str("//raw".into())));
        assert!(t.contains(&Tok::Str("//bytes".into())));
        assert!(t.contains(&Tok::Ident("tail".into())));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let t = toks("let c: &'static str = f('/', '\\n', 'x');");
        assert_eq!(t.iter().filter(|t| **t == Tok::Char).count(), 3);
        assert!(t.contains(&Tok::Lifetime("static".into())));
    }

    #[test]
    fn escaped_quotes_and_backslashes() {
        let t = toks(r#"let p = "dir\\"; let q = "say \"hi\""; done();"#);
        assert!(t.contains(&Tok::Str("dir\\".into())));
        assert!(t.contains(&Tok::Str("say \"hi\"".into())));
        assert!(t.contains(&Tok::Ident("done".into())));
    }

    #[test]
    fn lint_annotations_are_captured() {
        let (_, anns) = lex("// lint: custody(msg)\nfn f() {}\n// not lint\n");
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].line, 1);
        assert_eq!(anns[0].text, "custody(msg)");
    }

    #[test]
    fn ints_parse_and_floats_do_not_break_ranges() {
        let t = toks("put_u8(6); cap(0x10); for i in 0..16 {} let f = 1.5;");
        assert!(t.contains(&Tok::Int(6)));
        assert!(t.contains(&Tok::Int(16)));
        assert!(t.contains(&Tok::Int(0)));
        assert!(t.contains(&Tok::Num));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let t = toks("let r = r#type; br0ken();");
        assert!(t.contains(&Tok::Ident("r".into())));
        assert!(t.contains(&Tok::Ident("br0ken".into())));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let (tokens, _) = lex("a\n\"two\nlines\"\nb");
        let b = tokens.iter().find(|t| t.tok == Tok::Ident("b".into())).map(|t| t.line);
        assert_eq!(b, Some(4));
    }
}
