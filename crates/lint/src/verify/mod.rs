//! cond-verify: inter-procedural static analysis passes.
//!
//! Three passes run over the parsed workspace (see [`crate::parser`]):
//!
//! * [`lockorder`] — propagates held-lock sets through the call graph,
//!   reporting potential ABBA inversions and violations of declared
//!   `// lint: never-hold(<lock>) across <fn>` disciplines, with both
//!   acquisition sites in each diagnostic.
//! * [`custody`] — checks that functions annotated
//!   `// lint: custody(<var>)` move their message to exactly one
//!   terminal on every path (deliver, dead-letter, journaled handoff,
//!   or rollback), flagging early returns / `?` exits that leak it.
//! * [`registry`] — checks every emitted metric name, trace stage,
//!   journal record tag, and frame kind against its single declared
//!   `// lint: registry <kind>` registry, and scans `scenarios/*.toml`
//!   so every `metric = "…"` / `stage = "…"` a scenario oracle asserts
//!   on names something the observability layer actually emits.
//!
//! The annotation grammar and the soundness caveats of the lightweight
//! parser are documented in DESIGN.md §14.

pub mod custody;
pub mod lockorder;
pub mod registry;

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;

use crate::parser::{parse_file, Call, FnDef, ParsedFile, Recv};
use crate::{classify, collect_files, FileClass, Finding};

/// Methods that acquire a lock when called on a lock-typed field (or on
/// an accessor annotated `returns-lock`).
pub const LOCK_METHODS: &[&str] = &[
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "upgradable_read",
    "lock_key",
    "write_all",
];

/// Wrapper type names skipped when extracting the core type of a field
/// or return-type string.
const TYPE_WRAPPERS: &[&str] = &[
    "Arc", "Box", "Rc", "Weak", "RefCell", "Cell", "Option", "Result", "MqResult", "CondResult",
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "BinaryHeap", "Mutex",
    "RwLock", "Reverse", "PhantomData", "io", "std", "crate", "dyn", "mut", "Self",
];

/// Index of a function in [`Workspace::fns`].
pub type FnId = usize;

/// A declared never-hold discipline.
#[derive(Debug)]
pub struct NeverHold {
    /// Canonical lock id (`Owner.field`).
    pub lock: String,
    /// Function name that must not be reached while the lock is held.
    pub target: String,
    /// File the annotation lives in.
    pub path: String,
    /// Line of the annotation.
    pub line: u32,
}

/// The resolved core type of an expression/field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// A workspace struct/enum.
    Concrete(String),
    /// A `dyn Trait` object.
    Dyn(String),
    /// Resolved to a type that is not defined in this workspace (e.g.
    /// `std::fs::File`): its methods are definitely not workspace
    /// functions, so no name-only fallback applies.
    Foreign,
    /// Not resolvable.
    Unknown,
}

/// Parsed workspace plus derived resolution tables.
pub struct Workspace {
    /// Parsed files (non-test only).
    pub files: Vec<ParsedFile>,
    /// All functions, flattened.
    pub fns: Vec<FnDef>,
    /// Struct name → field table.
    pub fields: HashMap<String, HashMap<String, String>>,
    /// Known type names (structs + enums).
    pub types: HashSet<String>,
    /// Trait → implementing types.
    pub impls_of_trait: HashMap<String, Vec<String>>,
    /// (owner, method) → fn ids.
    pub by_owner: HashMap<(String, String), Vec<FnId>>,
    /// method name → fn ids with a body.
    pub by_name: HashMap<String, Vec<FnId>>,
    /// free fn name → fn ids.
    pub free_by_name: HashMap<String, Vec<FnId>>,
    /// trait name → default-method fn ids.
    pub trait_defaults: HashMap<(String, String), Vec<FnId>>,
    /// Declared never-hold disciplines.
    pub never_holds: Vec<NeverHold>,
    /// Lock alias map (alias → canonical).
    pub aliases: HashMap<String, String>,
    /// path → lines carrying a `custody-ok` annotation.
    pub custody_ok: HashMap<String, HashSet<u32>>,
}

impl Workspace {
    /// Builds the workspace from parsed files.
    pub fn build(files: Vec<ParsedFile>) -> Self {
        let mut ws = Workspace {
            files: Vec::new(),
            fns: Vec::new(),
            fields: HashMap::new(),
            types: HashSet::new(),
            impls_of_trait: HashMap::new(),
            by_owner: HashMap::new(),
            by_name: HashMap::new(),
            free_by_name: HashMap::new(),
            trait_defaults: HashMap::new(),
            never_holds: Vec::new(),
            aliases: HashMap::new(),
            custody_ok: HashMap::new(),
        };
        for f in &files {
            for s in &f.structs {
                ws.types.insert(s.name.clone());
                let entry = ws.fields.entry(s.name.clone()).or_default();
                for (n, t) in &s.fields {
                    entry.insert(n.clone(), t.clone());
                }
            }
            for (tr, ty) in &f.trait_impls {
                ws.impls_of_trait.entry(tr.clone()).or_default().push(ty.clone());
            }
            for ann in &f.annotations {
                if let Some(rest) = ann.text.strip_prefix("never-hold(") {
                    if let Some(close) = rest.find(')') {
                        let lock = rest[..close].trim().to_owned();
                        let after = rest[close + 1..].trim();
                        if let Some(target) = after.strip_prefix("across ") {
                            ws.never_holds.push(NeverHold {
                                lock,
                                target: target.trim().to_owned(),
                                path: f.path.clone(),
                                line: ann.line,
                            });
                        }
                    }
                } else if let Some(rest) = ann.text.strip_prefix("lock-alias ") {
                    let mut parts = rest.split_whitespace();
                    if let (Some(a), Some(b)) = (parts.next(), parts.next()) {
                        ws.aliases.insert(a.to_owned(), b.to_owned());
                    }
                } else if ann.text.starts_with("custody-ok") {
                    ws.custody_ok.entry(f.path.clone()).or_default().insert(ann.line);
                }
            }
        }
        for f in files {
            for d in f.fns {
                let id = ws.fns.len();
                if let Some(owner) = &d.owner {
                    ws.by_owner.entry((owner.clone(), d.name.clone())).or_default().push(id);
                } else if let Some(tr) = &d.trait_name {
                    // Trait default method (owner unknown until dyn use).
                    ws.trait_defaults.entry((tr.clone(), d.name.clone())).or_default().push(id);
                } else {
                    ws.free_by_name.entry(d.name.clone()).or_default().push(id);
                }
                if d.body.is_some() {
                    ws.by_name.entry(d.name.clone()).or_default().push(id);
                }
                ws.fns.push(d);
            }
            ws.files.push(ParsedFile {
                path: f.path,
                structs: f.structs,
                traits: f.traits,
                trait_impls: f.trait_impls,
                fns: Vec::new(),
                registries: f.registries,
                sinks: f.sinks,
                annotations: f.annotations,
            });
        }
        // Canonicalize never-hold locks through aliases.
        for nh in &mut ws.never_holds {
            let mut lock = nh.lock.clone();
            let mut hops = 0;
            while let Some(next) = ws.aliases.get(&lock) {
                lock = next.clone();
                hops += 1;
                if hops > 4 {
                    break;
                }
            }
            nh.lock = lock;
        }
        ws
    }

    /// Resolves a lock id through the alias map.
    pub fn canon(&self, id: &str) -> String {
        let mut lock = id.to_owned();
        let mut hops = 0;
        while let Some(next) = self.aliases.get(&lock) {
            lock = next.clone();
            hops += 1;
            if hops > 4 {
                break;
            }
        }
        lock
    }

    /// Extracts the core workspace type from a type string.
    pub fn core_type(&self, ty: &str) -> TypeRef {
        let words: Vec<&str> = ty
            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
            .filter(|w| !w.is_empty())
            .collect();
        for (k, w) in words.iter().enumerate() {
            if *w == "dyn" {
                if let Some(next) = words.get(k + 1) {
                    return TypeRef::Dyn((*next).to_owned());
                }
            }
        }
        for w in &words {
            if TYPE_WRAPPERS.contains(w) {
                continue;
            }
            if self.types.contains(*w) {
                return TypeRef::Concrete((*w).to_owned());
            }
        }
        TypeRef::Unknown
    }

    /// Walks a field chain from `owner`, returning the last field's
    /// declared type string (and the type that declares it).
    pub fn field_chain(&self, owner: &str, fields: &[String]) -> Option<(String, String)> {
        let mut ty = owner.to_owned();
        let mut last: Option<(String, String)> = None;
        for f in fields {
            let ft = self.fields.get(&ty)?.get(f)?.clone();
            last = Some((ty.clone(), ft.clone()));
            ty = match self.core_type(&ft) {
                TypeRef::Concrete(t) => t,
                // A dyn/unknown mid-chain ends resolution unless this was
                // the final field.
                _ => String::new(),
            };
        }
        last
    }

    /// Methods on a resolved receiver type.
    fn methods_of(&self, t: &TypeRef, name: &str) -> Vec<FnId> {
        match t {
            TypeRef::Concrete(ty) => self
                .by_owner
                .get(&(ty.clone(), name.to_owned()))
                .cloned()
                .unwrap_or_default(),
            TypeRef::Dyn(tr) => {
                let mut out = Vec::new();
                if let Some(owners) = self.impls_of_trait.get(tr) {
                    for o in owners {
                        if let Some(ids) = self.by_owner.get(&(o.clone(), name.to_owned())) {
                            out.extend_from_slice(ids);
                        }
                    }
                }
                if out.is_empty() {
                    if let Some(ids) = self.trait_defaults.get(&(tr.clone(), name.to_owned())) {
                        out.extend_from_slice(ids);
                    }
                }
                out
            }
            TypeRef::Foreign | TypeRef::Unknown => Vec::new(),
        }
    }

    /// Fallback: all same-name methods if they share a single owner.
    fn fallback_unique(&self, name: &str) -> Vec<FnId> {
        let ids = match self.by_name.get(name) {
            Some(ids) => ids,
            None => return Vec::new(),
        };
        let mut owner: Option<&str> = None;
        for id in ids {
            match (&self.fns[*id].owner, owner) {
                (Some(o), None) => owner = Some(o),
                (Some(o), Some(prev)) if o == prev => {}
                _ => return Vec::new(),
            }
        }
        ids.clone()
    }

    /// Type of the receiver of `call` in `caller` (locals give inferred
    /// local-variable types).
    fn recv_type(&self, caller: &FnDef, call: &Call, locals: &HashMap<String, String>) -> TypeRef {
        match &call.recv {
            Recv::SelfChain(fields) if fields.is_empty() => match &caller.owner {
                Some(o) => TypeRef::Concrete(o.clone()),
                None => TypeRef::Unknown,
            },
            Recv::SelfChain(fields) => {
                let Some(owner) = &caller.owner else { return TypeRef::Unknown };
                match self.field_chain(owner, fields) {
                    Some((_, ft)) => match self.core_type(&ft) {
                        TypeRef::Unknown => TypeRef::Foreign,
                        t => t,
                    },
                    None => TypeRef::Unknown,
                }
            }
            Recv::Local(base, fields) => {
                let Some(bt) = locals.get(base) else { return TypeRef::Unknown };
                if fields.is_empty() {
                    TypeRef::Concrete(bt.clone())
                } else {
                    match self.field_chain(bt, fields) {
                        Some((_, ft)) => match self.core_type(&ft) {
                            TypeRef::Unknown => TypeRef::Foreign,
                            t => t,
                        },
                        None => TypeRef::Unknown,
                    }
                }
            }
            _ => TypeRef::Unknown,
        }
    }

    /// Resolves a call to candidate function definitions.
    pub fn resolve_call(
        &self,
        caller: &FnDef,
        call: &Call,
        locals: &HashMap<String, String>,
    ) -> Vec<FnId> {
        // Tuple-struct / enum constructors are not calls.
        if call.name.chars().next().is_some_and(char::is_uppercase) {
            return Vec::new();
        }
        match &call.recv {
            Recv::SelfChain(_) | Recv::Local(..) => {
                let t = self.recv_type(caller, call, locals);
                let ids = self.methods_of(&t, &call.name);
                if !ids.is_empty() {
                    return ids;
                }
                if matches!(t, TypeRef::Unknown) {
                    return self.fallback_unique(&call.name);
                }
                Vec::new()
            }
            Recv::Type(t) => {
                let ty = if t == "Self" {
                    caller.owner.clone().unwrap_or_default()
                } else {
                    t.clone()
                };
                if self.types.contains(&ty) {
                    return self.methods_of(&TypeRef::Concrete(ty), &call.name);
                }
                Vec::new()
            }
            Recv::Chained { prev } => {
                // Resolve the previous call (same-owner method first, then
                // unique name), then look up on its return core type.
                let prev_ids = match &caller.owner {
                    Some(o) => {
                        let ids = self
                            .by_owner
                            .get(&(o.clone(), prev.clone()))
                            .cloned()
                            .unwrap_or_default();
                        if ids.is_empty() { self.fallback_unique(prev) } else { ids }
                    }
                    None => self.fallback_unique(prev),
                };
                let mut out = Vec::new();
                for pid in prev_ids {
                    let rt = self.core_type(&self.fns[pid].ret);
                    out.extend(self.methods_of(&rt, &call.name));
                }
                out.sort_unstable();
                out.dedup();
                out
            }
            Recv::Free => {
                // Same-file free fns first, then workspace-unique free fn.
                if let Some(ids) = self.free_by_name.get(&call.name) {
                    let same_file: Vec<FnId> = ids
                        .iter()
                        .copied()
                        .filter(|id| self.fns[*id].path == caller.path)
                        .collect();
                    if !same_file.is_empty() {
                        return same_file;
                    }
                    if ids.len() == 1 {
                        return ids.clone();
                    }
                }
                Vec::new()
            }
            Recv::Opaque => Vec::new(),
        }
    }

    /// If `call` is a lock acquisition, returns the canonical lock id.
    pub fn lock_id_of(
        &self,
        caller: &FnDef,
        call: &Call,
        locals: &HashMap<String, String>,
    ) -> Option<String> {
        if !LOCK_METHODS.contains(&call.name.as_str()) {
            return None;
        }
        match &call.recv {
            Recv::SelfChain(fields) if !fields.is_empty() => {
                let owner = caller.owner.as_ref()?;
                let (declared_on, ft) = self.field_chain(owner, fields)?;
                if is_lock_type(&ft) {
                    Some(self.canon(&format!("{declared_on}.{}", fields.last()?)))
                } else {
                    None
                }
            }
            Recv::Local(base, fields) if !fields.is_empty() => {
                let bt = locals.get(base)?;
                let (declared_on, ft) = self.field_chain(bt, fields)?;
                if is_lock_type(&ft) {
                    Some(self.canon(&format!("{declared_on}.{}", fields.last()?)))
                } else {
                    None
                }
            }
            Recv::Chained { prev } => {
                // `self.accessor().read()` where the accessor is annotated
                // `// lint: returns-lock(<id>)`.
                let ids = match &caller.owner {
                    Some(o) => {
                        let ids = self
                            .by_owner
                            .get(&(o.clone(), prev.clone()))
                            .cloned()
                            .unwrap_or_default();
                        if ids.is_empty() { self.fallback_unique(prev) } else { ids }
                    }
                    None => self.fallback_unique(prev),
                };
                for id in ids {
                    for ann in &self.fns[id].anns {
                        if let Some(rest) = ann.strip_prefix("returns-lock(") {
                            if let Some(close) = rest.find(')') {
                                return Some(self.canon(rest[..close].trim()));
                            }
                        }
                    }
                }
                None
            }
            _ => None,
        }
    }
}

/// Whether a declared field type is a lock.
pub fn is_lock_type(ty: &str) -> bool {
    ty.contains("Mutex<") || ty.contains("RwLock<") || ty.contains("StripedMap<")
}

/// Runs all verify passes over the workspace rooted at `root`.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let files = collect_files(root)?;
    let mut parsed = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel) == FileClass::Test {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        parsed.push(parse_file(&rel, &src));
    }
    let ws = Workspace::build(parsed);
    let mut findings = Vec::new();
    findings.extend(lockorder::run(&ws));
    findings.extend(custody::run(&ws));
    findings.extend(registry::run(&ws));
    findings.extend(registry::scan_scenarios(root, &ws)?);
    Ok(findings)
}
