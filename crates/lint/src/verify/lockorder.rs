//! Lock-order pass: held-set propagation, ABBA detection, and declared
//! never-hold disciplines.
//!
//! The pass walks every function body tracking which locks are held
//! (sticky `let guard = ….lock();` bindings until scope end or
//! `drop(guard)`; other acquisitions as statement-scoped temporaries),
//! records a global ordering edge `A -> B` whenever `B` is acquired with
//! `A` held — directly or transitively through resolved calls — and
//! reports:
//!
//! * `lock-order`: lock pairs acquired in both orders (potential ABBA
//!   deadlock), with both acquisition sites, mirroring the runtime
//!   deadlock detector's output.
//! * `never-hold`: a call that can reach the function named in a
//!   `// lint: never-hold(<lock>) across <fn>` annotation while the
//!   lock is held.

use std::collections::{HashMap, HashSet};

use crate::parser::{Block, Event, FnDef, Stmt};
use crate::{Finding, LintRule};

use super::{FnId, TypeRef, Workspace};

#[derive(Debug, Clone)]
struct Site {
    path: String,
    line: u32,
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.path, self.line)
    }
}

#[derive(Debug, Clone)]
struct Held {
    lock: String,
    site: Site,
    guard: Option<String>,
}

/// An observed ordering edge: `to` acquired while `from` held.
struct Edge {
    hold: Site,
    acq: Site,
    via: Option<String>,
}

#[derive(Default)]
struct FnFacts {
    locals: HashMap<String, String>,
    /// Direct lock acquisitions (lock, line).
    direct: Vec<(String, u32)>,
    /// Resolved callees.
    callees: Vec<FnId>,
    /// All call names appearing in the body (resolved or not).
    names: HashSet<String>,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let ids: Vec<FnId> = (0..ws.fns.len()).collect();
    let mut facts: Vec<FnFacts> = Vec::with_capacity(ids.len());
    for id in &ids {
        facts.push(prewalk(ws, &ws.fns[*id]));
    }

    // Fixpoint: transitively acquired locks (with a representative site)
    // and transitively reachable call names.
    let mut trans: Vec<HashMap<String, Site>> = facts
        .iter()
        .zip(ws.fns.iter())
        .map(|(f, d)| {
            f.direct
                .iter()
                .map(|(l, ln)| (l.clone(), Site { path: d.path.clone(), line: *ln }))
                .collect()
        })
        .collect();
    let mut reach: Vec<HashSet<String>> = facts.iter().map(|f| f.names.clone()).collect();
    loop {
        let mut changed = false;
        for id in &ids {
            for callee in facts[*id].callees.clone() {
                let add: Vec<(String, Site)> = trans[callee]
                    .iter()
                    .filter(|(l, _)| !trans[*id].contains_key(*l))
                    .map(|(l, s)| (l.clone(), s.clone()))
                    .collect();
                if !add.is_empty() {
                    changed = true;
                    trans[*id].extend(add);
                }
                let add: Vec<String> =
                    reach[callee].difference(&reach[*id]).cloned().collect();
                if !add.is_empty() {
                    changed = true;
                    reach[*id].extend(add);
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: HashMap<(String, String), Edge> = HashMap::new();
    let mut findings = Vec::new();
    let mut reported: HashSet<(usize, String, u32)> = HashSet::new();
    for id in &ids {
        let Some(body) = &ws.fns[*id].body else { continue };
        let mut ctx = Ctx {
            ws,
            fnd: &ws.fns[*id],
            facts: &facts[*id],
            trans: &trans,
            reach: &reach,
            edges: &mut edges,
            findings: &mut findings,
            reported: &mut reported,
        };
        let mut held = Vec::new();
        walk_block(&mut ctx, body, &mut held);
    }

    findings.extend(report_cycles(&edges));
    findings
}

/// Flow-insensitive prewalk: local types, direct acquisitions, resolved
/// callees, called names.
fn prewalk(ws: &Workspace, fnd: &FnDef) -> FnFacts {
    let mut f = FnFacts::default();
    for (name, ty) in &fnd.params {
        if let TypeRef::Concrete(t) = ws.core_type(ty) {
            f.locals.insert(name.clone(), t);
        }
    }
    let Some(body) = &fnd.body else { return f };
    prewalk_block(ws, fnd, body, &mut f);
    f
}

fn prewalk_block(ws: &Workspace, fnd: &FnDef, b: &Block, f: &mut FnFacts) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { bindings, events, .. } => {
                prewalk_events(ws, fnd, events, f);
                // Infer the binding's type from the outermost call.
                if bindings.len() == 1 {
                    if let Some(Event::Call(c)) = events.first() {
                        if ws.lock_id_of(fnd, c, &f.locals).is_none() {
                            let callees = ws.resolve_call(fnd, c, &f.locals);
                            if let Some(first) = callees.first() {
                                if let TypeRef::Concrete(t) = ws.core_type(&ws.fns[*first].ret) {
                                    f.locals.insert(bindings[0].clone(), t);
                                }
                            }
                        }
                    }
                }
            }
            Stmt::Expr { events, .. } | Stmt::Return { events, .. } => {
                prewalk_events(ws, fnd, events, f);
            }
            Stmt::If { cond, then_b, else_b, .. } => {
                prewalk_events(ws, fnd, cond, f);
                prewalk_block(ws, fnd, then_b, f);
                if let Some(e) = else_b {
                    prewalk_block(ws, fnd, e, f);
                }
            }
            Stmt::Match { scrutinee, arms, .. } => {
                prewalk_events(ws, fnd, scrutinee, f);
                for a in arms {
                    prewalk_block(ws, fnd, &a.body, f);
                }
            }
            Stmt::Loop { header, body, .. } => {
                prewalk_events(ws, fnd, header, f);
                prewalk_block(ws, fnd, body, f);
            }
            Stmt::Nested(b) => prewalk_block(ws, fnd, b, f),
            _ => {}
        }
    }
    if let Some(Stmt::Let { else_block: Some(e), .. }) = b.stmts.last() {
        prewalk_block(ws, fnd, e, f);
    }
}

fn prewalk_events(ws: &Workspace, fnd: &FnDef, events: &[Event], f: &mut FnFacts) {
    for ev in events {
        if let Event::Call(c) = ev {
            // Closure-body calls run when the closure runs (a timer
            // fire, a watcher, another thread) — not under the locks the
            // building code holds, and not as part of this function's
            // lock footprint.
            if c.deferred {
                continue;
            }
            if let Some(lock) = ws.lock_id_of(fnd, c, &f.locals) {
                f.direct.push((lock, c.line));
            } else {
                f.names.insert(c.name.clone());
                f.callees.extend(ws.resolve_call(fnd, c, &f.locals));
            }
        }
    }
}

struct Ctx<'a> {
    ws: &'a Workspace,
    fnd: &'a FnDef,
    facts: &'a FnFacts,
    trans: &'a [HashMap<String, Site>],
    reach: &'a [HashSet<String>],
    edges: &'a mut HashMap<(String, String), Edge>,
    findings: &'a mut Vec<Finding>,
    reported: &'a mut HashSet<(usize, String, u32)>,
}

/// Processes a statement's events: records acquisitions into `temps`,
/// ordering edges, and never-hold violations. Returns the index into
/// `temps` of the final sticky lock acquisition, if any.
fn process_events(
    ctx: &mut Ctx<'_>,
    events: &[Event],
    held: &mut Vec<Held>,
    temps: &mut Vec<Held>,
) -> Option<usize> {
    let mut last_sticky: Option<usize> = None;
    for ev in events {
        match ev {
            Event::Drop { var, .. } => {
                held.retain(|h| h.guard.as_deref() != Some(var.as_str()));
            }
            Event::Call(c) => {
                if c.deferred {
                    continue;
                }
                let site = Site { path: ctx.fnd.path.clone(), line: c.line };
                if let Some(lock) = ctx.ws.lock_id_of(ctx.fnd, c, &ctx.facts.locals) {
                    for h in held.iter().chain(temps.iter()) {
                        if h.lock != lock {
                            record_edge(ctx.edges, &h.lock, &lock, &h.site, &site, None);
                        }
                    }
                    temps.push(Held { lock, site, guard: None });
                    last_sticky = if c.sticky_end { Some(temps.len() - 1) } else { None };
                } else {
                    last_sticky = None;
                    let callees = ctx.ws.resolve_call(ctx.fnd, c, &ctx.facts.locals);
                    // Never-hold: can this call reach a forbidden fn?
                    let mut names: HashSet<&str> = HashSet::new();
                    names.insert(c.name.as_str());
                    for g in &callees {
                        names.extend(ctx.reach[*g].iter().map(String::as_str));
                    }
                    for (idx, nh) in ctx.ws.never_holds.iter().enumerate() {
                        if !names.contains(nh.target.as_str()) {
                            continue;
                        }
                        if let Some(h) =
                            held.iter().chain(temps.iter()).find(|h| h.lock == nh.lock)
                        {
                            let key = (idx, ctx.fnd.path.clone(), c.line);
                            if ctx.reported.insert(key) {
                                ctx.findings.push(Finding {
                                    rule: LintRule::NeverHold,
                                    path: ctx.fnd.path.clone(),
                                    line: c.line as usize,
                                    snippet: format!(
                                        "`{}` (held since {}) is held across call to `{}` (reaches `{}`); declared never-hold at {}:{}",
                                        nh.lock, h.site, c.name, nh.target, nh.path, nh.line
                                    ),
                                });
                            }
                        }
                    }
                    // Transitive acquisitions become ordering edges.
                    for g in &callees {
                        for (lock, acq) in &ctx.trans[*g] {
                            let holders: Vec<Held> =
                                held.iter().chain(temps.iter()).cloned().collect();
                            for h in holders {
                                if h.lock != *lock {
                                    record_edge(
                                        ctx.edges,
                                        &h.lock,
                                        lock,
                                        &h.site,
                                        acq,
                                        Some(format!(
                                            "via `{}` called at {}",
                                            ctx.ws.fns[*g].name, site
                                        )),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    last_sticky
}

fn record_edge(
    edges: &mut HashMap<(String, String), Edge>,
    from: &str,
    to: &str,
    hold: &Site,
    acq: &Site,
    via: Option<String>,
) {
    edges
        .entry((from.to_owned(), to.to_owned()))
        .or_insert_with(|| Edge { hold: hold.clone(), acq: acq.clone(), via });
}

fn walk_block(ctx: &mut Ctx<'_>, b: &Block, held: &mut Vec<Held>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { bindings, events, else_block, .. } => {
                let mut temps = Vec::new();
                let sticky = process_events(ctx, events, held, &mut temps);
                if let Some(e) = else_block {
                    let mut inner = held.clone();
                    inner.extend(temps.iter().cloned());
                    walk_block(ctx, e, &mut inner);
                }
                // The final sticky lock of the initializer becomes a
                // guard bound to the pattern; everything else dies with
                // the statement.
                if let (Some(idx), Some(name)) = (sticky, bindings.first()) {
                    let mut g = temps.swap_remove(idx);
                    g.guard = Some(name.clone());
                    held.push(g);
                }
            }
            Stmt::Expr { events, .. } | Stmt::Return { events, .. } => {
                let mut temps = Vec::new();
                process_events(ctx, events, held, &mut temps);
            }
            Stmt::If { cond, then_b, else_b, .. } => {
                let mut temps = Vec::new();
                process_events(ctx, cond, held, &mut temps);
                // Condition temporaries end before the branches run.
                let mut t = held.clone();
                walk_block(ctx, then_b, &mut t);
                if let Some(e) = else_b {
                    let mut t = held.clone();
                    walk_block(ctx, e, &mut t);
                }
            }
            Stmt::Match { scrutinee, arms, .. } => {
                let mut temps = Vec::new();
                process_events(ctx, scrutinee, held, &mut temps);
                // Scrutinee temporaries live across the arms.
                for a in arms {
                    let mut t = held.clone();
                    t.extend(temps.iter().cloned());
                    walk_block(ctx, &a.body, &mut t);
                }
            }
            Stmt::Loop { header, body, .. } => {
                let mut temps = Vec::new();
                process_events(ctx, header, held, &mut temps);
                // Iterated-expression temporaries live for the whole loop.
                let mut t = held.clone();
                t.extend(temps.iter().cloned());
                walk_block(ctx, body, &mut t);
            }
            Stmt::Nested(inner) => {
                let mut t = held.clone();
                walk_block(ctx, inner, &mut t);
            }
            _ => {}
        }
    }
}

/// Reports each lock pair reachable in both orders, with both sites.
fn report_cycles(edges: &HashMap<(String, String), Edge>) -> Vec<Finding> {
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut findings = Vec::new();
    for ((a, b), e) in edges {
        // Report each unordered pair once, from the lexically smaller
        // forward edge.
        if a >= b && edges.contains_key(&(b.clone(), a.clone())) {
            continue;
        }
        if !reachable(b, a) {
            continue;
        }
        let reverse = edges.get(&(b.clone(), a.clone()));
        let via = e.via.as_deref().map(|v| format!(" ({v})")).unwrap_or_default();
        let reverse_msg = match reverse {
            Some(r) => {
                let rvia = r.via.as_deref().map(|v| format!(" ({v})")).unwrap_or_default();
                format!(
                    "reverse order at {}: `{}` acquired while `{}` held since {}{}",
                    r.acq, a, b, r.hold, rvia
                )
            }
            None => format!("reverse path `{b}` -> … -> `{a}` exists through intermediate locks"),
        };
        findings.push(Finding {
            rule: LintRule::LockOrder,
            path: e.acq.path.clone(),
            line: e.acq.line as usize,
            snippet: format!(
                "ABBA risk between `{}` and `{}`: `{}` acquired here while `{}` held since {}{}; {}",
                a, b, b, a, e.hold, via, reverse_msg
            ),
        });
    }
    findings
}
