//! Registry pass: every emitted metric name, trace stage, journal
//! record tag, and frame kind must appear in its declared registry.
//!
//! A `// lint: registry <kind>` annotation on a const declares the
//! single registry for that kind; its string entries may contain `*`
//! wildcards (matching across dots, since queue names embed dots).
//! Emissions come from two sources:
//!
//! * **metric-name** — any call named `counter`/`gauge`/`histogram`/
//!   `register_counter`/`register_gauge`/`register_histogram` whose
//!   arguments contain a string literal. `format!` interpolations
//!   (`{…}`) are wildcardized to `*` before matching.
//! * **sink items** — an item annotated `// lint: registry-sink <kind>`
//!   contributes its string literals (e.g. a `Display` impl for trace
//!   stages) or its tag-position integers (`put_u8(N)` arguments and
//!   ints adjacent to `=>`, e.g. wire encode/decode impls) as
//!   emissions of that kind.
//!
//! Any emission with no matching registry entry is a finding carrying
//! both sites: the emission and the registry declaration.

use std::collections::HashMap;

use crate::parser::{Block, Event, RegistryDecl, Stmt};
use crate::{Finding, LintRule};

use super::Workspace;

/// Call names that emit (or read back) a metric by name.
const METRIC_SINKS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "register_counter",
    "register_gauge",
    "register_histogram",
];

/// Runs the pass.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut by_kind: HashMap<&str, &RegistryDecl> = HashMap::new();
    let mut findings = Vec::new();
    for f in &ws.files {
        for r in &f.registries {
            if let Some(prev) = by_kind.insert(r.kind.as_str(), r) {
                findings.push(Finding {
                    rule: LintRule::Registry,
                    path: r.path.clone(),
                    line: r.line as usize,
                    snippet: format!(
                        "duplicate registry for kind `{}`; already declared at {}:{}",
                        r.kind, prev.path, prev.line
                    ),
                });
            }
        }
    }

    // Metric-name emissions from every call site.
    if let Some(decl) = by_kind.get("metric-name").copied() {
        for fnd in &ws.fns {
            let Some(body) = &fnd.body else { continue };
            let mut emissions = Vec::new();
            collect_metric_calls(body, &mut emissions);
            for (name, line) in emissions {
                let pattern = wildcardize(&name);
                if !decl.strs.iter().any(|(entry, _)| glob_match(entry, &pattern)) {
                    findings.push(Finding {
                        rule: LintRule::Registry,
                        path: fnd.path.clone(),
                        line: line as usize,
                        snippet: format!(
                            "metric `{pattern}` is not in the metric-name registry declared at {}:{}",
                            decl.path, decl.line
                        ),
                    });
                }
            }
        }
    }

    // Sink-item emissions.
    for f in &ws.files {
        for sink in &f.sinks {
            let Some(decl) = by_kind.get(sink.kind.as_str()).copied() else {
                findings.push(Finding {
                    rule: LintRule::Registry,
                    path: sink.path.clone(),
                    line: sink
                        .strs
                        .first()
                        .map(|(_, l)| *l)
                        .or_else(|| sink.ints.first().map(|(_, l)| *l))
                        .unwrap_or(1) as usize,
                    snippet: format!("no registry declared for kind `{}`", sink.kind),
                });
                continue;
            };
            if !decl.strs.is_empty() {
                for (s, line) in &sink.strs {
                    if !decl.strs.iter().any(|(entry, _)| glob_match(entry, s)) {
                        findings.push(Finding {
                            rule: LintRule::Registry,
                            path: sink.path.clone(),
                            line: *line as usize,
                            snippet: format!(
                                "{} `{s}` is not in the {} registry declared at {}:{}",
                                sink.kind, sink.kind, decl.path, decl.line
                            ),
                        });
                    }
                }
            }
            if !decl.ints.is_empty() {
                for (v, line) in &sink.ints {
                    if !decl.ints.iter().any(|(entry, _)| entry == v) {
                        findings.push(Finding {
                            rule: LintRule::Registry,
                            path: sink.path.clone(),
                            line: *line as usize,
                            snippet: format!(
                                "{} `{v}` is not in the {} registry declared at {}:{}",
                                sink.kind, sink.kind, decl.path, decl.line
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Scans the repo's `scenarios/*.toml` files: every `metric = "…"`
/// value must appear in the metric-name registry and every `stage = "…"`
/// value in the trace-stage registry — a scenario oracle cannot assert
/// on a counter or lifecycle stage the observability layer never emits.
///
/// # Errors
///
/// Propagates read errors on scenario files (a missing `scenarios/`
/// directory is fine — there is simply nothing to check).
pub fn scan_scenarios(root: &std::path::Path, ws: &Workspace) -> std::io::Result<Vec<Finding>> {
    let mut by_kind: HashMap<&str, &RegistryDecl> = HashMap::new();
    for f in &ws.files {
        for r in &f.registries {
            by_kind.entry(r.kind.as_str()).or_insert(r);
        }
    }
    let mut findings = Vec::new();
    let Ok(entries) = std::fs::read_dir(root.join("scenarios")) else {
        return Ok(findings);
    };
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        findings.extend(check_scenario_src(&rel, &src, &by_kind));
    }
    Ok(findings)
}

/// The actual per-file scenario check, separated for testability.
fn check_scenario_src(
    rel: &str,
    src: &str,
    by_kind: &HashMap<&str, &RegistryDecl>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (k, raw) in src.lines().enumerate() {
        let line_no = k + 1;
        let t = raw.trim();
        for (key, kind) in [("metric", "metric-name"), ("stage", "trace-stage")] {
            let Some(rest) = t.strip_prefix(key) else { continue };
            let Some(rest) = rest.trim_start().strip_prefix('=') else {
                continue;
            };
            let Some(value) = rest.trim().strip_prefix('"').and_then(|r| r.split('"').next())
            else {
                continue;
            };
            match by_kind.get(kind) {
                Some(decl) => {
                    if !decl.strs.iter().any(|(entry, _)| glob_match(entry, value)) {
                        findings.push(Finding {
                            rule: LintRule::Registry,
                            path: rel.to_owned(),
                            line: line_no,
                            snippet: format!(
                                "scenario {key} `{value}` is not in the {kind} registry \
                                 declared at {}:{}",
                                decl.path, decl.line
                            ),
                        });
                    }
                }
                None => findings.push(Finding {
                    rule: LintRule::Registry,
                    path: rel.to_owned(),
                    line: line_no,
                    snippet: format!("no {kind} registry declared for scenario {key} `{value}`"),
                }),
            }
        }
    }
    findings
}

/// Collects `(name, line)` for metric-sink calls carrying a string.
fn collect_metric_calls(b: &Block, out: &mut Vec<(String, u32)>) {
    let visit = |events: &[Event], out: &mut Vec<(String, u32)>| {
        for ev in events {
            if let Event::Call(c) = ev {
                if METRIC_SINKS.contains(&c.name.as_str()) {
                    if let Some(s) = &c.first_str {
                        out.push((s.clone(), c.line));
                    }
                }
            }
        }
    };
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { events, else_block, .. } => {
                visit(events, out);
                if let Some(e) = else_block {
                    collect_metric_calls(e, out);
                }
            }
            Stmt::Expr { events, .. } | Stmt::Return { events, .. } => visit(events, out),
            Stmt::If { cond, then_b, else_b, .. } => {
                visit(cond, out);
                collect_metric_calls(then_b, out);
                if let Some(e) = else_b {
                    collect_metric_calls(e, out);
                }
            }
            Stmt::Match { scrutinee, arms, .. } => {
                visit(scrutinee, out);
                for a in arms {
                    collect_metric_calls(&a.body, out);
                }
            }
            Stmt::Loop { header, body, .. } => {
                visit(header, out);
                collect_metric_calls(body, out);
            }
            Stmt::Nested(inner) => collect_metric_calls(inner, out),
            _ => {}
        }
    }
}

/// Replaces `{…}` interpolations with `*`.
fn wildcardize(name: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Glob match where `*` in `pattern` matches any substring (including
/// dots and literal `*`s in the subject).
fn glob_match(pattern: &str, subject: &str) -> bool {
    if !pattern.contains('*') {
        return pattern == subject;
    }
    let parts: Vec<&str> = pattern.split('*').collect();
    let mut rest = subject;
    // Anchored prefix.
    let first = parts[0];
    if !rest.starts_with(first) {
        return false;
    }
    rest = &rest[first.len()..];
    // Anchored suffix.
    let last = parts[parts.len() - 1];
    if parts.len() > 1 {
        if rest.len() < last.len() || !rest.ends_with(last) {
            return false;
        }
        rest = &rest[..rest.len() - last.len()];
    }
    // Middles in order.
    for mid in &parts[1..parts.len() - 1] {
        if mid.is_empty() {
            continue;
        }
        match rest.find(mid) {
            Some(at) => rest = &rest[at + mid.len()..],
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matches_across_dots() {
        assert!(glob_match("mq.queue.*.enqueued", "mq.queue.Q.A.enqueued"));
        assert!(glob_match("mq.queue.*.enqueued", "mq.queue.*.enqueued"));
        assert!(!glob_match("mq.queue.*.enqueued", "mq.queue.Q.A.dequeued"));
        assert!(glob_match("cond.sent", "cond.sent"));
        assert!(!glob_match("cond.sent", "cond.sentx"));
    }

    #[test]
    fn wildcardize_replaces_interpolations() {
        assert_eq!(wildcardize("mq.queue.{queue}.enqueued"), "mq.queue.*.enqueued");
        assert_eq!(wildcardize("plain.name"), "plain.name");
    }

    #[test]
    fn scenario_scan_checks_metrics_and_stages_against_registries() {
        let metric_decl = RegistryDecl {
            kind: "metric-name".to_owned(),
            path: "crates/mq/src/obs.rs".to_owned(),
            line: 35,
            strs: vec![("cond.sent".to_owned(), 36), ("mq.queue.*.depth".to_owned(), 37)],
            ints: Vec::new(),
        };
        let stage_decl = RegistryDecl {
            kind: "trace-stage".to_owned(),
            path: "crates/mq/src/obs.rs".to_owned(),
            line: 126,
            strs: vec![("verdict".to_owned(), 127)],
            ints: Vec::new(),
        };
        let mut by_kind: HashMap<&str, &RegistryDecl> = HashMap::new();
        by_kind.insert("metric-name", &metric_decl);
        by_kind.insert("trace-stage", &stage_decl);

        let src = r#"
[[oracle.metrics]]
metric = "cond.sent"
min = 1

[[oracle.metrics]]
metric = "mq.queue.Q.APP.depth"

[[oracle.metrics]]
metric = "cond.bogus"

[[oracle.stages]]
stage = "verdict"

[[oracle.stages]]
stage = "no-such-stage"
"#;
        let findings = check_scenario_src("scenarios/x.toml", src, &by_kind);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].snippet.contains("cond.bogus"), "{findings:?}");
        assert!(findings[1].snippet.contains("no-such-stage"), "{findings:?}");
        assert!(findings.iter().all(|f| f.path == "scenarios/x.toml"));
    }
}
