//! Custody pass: every path that takes ownership of a message must
//! reach exactly one terminal.
//!
//! A function annotated `// lint: custody(<var>[, err-reverts])` is
//! checked: once `<var>` is live (a by-value parameter, or bound by a
//! `let`/match-arm/`if let` pattern of that name), every path must
//! discharge it — move it into a call (deliver, dead-letter, journaled
//! handoff, store insert) or return it — before the path ends. Early
//! `return`s, `break`/`continue`, fall-off, and `drop(<var>)` while the
//! message is live are leaks.
//!
//! With `err-reverts`, error exits (`?` and `return Err(…)`) are exempt:
//! the crate-wide contract is that an error leaves the message unacked
//! upstream, so the sender retries. Without it, `?` while live is a
//! leak (strict mode).
//!
//! A callee annotated `// lint: custody-returns` transfers custody to
//! the `let` binding of its result. A deliberate exit can be suppressed
//! with a trailing `// lint: custody-ok(<reason>)` on (or directly
//! above) the exiting line.

use std::collections::HashMap;

use crate::parser::{Block, Event, FnDef, Stmt};
use crate::{Finding, LintRule};

use super::Workspace;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    NotLive,
    Live(u32),
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Falls,
    Diverges,
}

struct Ctx<'a> {
    ws: &'a Workspace,
    fnd: &'a FnDef,
    err_reverts: bool,
    findings: &'a mut Vec<Finding>,
}

#[derive(Debug, Clone)]
struct State {
    tracked: String,
    phase: Phase,
}

/// Runs the pass over every `custody(...)`-annotated function.
pub fn run(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for fnd in &ws.fns {
        let Some(spec) = fnd.anns.iter().find_map(|a| a.strip_prefix("custody(")) else {
            continue;
        };
        let Some(close) = spec.find(')') else { continue };
        let mut parts = spec[..close].split(',').map(str::trim);
        let Some(var) = parts.next() else { continue };
        let err_reverts = parts.any(|p| p == "err-reverts");
        let Some(body) = &fnd.body else { continue };
        let mut st = State { tracked: var.to_owned(), phase: Phase::NotLive };
        // A by-value parameter of the tracked name starts live.
        for (name, ty) in &fnd.params {
            if name == var && !ty.starts_with('&') {
                st.phase = Phase::Live(fnd.line);
            }
        }
        let mut ctx = Ctx { ws, fnd, err_reverts, findings: &mut findings };
        let flow = walk_block(&mut ctx, body, &mut st);
        if flow == Flow::Falls {
            if let Phase::Live(since) = st.phase {
                leak(
                    &mut ctx,
                    &mut st,
                    fnd.line,
                    &format!("custody of `{var}` (live since line {since}) leaks at function end"),
                );
            }
        }
    }
    findings
}

fn leak(ctx: &mut Ctx<'_>, st: &mut State, line: u32, msg: &str) {
    st.phase = Phase::Done; // avoid cascading reports on one path
    if let Some(ok_lines) = ctx.ws.custody_ok.get(&ctx.fnd.path) {
        if ok_lines.contains(&line) || ok_lines.contains(&line.saturating_sub(1)) {
            return;
        }
    }
    ctx.findings.push(Finding {
        rule: LintRule::Custody,
        path: ctx.fnd.path.clone(),
        line: line as usize,
        snippet: format!("{msg} (in `{}`, annotated at {}:{})", ctx.fnd.name, ctx.fnd.path, ctx.fnd.line),
    });
}

/// Processes a statement's events against the custody state. Returns
/// true when the tracked variable was moved into a `custody-returns`
/// callee (so a `let` should transfer tracking to its binding).
fn process_events(ctx: &mut Ctx<'_>, events: &[Event], st: &mut State) -> bool {
    let mut transfers = false;
    for ev in events {
        match ev {
            Event::Drop { var, line } => {
                if *var == st.tracked {
                    if let Phase::Live(since) = st.phase {
                        leak(
                            ctx,
                            st,
                            *line,
                            &format!(
                                "custody of `{}` (live since line {since}) is silently dropped",
                                var
                            ),
                        );
                    }
                }
            }
            Event::Call(c) => {
                if c.moved.contains(&st.tracked) && matches!(st.phase, Phase::Live(_)) {
                    st.phase = Phase::Done;
                    let callees = ctx.ws.resolve_call(ctx.fnd, c, &HashMap::new());
                    if callees.iter().any(|id| {
                        ctx.ws.fns[*id].anns.iter().any(|a| a == "custody-returns")
                    }) {
                        transfers = true;
                        st.phase = Phase::Live(c.line);
                    }
                }
            }
        }
    }
    transfers
}

fn check_try(ctx: &mut Ctx<'_>, st: &mut State, has_try: bool, line: u32) {
    if has_try && !ctx.err_reverts {
        if let Phase::Live(since) = st.phase {
            leak(
                ctx,
                st,
                line,
                &format!(
                    "custody of `{}` (live since line {since}) may leak via `?` error exit",
                    st.tracked
                ),
            );
        }
    }
}

fn walk_block(ctx: &mut Ctx<'_>, b: &Block, st: &mut State) -> Flow {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let { bindings, events, idents: _, has_try, else_block, line } => {
                let transfers = process_events(ctx, events, st);
                check_try(ctx, st, *has_try, *line);
                if let Some(e) = else_block {
                    let mut diverging = st.clone();
                    walk_block(ctx, e, &mut diverging);
                }
                if transfers {
                    if let Some(first) = bindings.first() {
                        st.tracked = first.clone();
                    }
                } else if bindings.contains(&st.tracked) {
                    st.phase = Phase::Live(*line);
                }
            }
            Stmt::Expr { events, idents, has_try, tail, line } => {
                process_events(ctx, events, st);
                check_try(ctx, st, *has_try, *line);
                if *tail && idents.contains(&st.tracked) {
                    st.phase = Phase::Done;
                }
            }
            Stmt::Return { events, idents, first, has_try, line } => {
                process_events(ctx, events, st);
                let is_err = first.as_deref() == Some("Err");
                if idents.contains(&st.tracked) {
                    st.phase = Phase::Done;
                } else if let Phase::Live(since) = st.phase {
                    if !(ctx.err_reverts && (is_err || *has_try)) {
                        leak(
                            ctx,
                            st,
                            *line,
                            &format!(
                                "custody of `{}` (live since line {since}) leaks at early return",
                                st.tracked
                            ),
                        );
                    }
                }
                return Flow::Diverges;
            }
            Stmt::Break { line } | Stmt::Continue { line } => {
                if let Phase::Live(since) = st.phase {
                    leak(
                        ctx,
                        st,
                        *line,
                        &format!(
                            "custody of `{}` (live since line {since}) leaks at loop exit",
                            st.tracked
                        ),
                    );
                }
                return Flow::Diverges;
            }
            Stmt::If { cond, cond_try, cond_bindings, then_b, else_b, line } => {
                process_events(ctx, cond, st);
                check_try(ctx, st, *cond_try, *line);
                let mut then_st = st.clone();
                if cond_bindings.contains(&st.tracked) {
                    then_st.phase = Phase::Live(*line);
                }
                let then_flow = walk_block(ctx, then_b, &mut then_st);
                let mut else_st = st.clone();
                let else_flow = match else_b {
                    Some(e) => walk_block(ctx, e, &mut else_st),
                    None => Flow::Falls,
                };
                let merged = merge(
                    &[(then_flow, then_st.phase), (else_flow, else_st.phase)],
                    st.phase,
                );
                st.phase = merged.1;
                if merged.0 == Flow::Diverges {
                    return Flow::Diverges;
                }
            }
            Stmt::Match { scrutinee, scrutinee_try, arms, line } => {
                process_events(ctx, scrutinee, st);
                check_try(ctx, st, *scrutinee_try, *line);
                let mut outcomes = Vec::new();
                for a in arms {
                    let mut arm_st = st.clone();
                    if a.bindings.contains(&st.tracked) {
                        arm_st.phase = Phase::Live(a.line);
                    }
                    let flow = walk_block(ctx, &a.body, &mut arm_st);
                    outcomes.push((flow, arm_st.phase));
                }
                if !outcomes.is_empty() {
                    let merged = merge(&outcomes, st.phase);
                    st.phase = merged.1;
                    if merged.0 == Flow::Diverges {
                        return Flow::Diverges;
                    }
                }
            }
            Stmt::Loop { header, bindings, body, line } => {
                process_events(ctx, header, st);
                let entry_live = matches!(st.phase, Phase::Live(_));
                let mut body_st = st.clone();
                if bindings.contains(&st.tracked) {
                    body_st.phase = Phase::Live(*line);
                }
                walk_block(ctx, body, &mut body_st);
                if !entry_live {
                    if let Phase::Live(since) = body_st.phase {
                        leak(
                            ctx,
                            &mut body_st,
                            *line,
                            &format!(
                                "custody of `{}` (live since line {since}) leaks at end of a loop iteration",
                                st.tracked
                            ),
                        );
                    }
                }
            }
            Stmt::Nested(inner) => {
                if walk_block(ctx, inner, st) == Flow::Diverges {
                    return Flow::Diverges;
                }
            }
        }
    }
    Flow::Falls
}

/// Merges branch outcomes: any falling branch still live keeps the
/// message live; all-diverging branches diverge.
fn merge(outcomes: &[(Flow, Phase)], before: Phase) -> (Flow, Phase) {
    let falling: Vec<Phase> = outcomes
        .iter()
        .filter(|(f, _)| *f == Flow::Falls)
        .map(|(_, p)| *p)
        .collect();
    if falling.is_empty() {
        return (Flow::Diverges, before);
    }
    for p in &falling {
        if matches!(p, Phase::Live(_)) {
            return (Flow::Falls, *p);
        }
    }
    if falling.contains(&Phase::Done) {
        return (Flow::Falls, Phase::Done);
    }
    (Flow::Falls, before)
}
