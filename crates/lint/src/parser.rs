//! Lightweight Rust item/statement parser for the cond-verify passes.
//!
//! This is **not** a full Rust parser. It recovers exactly the structure
//! the three verify passes need: struct field tables (to identify lock
//! fields and resolve receiver chains), impl blocks (method ownership and
//! trait implementations), and function bodies as a statement skeleton
//! with *events* — method/function calls with receiver chains, moved
//! arguments, and literal arguments. Everything it does not understand it
//! skips with balanced-delimiter scanning, so unknown syntax degrades to
//! "no events" rather than a parse failure. Soundness caveats are
//! documented in DESIGN.md §14.

use crate::lexer::{lex, Annotation, Tok, Token};

/// A parsed source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Path relative to the scan root (as printed in findings).
    pub path: String,
    /// Structs/enums declared in the file.
    pub structs: Vec<StructDef>,
    /// Trait names declared in the file.
    pub traits: Vec<String>,
    /// `impl Trait for Type` pairs.
    pub trait_impls: Vec<(String, String)>,
    /// Functions (free, inherent, trait-impl, and trait-default).
    pub fns: Vec<FnDef>,
    /// Registry declarations (`// lint: registry <kind>` on consts).
    pub registries: Vec<RegistryDecl>,
    /// Registry sinks (`// lint: registry-sink <kind>` on items).
    pub sinks: Vec<SinkDecl>,
    /// Every `// lint:` annotation in the file (for free-floating forms
    /// such as `never-hold`, `lock-alias`, and trailing `custody-ok`).
    pub annotations: Vec<Annotation>,
}

/// A struct or enum declaration.
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Named fields as `(name, type-string)`; empty for enums/tuples.
    pub fields: Vec<(String, String)>,
}

/// A function definition or trait-method signature.
#[derive(Debug)]
pub struct FnDef {
    /// File path (same as the owning [`ParsedFile::path`]).
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Impl/trait owner type, if any.
    pub owner: Option<String>,
    /// Trait name when inside `impl Trait for Owner`.
    pub trait_name: Option<String>,
    /// Function name.
    pub name: String,
    /// Parameters as `(name, type-string)`; `self` params excluded.
    pub params: Vec<(String, String)>,
    /// Return type string ("" when none).
    pub ret: String,
    /// Body, when present (trait signatures have none).
    pub body: Option<Block>,
    /// `// lint:` annotations attached directly above this fn.
    pub anns: Vec<String>,
}

/// Registry declaration: the single source of truth for one kind.
#[derive(Debug)]
pub struct RegistryDecl {
    /// Registry kind (`metric-name`, `trace-stage`, `journal-tag`, …).
    pub kind: String,
    /// File path.
    pub path: String,
    /// Line of the declaration.
    pub line: u32,
    /// String entries with their lines.
    pub strs: Vec<(String, u32)>,
    /// Integer entries with their lines.
    pub ints: Vec<(u64, u32)>,
}

/// Registry sink: an item whose literals are emissions of a kind.
#[derive(Debug)]
pub struct SinkDecl {
    /// Registry kind.
    pub kind: String,
    /// File path.
    pub path: String,
    /// String literals in the item with their lines.
    pub strs: Vec<(String, u32)>,
    /// Tag-position integer literals (`put_u8(N)` args and ints adjacent
    /// to `=>`) with their lines.
    pub ints: Vec<(u64, u32)>,
}

/// A `{ … }` block of statements.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement (or statement-position control-flow construct).
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <expr>;` (optionally `else { … }`).
    Let {
        /// Lowercase idents bound by the pattern.
        bindings: Vec<String>,
        /// Call/drop events in the initializer, in source order.
        events: Vec<Event>,
        /// Bare idents in the initializer (for move-into-ctor analysis).
        idents: Vec<String>,
        /// Whether the initializer contains a `?`.
        has_try: bool,
        /// `else { … }` diverging block of a let-else.
        else_block: Option<Block>,
        /// Line of the `let`.
        line: u32,
    },
    /// Expression statement (or tail expression).
    Expr {
        /// Events in source order.
        events: Vec<Event>,
        /// Bare idents (see [`Stmt::Let::idents`]).
        idents: Vec<String>,
        /// Whether the expression contains a `?`.
        has_try: bool,
        /// True when this is the function's (or arm's) tail expression.
        tail: bool,
        /// Line the expression starts on.
        line: u32,
    },
    /// `return …;`
    Return {
        /// Events in the returned expression.
        events: Vec<Event>,
        /// Bare idents in the returned expression.
        idents: Vec<String>,
        /// First ident of the expression (`Err`, `Ok`, …), if any.
        first: Option<String>,
        /// Whether the expression contains a `?`.
        has_try: bool,
        /// Line of the `return`.
        line: u32,
    },
    /// `break …;` (value/label ignored).
    Break {
        /// Line of the `break`.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Line of the `continue`.
        line: u32,
    },
    /// `if <cond> { … } else { … }` (incl. `if let`).
    If {
        /// Events in the condition.
        cond: Vec<Event>,
        /// Whether the condition contains a `?`.
        cond_try: bool,
        /// Idents bound by an `if let` pattern (live in the then-branch).
        cond_bindings: Vec<String>,
        /// Then branch.
        then_b: Block,
        /// Else branch (an `else if` becomes a nested If inside it).
        else_b: Option<Block>,
        /// Line of the `if`.
        line: u32,
    },
    /// `match <scrutinee> { arms }`.
    Match {
        /// Events in the scrutinee.
        scrutinee: Vec<Event>,
        /// Whether the scrutinee contains a `?`.
        scrutinee_try: bool,
        /// Match arms.
        arms: Vec<Arm>,
        /// Line of the `match`.
        line: u32,
    },
    /// `loop`/`while`/`for` body. For-loops synthesize a `next` call in
    /// the header so iterator pulls are visible to the lock pass.
    Loop {
        /// Events in the loop header (cond / iterated expression).
        header: Vec<Event>,
        /// Idents bound by `while let`/`for` patterns.
        bindings: Vec<String>,
        /// Loop body.
        body: Block,
        /// Line of the loop keyword.
        line: u32,
    },
    /// A bare nested `{ … }` block.
    Nested(Block),
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Lowercase idents bound by the arm pattern.
    pub bindings: Vec<String>,
    /// Arm body (expression bodies become a one-statement block).
    pub body: Block,
    /// Line the pattern starts on.
    pub line: u32,
}

/// Receiver of a call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `self.f1.f2.method()` — the field path (may be empty).
    SelfChain(Vec<String>),
    /// `local.f1.method()` — base local variable plus field path.
    Local(String, Vec<String>),
    /// `Type::method()`.
    Type(String),
    /// Chained off a previous call: `….prev().method()`.
    Chained {
        /// Name of the call the chain continues from.
        prev: String,
    },
    /// Free function (no receiver).
    Free,
    /// Unrecognized receiver shape.
    Opaque,
}

/// A call event.
#[derive(Debug, Clone)]
pub struct Call {
    /// Method/function name.
    pub name: String,
    /// Receiver.
    pub recv: Recv,
    /// Line of the name token.
    pub line: u32,
    /// Bare single-ident arguments (potential moves).
    pub moved: Vec<String>,
    /// First string literal anywhere in the argument region.
    pub first_str: Option<String>,
    /// First integer literal that is the sole argument.
    pub only_int: Option<u64>,
    /// True when the call chain ends here (its guard, if any, is bound
    /// by the enclosing statement rather than dropped mid-expression).
    pub sticky_end: bool,
    /// True when the call sits inside a brace-bodied closure literal:
    /// it runs when the closure runs, not at the statement that builds
    /// it, so it must not be attributed to locks held here.
    pub deferred: bool,
}

/// An event inside an expression.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call.
    Call(Call),
    /// `drop(var)`.
    Drop {
        /// The dropped variable.
        var: String,
        /// Line of the drop.
        line: u32,
    },
}

/// Parses one file's source text.
pub fn parse_file(path: &str, src: &str) -> ParsedFile {
    let (tokens, annotations) = lex(src);
    let mut p = Parser {
        t: &tokens,
        i: 0,
        file: ParsedFile {
            path: path.to_owned(),
            ..ParsedFile::default()
        },
        anns: &annotations,
        ann_cursor: 0,
        last_block_range: None,
    };
    p.items(None, None);
    p.file.annotations = annotations.clone();
    p.file
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
    file: ParsedFile,
    anns: &'a [Annotation],
    ann_cursor: usize,
    /// Token range of the most recently parsed fn body (for fn-level
    /// registry sinks).
    last_block_range: Option<(usize, usize)>,
}

impl Parser<'_> {
    fn tok(&self, at: usize) -> Option<&Tok> {
        self.t.get(at).map(|t| &t.tok)
    }

    fn line(&self, at: usize) -> u32 {
        self.t.get(at).map_or(0, |t| t.line)
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        matches!(self.tok(at), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident_at(&self, at: usize) -> Option<&str> {
        match self.tok(at) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// Annotations strictly before `line` that have not been consumed by
    /// an earlier item.
    fn take_anns_before(&mut self, line: u32) -> Vec<String> {
        let mut out = Vec::new();
        while self.ann_cursor < self.anns.len() && self.anns[self.ann_cursor].line < line {
            out.push(self.anns[self.ann_cursor].text.clone());
            self.ann_cursor += 1;
        }
        out
    }

    /// Skips a balanced delimiter group starting at `self.i` (which must
    /// be on the opener). Leaves `self.i` after the closer. Returns the
    /// token range covered (inclusive of delimiters).
    fn skip_group(&mut self, open: char, close: char) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0usize;
        while self.i < self.t.len() {
            if self.is_punct(self.i, open) {
                depth += 1;
            } else if self.is_punct(self.i, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return (start, self.i);
                }
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Skips to just past the next `;` at delimiter depth 0, returning
    /// the covered range.
    fn skip_to_semi(&mut self) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0isize;
        while self.i < self.t.len() {
            match self.tok(self.i) {
                Some(Tok::Punct(c)) => match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth <= 0 => {
                        self.i += 1;
                        return (start, self.i);
                    }
                    _ => {}
                },
                None => break,
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Skips `#[…]` attributes at `self.i`; returns true if any of them
    /// was `#[cfg(test)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut is_test = false;
        while self.is_punct(self.i, '#') {
            self.i += 1;
            if self.is_punct(self.i, '!') {
                self.i += 1;
            }
            if self.is_punct(self.i, '[') {
                let (s, e) = self.skip_group('[', ']');
                let mut has_cfg = false;
                let mut has_test = false;
                for t in &self.t[s..e] {
                    if let Tok::Ident(id) = &t.tok {
                        if id == "cfg" {
                            has_cfg = true;
                        }
                        if id == "test" {
                            has_test = true;
                        }
                    }
                }
                if has_cfg && has_test {
                    is_test = true;
                }
            } else {
                break;
            }
        }
        is_test
    }

    /// Parses items until end of input or an unmatched `}` (end of the
    /// enclosing `mod`/`impl` body).
    fn items(&mut self, owner: Option<&str>, trait_name: Option<&str>) {
        while self.i < self.t.len() {
            if self.is_punct(self.i, '}') {
                return;
            }
            let attr_line = self.line(self.i);
            let is_test = self.skip_attrs();
            let anns = self.take_anns_before(if is_test { attr_line } else { self.line(self.i) });
            let kw = match self.ident_at(self.i) {
                Some(k) => k.to_owned(),
                None => {
                    // Stray punctuation at item level; skip it.
                    self.i += 1;
                    continue;
                }
            };
            match kw.as_str() {
                "pub" | "unsafe" | "async" | "extern" | "default" => {
                    self.i += 1;
                    // `pub(crate)` visibility argument.
                    if self.is_punct(self.i, '(') {
                        self.skip_group('(', ')');
                    }
                    // Re-attach annotations to the real item keyword.
                    for a in anns.into_iter().rev() {
                        self.push_back_ann(a, attr_line);
                    }
                    continue;
                }
                "struct" | "enum" | "union" => self.item_struct(is_test),
                "trait" => self.item_trait(is_test),
                "impl" => self.item_impl(is_test, &anns),
                "fn" => self.item_fn(owner, trait_name, is_test, anns),
                "mod" => self.item_mod(is_test),
                "const" | "static" | "type" => self.item_const(is_test, &anns),
                "use" | "macro_rules" => {
                    self.i += 1;
                    if kw == "macro_rules" {
                        // macro_rules! name { … }
                        while self.i < self.t.len() && !self.is_punct(self.i, '{') {
                            self.i += 1;
                        }
                        self.skip_group('{', '}');
                    } else {
                        self.skip_to_semi();
                    }
                }
                _ => {
                    self.i += 1;
                }
            }
        }
    }

    /// Re-queues an annotation that was taken too early (before a
    /// visibility qualifier).
    fn push_back_ann(&mut self, _text: String, _line: u32) {
        // Annotations are consumed by line cursor; rewinding the cursor
        // re-attaches them to the next item.
        self.ann_cursor = self.ann_cursor.saturating_sub(1);
    }

    fn item_struct(&mut self, is_test: bool) {
        self.i += 1; // struct/enum/union
        let name = self.ident_at(self.i).unwrap_or("").to_owned();
        self.i += 1;
        self.skip_generics();
        // Tuple struct `struct X(…);` or unit `struct X;`.
        if self.is_punct(self.i, '(') {
            self.skip_group('(', ')');
            self.skip_to_semi();
            if !is_test && !name.is_empty() {
                self.file.structs.push(StructDef { name, fields: Vec::new() });
            }
            return;
        }
        if self.is_punct(self.i, ';') {
            self.i += 1;
            if !is_test && !name.is_empty() {
                self.file.structs.push(StructDef { name, fields: Vec::new() });
            }
            return;
        }
        // `where` clause then `{ fields }`.
        while self.i < self.t.len() && !self.is_punct(self.i, '{') {
            self.i += 1;
        }
        let (s, e) = self.skip_group('{', '}');
        if is_test || name.is_empty() {
            return;
        }
        let fields = parse_fields(&self.t[s + 1..e.saturating_sub(1)]);
        self.file.structs.push(StructDef { name, fields });
    }

    fn item_trait(&mut self, is_test: bool) {
        self.i += 1; // trait
        let name = self.ident_at(self.i).unwrap_or("").to_owned();
        self.i += 1;
        if !is_test && !name.is_empty() {
            self.file.traits.push(name.clone());
        }
        while self.i < self.t.len() && !self.is_punct(self.i, '{') && !self.is_punct(self.i, ';') {
            self.i += 1;
        }
        if self.is_punct(self.i, ';') {
            self.i += 1;
            return;
        }
        self.i += 1; // {
        self.items(None, if is_test { None } else { Some(&name) });
        if self.is_punct(self.i, '}') {
            self.i += 1;
        }
    }

    fn item_impl(&mut self, is_test: bool, anns: &[String]) {
        self.i += 1; // impl
        self.skip_generics();
        // Collect path idents up to `{`, noting a `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        let start = self.i;
        while self.i < self.t.len() && !self.is_punct(self.i, '{') {
            match self.tok(self.i) {
                Some(Tok::Ident(id)) if id == "for" => seen_for = true,
                Some(Tok::Ident(id)) if id == "where" => break,
                Some(Tok::Ident(id)) if id != "dyn" && id != "mut" => {
                    if seen_for {
                        after_for.push(id.clone());
                    } else {
                        before_for.push(id.clone());
                    }
                }
                Some(Tok::Punct('<')) => {
                    // Skip generic arguments in the path.
                    let mut depth = 0isize;
                    while self.i < self.t.len() {
                        if self.is_punct(self.i, '<') {
                            depth += 1;
                        } else if self.is_punct(self.i, '>') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if self.is_punct(self.i, '{') {
                            break;
                        }
                        self.i += 1;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        while self.i < self.t.len() && !self.is_punct(self.i, '{') {
            self.i += 1;
        }
        let _ = start;
        let (trait_name, owner) = if seen_for {
            (before_for.last().cloned(), after_for.first().cloned())
        } else {
            (None, before_for.first().cloned())
        };
        let body_start = self.i;
        if !is_test {
            if let (Some(t), Some(o)) = (&trait_name, &owner) {
                self.file.trait_impls.push((t.clone(), o.clone()));
            }
        }
        // Registry sink on the whole impl: collect literals from its
        // extent before descending into items.
        let sink_kind = sink_kind_of(anns);
        if let Some(kind) = sink_kind {
            let save = self.i;
            let (s, e) = self.skip_group('{', '}');
            self.record_sink(&kind, s, e);
            self.i = save;
        }
        self.i = body_start + 1; // past {
        let owner_s = owner.unwrap_or_default();
        let trait_s = trait_name.unwrap_or_default();
        self.items(
            if is_test || owner_s.is_empty() { None } else { Some(&owner_s) },
            if is_test || trait_s.is_empty() { None } else { Some(&trait_s) },
        );
        if self.is_punct(self.i, '}') {
            self.i += 1;
        }
    }

    fn item_mod(&mut self, is_test: bool) {
        self.i += 1; // mod
        self.i += 1; // name
        if self.is_punct(self.i, ';') {
            self.i += 1;
            return;
        }
        if self.is_punct(self.i, '{') {
            if is_test {
                self.skip_group('{', '}');
            } else {
                self.i += 1;
                self.items(None, None);
                if self.is_punct(self.i, '}') {
                    self.i += 1;
                }
            }
        }
    }

    fn item_const(&mut self, is_test: bool, anns: &[String]) {
        let line = self.line(self.i);
        let (s, e) = self.skip_to_semi();
        if is_test {
            return;
        }
        for a in anns {
            if let Some(kind) = a.strip_prefix("registry ") {
                let (strs, ints) = collect_literals(&self.t[s..e]);
                self.file.registries.push(RegistryDecl {
                    kind: kind.trim().to_owned(),
                    path: self.file.path.clone(),
                    line,
                    strs,
                    ints,
                });
            }
        }
        if let Some(kind) = sink_kind_of(anns) {
            self.record_sink(&kind, s, e);
        }
    }

    fn record_sink(&mut self, kind: &str, s: usize, e: usize) {
        let strs = collect_literals(&self.t[s..e]).0;
        let ints = collect_tag_ints(&self.t[s..e]);
        self.file.sinks.push(SinkDecl {
            kind: kind.to_owned(),
            path: self.file.path.clone(),
            strs,
            ints,
        });
    }

    fn item_fn(
        &mut self,
        owner: Option<&str>,
        trait_name: Option<&str>,
        is_test: bool,
        anns: Vec<String>,
    ) {
        let line = self.line(self.i);
        self.i += 1; // fn
        let name = self.ident_at(self.i).unwrap_or("").to_owned();
        self.i += 1;
        self.skip_generics();
        let mut params = Vec::new();
        if self.is_punct(self.i, '(') {
            let (s, e) = self.skip_group('(', ')');
            params = parse_params(&self.t[s + 1..e.saturating_sub(1)]);
        }
        // Return type: tokens between `->` and the body/`;`/`where`.
        let mut ret = String::new();
        if self.is_punct(self.i, '-') && self.is_punct(self.i + 1, '>') {
            self.i += 2;
            while self.i < self.t.len() {
                match self.tok(self.i) {
                    Some(Tok::Punct('{')) | Some(Tok::Punct(';')) => break,
                    Some(Tok::Ident(id)) if id == "where" => break,
                    Some(Tok::Ident(id)) => {
                        if !ret.is_empty() {
                            ret.push(' ');
                        }
                        ret.push_str(id);
                    }
                    Some(Tok::Punct(c)) => ret.push(*c),
                    _ => {}
                }
                self.i += 1;
            }
        }
        while self.i < self.t.len() && !self.is_punct(self.i, '{') && !self.is_punct(self.i, ';') {
            self.i += 1;
        }
        let mut body = None;
        if self.is_punct(self.i, '{') {
            if is_test {
                self.skip_group('{', '}');
                self.last_block_range = None;
            } else {
                let body_open = self.i;
                self.i += 1;
                let mut b = self.block();
                mark_tail(&mut b);
                body = Some(b);
                self.last_block_range = Some((body_open, self.i));
            }
        } else if self.is_punct(self.i, ';') {
            self.i += 1;
            self.last_block_range = None;
        }
        // Registry sink on a single fn.
        if !is_test {
            if let Some(kind) = sink_kind_of(&anns) {
                // Re-scan the fn extent for literals (body token range is
                // no longer available; use annotation-free collection from
                // the body we just left). Simpler: sinks on fns re-lex the
                // covered lines — instead collect from the events we kept.
                // The body extent ended at self.i; find it by scanning
                // backwards is brittle, so sink-on-fn collects from the
                // token range recorded during block parsing.
                if let Some(range) = self.last_block_range {
                    self.record_sink(&kind, range.0, range.1);
                }
            }
            self.file.fns.push(FnDef {
                path: self.file.path.clone(),
                line,
                owner: owner.map(str::to_owned),
                trait_name: trait_name.map(str::to_owned),
                name,
                params,
                ret,
                body,
                anns,
            });
        }
    }

    fn skip_generics(&mut self) {
        if !self.is_punct(self.i, '<') {
            return;
        }
        let mut depth = 0isize;
        while self.i < self.t.len() {
            if self.is_punct(self.i, '<') {
                depth += 1;
            } else if self.is_punct(self.i, '>') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            } else if self.is_punct(self.i, '-') && self.is_punct(self.i + 1, '>') {
                self.i += 1; // `->` in fn-pointer bounds: skip the `>`
            } else if self.is_punct(self.i, '{') || self.is_punct(self.i, ';') {
                return;
            }
            self.i += 1;
        }
    }
}

/// Parses `name: Type, …` field lists.
fn parse_fields(toks: &[Token]) -> Vec<(String, String)> {
    split_commas(toks)
        .into_iter()
        .filter_map(|part| {
            let colon = part.iter().position(|t| matches!(t.tok, Tok::Punct(':')))?;
            // Skip `pub`/`pub(crate)` before the name.
            let name = part[..colon]
                .iter()
                .rev()
                .find_map(|t| match &t.tok {
                    Tok::Ident(s) if s != "pub" && s != "crate" && s != "r#" => Some(s.clone()),
                    _ => None,
                })?;
            Some((name, type_string(&part[colon + 1..])))
        })
        .collect()
}

/// Parses a fn parameter list; `self` receivers are dropped.
fn parse_params(toks: &[Token]) -> Vec<(String, String)> {
    split_commas(toks)
        .into_iter()
        .filter_map(|part| {
            let colon = part.iter().position(|t| matches!(t.tok, Tok::Punct(':')))?;
            let name = part[..colon].iter().rev().find_map(|t| match &t.tok {
                Tok::Ident(s) if s != "mut" && s != "ref" => Some(s.clone()),
                _ => None,
            })?;
            if name == "self" {
                return None;
            }
            Some((name, type_string(&part[colon + 1..])))
        })
        .collect()
}

/// Splits a token slice at top-level commas (delimiters and generics
/// tracked).
fn split_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut parts = Vec::new();
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut start = 0usize;
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct('<') => angle += 1,
            // `->` does not close a generic.
            Tok::Punct('>') if k == 0 || !matches!(toks[k - 1].tok, Tok::Punct('-')) => {
                angle = (angle - 1).max(0);
            }
            Tok::Punct(',') if depth == 0 && angle == 0 => {
                parts.push(&toks[start..k]);
                start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    if start < toks.len() {
        parts.push(&toks[start..]);
    }
    parts
}

/// Joins tokens into a normalized type string.
fn type_string(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        match &t.tok {
            Tok::Ident(id) => {
                if !s.is_empty() && !s.ends_with(['<', '&', ':', '(']) {
                    s.push(' ');
                }
                s.push_str(id);
            }
            Tok::Punct(c) => s.push(*c),
            Tok::Lifetime(_) => {}
            _ => {}
        }
    }
    s
}

/// Extracts `registry-sink <kind>` from annotations.
fn sink_kind_of(anns: &[String]) -> Option<String> {
    anns.iter()
        .find_map(|a| a.strip_prefix("registry-sink ").map(|k| k.trim().to_owned()))
}

/// String literals with the lines they appear on.
type StrLits = Vec<(String, u32)>;
/// Integer literals with the lines they appear on.
type IntLits = Vec<(u64, u32)>;

/// Collects all string and integer literals with lines.
fn collect_literals(toks: &[Token]) -> (StrLits, IntLits) {
    let mut strs = Vec::new();
    let mut ints = Vec::new();
    for t in toks {
        match &t.tok {
            Tok::Str(s) => strs.push((s.clone(), t.line)),
            Tok::Int(v) => ints.push((*v, t.line)),
            _ => {}
        }
    }
    (strs, ints)
}

/// Collects tag-position integers: `put_u8(N)` arguments and integers
/// immediately adjacent to a `=>` (match-arm pattern or body).
fn collect_tag_ints(toks: &[Token]) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        let Tok::Int(v) = &t.tok else { continue };
        if *v > 255 {
            continue;
        }
        // put_u8 ( N )
        let as_put_arg = k >= 2
            && matches!(&toks[k - 1].tok, Tok::Punct('('))
            && matches!(&toks[k - 2].tok, Tok::Ident(id) if id == "put_u8");
        // N =>   (pattern)
        let before_arrow = k + 2 < toks.len()
            && matches!(&toks[k + 1].tok, Tok::Punct('='))
            && matches!(&toks[k + 2].tok, Tok::Punct('>'));
        // => N   (arm body)
        let after_arrow = k >= 2
            && matches!(&toks[k - 1].tok, Tok::Punct('>'))
            && matches!(&toks[k - 2].tok, Tok::Punct('='));
        if as_put_arg || before_arrow || after_arrow {
            out.push((*v, t.line));
        }
    }
    out
}

impl Parser<'_> {
    /// Parses statements until the matching `}`; consumes the closer.
    fn block(&mut self) -> Block {
        let mut stmts = Vec::new();
        while self.i < self.t.len() {
            if self.is_punct(self.i, '}') {
                self.i += 1;
                break;
            }
            if self.is_punct(self.i, ';') {
                self.i += 1;
                continue;
            }
            self.skip_attrs();
            let line = self.line(self.i);
            match self.ident_at(self.i) {
                Some("let") => stmts.push(self.stmt_let(line)),
                Some("if") => stmts.push(self.stmt_if(line)),
                Some("match") => stmts.push(self.stmt_match(line)),
                Some("loop") | Some("while") | Some("for") => stmts.push(self.stmt_loop(line)),
                Some("return") => {
                    self.i += 1;
                    let (s, e) = self.expr_range(false);
                    let toks = &self.t[s..e];
                    let (events, idents, has_try) = extract_events(toks);
                    let first = toks.iter().find_map(|t| match &t.tok {
                        Tok::Ident(id) => Some(id.clone()),
                        _ => None,
                    });
                    stmts.push(Stmt::Return { events, idents, first, has_try, line });
                }
                Some("break") => {
                    self.expr_range(false);
                    stmts.push(Stmt::Break { line });
                }
                Some("continue") => {
                    self.expr_range(false);
                    stmts.push(Stmt::Continue { line });
                }
                Some("unsafe") if self.is_punct(self.i + 1, '{') => {
                    self.i += 2;
                    stmts.push(Stmt::Nested(self.block()));
                }
                Some("fn") => {
                    // Nested fn item inside a body: parse and discard
                    // (its calls are not this fn's calls).
                    self.item_fn(None, None, true, Vec::new());
                }
                _ => {
                    if self.is_punct(self.i, '{') {
                        self.i += 1;
                        stmts.push(Stmt::Nested(self.block()));
                    } else {
                        let (s, e) = self.expr_range(false);
                        if e == s {
                            // Defensive: never loop without progress.
                            self.i += 1;
                            continue;
                        }
                        let (events, idents, has_try) = extract_events(&self.t[s..e]);
                        stmts.push(Stmt::Expr { events, idents, has_try, tail: false, line });
                    }
                }
            }
        }
        Block { stmts }
    }

    /// Consumes expression tokens until a `;` (consumed) or the block's
    /// `}` (not consumed) at delimiter depth 0. With `stop_at_else`, a
    /// depth-0 `else` ident also stops (not consumed) for let-else.
    fn expr_range(&mut self, stop_at_else: bool) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0isize;
        while self.i < self.t.len() {
            match self.tok(self.i) {
                Some(Tok::Punct(c)) => match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' => depth -= 1,
                    '}' => {
                        if depth == 0 {
                            return (start, self.i);
                        }
                        depth -= 1;
                    }
                    ';' if depth == 0 => {
                        let end = self.i;
                        self.i += 1;
                        return (start, end);
                    }
                    _ => {}
                },
                Some(Tok::Ident(id)) if stop_at_else && depth == 0 && id == "else" => {
                    return (start, self.i);
                }
                None => break,
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Consumes tokens until a `{` at paren/bracket depth 0 (used for if
    /// conditions, match scrutinees, and loop headers). The `{` is not
    /// consumed.
    fn until_brace(&mut self) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0isize;
        while self.i < self.t.len() {
            match self.tok(self.i) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                Some(Tok::Punct('{')) if depth == 0 => return (start, self.i),
                Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct('}')) => depth -= 1,
                None => break,
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }

    fn stmt_let(&mut self, line: u32) -> Stmt {
        self.i += 1; // let
        // Pattern (and optional type): up to the first depth-0 `=` that
        // is not part of `==`.
        let pat_start = self.i;
        let mut depth = 0isize;
        while self.i < self.t.len() {
            match self.tok(self.i) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => depth += 1,
                Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => depth -= 1,
                Some(Tok::Punct('=')) if depth == 0 && !self.is_punct(self.i + 1, '=') => break,
                Some(Tok::Punct(';')) if depth == 0 => break, // `let x;`
                None => break,
                _ => {}
            }
            self.i += 1;
        }
        let bindings = pattern_bindings(&self.t[pat_start..self.i]);
        if self.is_punct(self.i, ';') {
            self.i += 1;
            return Stmt::Let {
                bindings,
                events: Vec::new(),
                idents: Vec::new(),
                has_try: false,
                else_block: None,
                line,
            };
        }
        self.i += 1; // =
        let (s, e) = self.expr_range(true);
        let (events, idents, has_try) = extract_events(&self.t[s..e]);
        let mut else_block = None;
        if matches!(self.ident_at(self.i), Some("else")) {
            self.i += 1;
            if self.is_punct(self.i, '{') {
                self.i += 1;
                else_block = Some(self.block());
            }
            if self.is_punct(self.i, ';') {
                self.i += 1;
            }
        }
        Stmt::Let { bindings, events, idents, has_try, else_block, line }
    }

    fn stmt_if(&mut self, line: u32) -> Stmt {
        self.i += 1; // if
        let mut cond_bindings = Vec::new();
        if matches!(self.ident_at(self.i), Some("let")) {
            self.i += 1;
            let pat_start = self.i;
            let mut depth = 0isize;
            while self.i < self.t.len() {
                match self.tok(self.i) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                    Some(Tok::Punct('=')) if depth == 0 && !self.is_punct(self.i + 1, '=') => break,
                    None => break,
                    _ => {}
                }
                self.i += 1;
            }
            cond_bindings = pattern_bindings(&self.t[pat_start..self.i]);
            if self.is_punct(self.i, '=') {
                self.i += 1;
            }
        }
        let (s, e) = self.until_brace();
        let (cond, _, cond_try) = extract_events(&self.t[s..e]);
        let mut then_b = Block::default();
        if self.is_punct(self.i, '{') {
            self.i += 1;
            then_b = self.block();
        }
        let mut else_b = None;
        if matches!(self.ident_at(self.i), Some("else")) {
            self.i += 1;
            if matches!(self.ident_at(self.i), Some("if")) {
                let inner_line = self.line(self.i);
                let nested = self.stmt_if(inner_line);
                else_b = Some(Block { stmts: vec![nested] });
            } else if self.is_punct(self.i, '{') {
                self.i += 1;
                else_b = Some(self.block());
            }
        }
        Stmt::If { cond, cond_try, cond_bindings, then_b, else_b, line }
    }

    fn stmt_match(&mut self, line: u32) -> Stmt {
        self.i += 1; // match
        let (s, e) = self.until_brace();
        let (scrutinee, _, scrutinee_try) = extract_events(&self.t[s..e]);
        let mut arms = Vec::new();
        if self.is_punct(self.i, '{') {
            self.i += 1;
            while self.i < self.t.len() && !self.is_punct(self.i, '}') {
                if self.is_punct(self.i, ',') {
                    self.i += 1;
                    continue;
                }
                self.skip_attrs();
                let arm_line = self.line(self.i);
                // Pattern (with optional guard) until depth-0 `=>`.
                let pat_start = self.i;
                let mut depth = 0isize;
                while self.i < self.t.len() {
                    match self.tok(self.i) {
                        Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => {
                            depth += 1;
                        }
                        Some(Tok::Punct(')')) | Some(Tok::Punct(']')) | Some(Tok::Punct('}')) => {
                            depth -= 1;
                        }
                        Some(Tok::Punct('=')) if depth == 0 && self.is_punct(self.i + 1, '>') => {
                            break;
                        }
                        None => break,
                        _ => {}
                    }
                    self.i += 1;
                }
                let bindings = pattern_bindings(&self.t[pat_start..self.i]);
                self.i += 2; // =>
                let body = if self.is_punct(self.i, '{') {
                    self.i += 1;
                    self.block()
                } else {
                    // Expression arm: consume until depth-0 `,` or the
                    // match's closing `}`.
                    let es = self.i;
                    let mut depth = 0isize;
                    while self.i < self.t.len() {
                        match self.tok(self.i) {
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => {
                                depth += 1;
                            }
                            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                            Some(Tok::Punct('}')) => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            Some(Tok::Punct(',')) if depth == 0 => break,
                            None => break,
                            _ => {}
                        }
                        self.i += 1;
                    }
                    let toks = &self.t[es..self.i];
                    let mut stmts = Vec::new();
                    match toks.first().map(|t| &t.tok) {
                        Some(Tok::Ident(id)) if id == "return" => {
                            let inner = &toks[1..];
                            let (events, idents, has_try) = extract_events(inner);
                            let first = inner.iter().find_map(|t| match &t.tok {
                                Tok::Ident(id) => Some(id.clone()),
                                _ => None,
                            });
                            stmts.push(Stmt::Return { events, idents, first, has_try, line: arm_line });
                        }
                        Some(Tok::Ident(id)) if id == "break" => {
                            stmts.push(Stmt::Break { line: arm_line });
                        }
                        Some(Tok::Ident(id)) if id == "continue" => {
                            stmts.push(Stmt::Continue { line: arm_line });
                        }
                        _ => {
                            let (events, idents, has_try) = extract_events(toks);
                            if !events.is_empty() || !idents.is_empty() || has_try {
                                stmts.push(Stmt::Expr {
                                    events,
                                    idents,
                                    has_try,
                                    tail: false,
                                    line: arm_line,
                                });
                            }
                        }
                    }
                    Block { stmts }
                };
                arms.push(Arm { bindings, body, line: arm_line });
            }
            if self.is_punct(self.i, '}') {
                self.i += 1;
            }
        }
        Stmt::Match { scrutinee, scrutinee_try, arms, line }
    }

    fn stmt_loop(&mut self, line: u32) -> Stmt {
        let kw = self.ident_at(self.i).unwrap_or("").to_owned();
        self.i += 1;
        let mut bindings = Vec::new();
        let mut header = Vec::new();
        match kw.as_str() {
            "for" => {
                // for <pat> in <expr> { … }
                let pat_start = self.i;
                while self.i < self.t.len() {
                    if matches!(self.ident_at(self.i), Some("in")) {
                        break;
                    }
                    if self.is_punct(self.i, '{') {
                        break;
                    }
                    self.i += 1;
                }
                bindings = pattern_bindings(&self.t[pat_start..self.i]);
                if matches!(self.ident_at(self.i), Some("in")) {
                    self.i += 1;
                }
                let hline = self.line(self.i);
                let (s, e) = self.until_brace();
                let (mut ev, _, _) = extract_events(&self.t[s..e]);
                // Desugared iterator pull: make the `.next()` visible so
                // "never hold L across the pull" is checkable.
                ev.push(Event::Call(Call {
                    name: "next".to_owned(),
                    recv: Recv::Opaque,
                    line: hline,
                    moved: Vec::new(),
                    first_str: None,
                    only_int: None,
                    sticky_end: true,
                    deferred: false,
                }));
                header = ev;
            }
            "while" => {
                if matches!(self.ident_at(self.i), Some("let")) {
                    self.i += 1;
                    let pat_start = self.i;
                    let mut depth = 0isize;
                    while self.i < self.t.len() {
                        match self.tok(self.i) {
                            Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => depth += 1,
                            Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => depth -= 1,
                            Some(Tok::Punct('=')) if depth == 0 && !self.is_punct(self.i + 1, '=') => {
                                break;
                            }
                            None => break,
                            _ => {}
                        }
                        self.i += 1;
                    }
                    bindings = pattern_bindings(&self.t[pat_start..self.i]);
                    if self.is_punct(self.i, '=') {
                        self.i += 1;
                    }
                }
                let (s, e) = self.until_brace();
                header = extract_events(&self.t[s..e]).0;
            }
            _ => {}
        }
        let mut body = Block::default();
        if self.is_punct(self.i, '{') {
            self.i += 1;
            body = self.block();
        }
        Stmt::Loop { header, bindings, body, line }
    }
}

const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "_", "in"];

/// Extracts lowercase idents bound by a pattern (struct-field names,
/// path segments, and guard expressions excluded).
fn pattern_bindings(toks: &[Token]) -> Vec<String> {
    // Cut at a depth-0 `if` (match-arm guard).
    let mut cut = toks.len();
    let mut depth = 0isize;
    for (k, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Ident(id) if id == "if" && depth == 0 => {
                cut = k;
                break;
            }
            _ => {}
        }
    }
    let toks = &toks[..cut];
    let mut out = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        let first = id.chars().next().unwrap_or('_');
        if !(first.is_lowercase() || first == '_') || PATTERN_KEYWORDS.contains(&id.as_str()) {
            continue;
        }
        // Path segment (`x::y`) or preceded by `.`? Not a binding.
        if k >= 1 && matches!(&toks[k - 1].tok, Tok::Punct(':') | Tok::Punct('.')) {
            continue;
        }
        // Struct-field name (`Foo { msg: m }`): ident followed by a
        // single `:`.
        if k + 1 < toks.len()
            && matches!(&toks[k + 1].tok, Tok::Punct(':'))
            && !(k + 2 < toks.len() && matches!(&toks[k + 2].tok, Tok::Punct(':')))
        {
            continue;
        }
        if !out.contains(id) {
            out.push(id.clone());
        }
    }
    out
}

const IDENT_KEYWORDS: &[&str] = &[
    "mut", "ref", "move", "if", "else", "match", "return", "as", "in", "let", "self", "fn",
    "loop", "while", "for", "break", "continue", "true", "false", "await", "dyn", "impl",
];

/// Extracts call/drop events, bare idents, and try-ness from a flat
/// expression token slice. Nested regions (closures, arguments, macro
/// bodies) are scanned inline, so their calls appear in source order.
pub fn extract_events(toks: &[Token]) -> (Vec<Event>, Vec<String>, bool) {
    let deferred_ranges = closure_ranges(toks);
    let in_deferred =
        |k: usize| deferred_ranges.iter().any(|(s, e)| k >= *s && k < *e);
    let mut events = Vec::new();
    let mut idents = Vec::new();
    let mut has_try = false;
    let mut depth = 0isize;
    let mut k = 0usize;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => depth -= 1,
            Tok::Punct('?') if !in_deferred(k) => has_try = true,
            Tok::Ident(name) => {
                let called = k + 1 < toks.len() && matches!(&toks[k + 1].tok, Tok::Punct('('));
                let is_macro = k + 1 < toks.len() && matches!(&toks[k + 1].tok, Tok::Punct('!'));
                if called {
                    let recv = receiver_of(toks, k);
                    let close = matching_paren(toks, k + 1);
                    let region = &toks[k + 2..close.min(toks.len())];
                    let (moved, first_str, only_int) = call_args(region);
                    // Sticky: the chain ends here AND the call is the
                    // statement's outermost expression (a guard nested in
                    // another call's arguments is a temporary that dies at
                    // the semicolon, never a bindable guard).
                    let sticky_end = depth == 0 && {
                        let mut after = close + 1;
                        if after < toks.len() && matches!(&toks[after].tok, Tok::Punct('?')) {
                            after += 1;
                        }
                        !(after < toks.len() && matches!(&toks[after].tok, Tok::Punct('.')))
                    };
                    if name == "drop" && recv == Recv::Free && region.len() == 1 && moved.len() == 1
                    {
                        events.push(Event::Drop { var: moved[0].clone(), line: toks[k].line });
                    } else {
                        events.push(Event::Call(Call {
                            name: name.clone(),
                            recv,
                            line: toks[k].line,
                            moved,
                            first_str,
                            only_int,
                            sticky_end,
                            deferred: in_deferred(k),
                        }));
                    }
                } else if !is_macro {
                    let first = name.chars().next().unwrap_or('_');
                    let path_or_field = k >= 1
                        && matches!(&toks[k - 1].tok, Tok::Punct('.') | Tok::Punct(':'));
                    let field_name = k + 1 < toks.len()
                        && matches!(&toks[k + 1].tok, Tok::Punct(':'))
                        && !(k + 2 < toks.len() && matches!(&toks[k + 2].tok, Tok::Punct(':')));
                    if (first.is_lowercase() || first == '_')
                        && !IDENT_KEYWORDS.contains(&name.as_str())
                        && !path_or_field
                        && !field_name
                        && !idents.contains(name)
                    {
                        idents.push(name.clone());
                    }
                }
            }
            _ => {}
        }
        k += 1;
    }
    (events, idents, has_try)
}

/// Half-open token ranges covered by brace-bodied closure literals
/// (`|…| { … }`, `move || { … }`). Their bodies execute when the
/// closure is invoked — possibly never, possibly on another thread —
/// so calls inside must not be attributed to the building statement's
/// lock scope. Expression-bodied closures (`|x| x + 1`) are left
/// inline: they are overwhelmingly immediate iterator adapters.
fn closure_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if matches!(&toks[k].tok, Tok::Punct('|')) && !operand_before(toks, k) {
            // Parameter list: `||` or `|a, b: T|`.
            let mut j = k + 1;
            while j < toks.len() && !matches!(&toks[j].tok, Tok::Punct('|')) {
                j += 1;
            }
            let body = j + 1;
            if body < toks.len() && matches!(&toks[body].tok, Tok::Punct('{')) {
                let end = matching_brace(toks, body);
                out.push((body, (end + 1).min(toks.len())));
                k = end + 1;
                continue;
            }
            k = body;
            continue;
        }
        k += 1;
    }
    out
}

/// Whether the token before `k` ends an operand — making a `|` at `k`
/// a binary/pattern `|` rather than a closure's parameter bar.
fn operand_before(toks: &[Token], k: usize) -> bool {
    let Some(prev) = k.checked_sub(1).and_then(|i| toks.get(i)) else {
        return false;
    };
    match &prev.tok {
        Tok::Ident(id) => !IDENT_KEYWORDS.contains(&id.as_str()),
        Tok::Int(_) | Tok::Num | Tok::Str(_) | Tok::Char => true,
        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('?') => true,
        _ => false,
    }
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut k = open;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0isize;
    let mut k = open;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len()
}

/// Moved bare-ident args, first string literal, and sole-int arg of a
/// call argument region.
fn call_args(region: &[Token]) -> (Vec<String>, Option<String>, Option<u64>) {
    let mut moved = Vec::new();
    let first_str = region.iter().find_map(|t| match &t.tok {
        Tok::Str(s) => Some(s.clone()),
        _ => None,
    });
    let only_int = if region.len() == 1 {
        match &region[0].tok {
            Tok::Int(v) => Some(*v),
            _ => None,
        }
    } else {
        None
    };
    for part in split_commas(region) {
        if part.len() == 1 {
            if let Tok::Ident(id) = &part[0].tok {
                let first = id.chars().next().unwrap_or('_');
                if (first.is_lowercase() || first == '_')
                    && id != "self"
                    && !IDENT_KEYWORDS.contains(&id.as_str())
                {
                    moved.push(id.clone());
                }
            }
        }
    }
    (moved, first_str, only_int)
}

/// Determines the receiver of the call whose name token is at `k`.
fn receiver_of(toks: &[Token], k: usize) -> Recv {
    if k == 0 {
        return Recv::Free;
    }
    if matches!(&toks[k - 1].tok, Tok::Punct('.')) {
        // Walk the chain backwards: self/local fields, `]` index groups,
        // `)` call results.
        let mut segs: Vec<String> = Vec::new();
        let mut j = k as isize - 2;
        loop {
            if j < 0 {
                return Recv::Opaque;
            }
            match &toks[j as usize].tok {
                Tok::Punct(')') | Tok::Punct('?') => {
                    // Chained off a call (possibly through `?`): find the
                    // call's name for resolution.
                    let mut jj = j as usize;
                    if matches!(&toks[jj].tok, Tok::Punct('?')) {
                        if jj == 0 {
                            return Recv::Opaque;
                        }
                        jj -= 1;
                    }
                    if !matches!(&toks[jj].tok, Tok::Punct(')')) {
                        return Recv::Opaque;
                    }
                    let mut depth = 0isize;
                    loop {
                        match &toks[jj].tok {
                            Tok::Punct(')') => depth += 1,
                            Tok::Punct('(') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if jj == 0 {
                            return Recv::Opaque;
                        }
                        jj -= 1;
                    }
                    if jj >= 1 {
                        if let Tok::Ident(prev) = &toks[jj - 1].tok {
                            return Recv::Chained { prev: prev.clone() };
                        }
                    }
                    return Recv::Opaque;
                }
                Tok::Punct(']') => {
                    // Skip the index group.
                    let mut depth = 0isize;
                    loop {
                        match &toks[j as usize].tok {
                            Tok::Punct(']') => depth += 1,
                            Tok::Punct('[') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j -= 1;
                        if j < 0 {
                            return Recv::Opaque;
                        }
                    }
                    j -= 1; // before the `[`
                }
                Tok::Ident(seg) => {
                    segs.push(seg.clone());
                    if j >= 1 && matches!(&toks[j as usize - 1].tok, Tok::Punct('.')) {
                        j -= 2;
                    } else {
                        break;
                    }
                }
                _ => return Recv::Opaque,
            }
        }
        segs.reverse();
        let base = segs.remove(0);
        if base == "self" {
            return Recv::SelfChain(segs);
        }
        let first = base.chars().next().unwrap_or('_');
        if first.is_lowercase() || first == '_' {
            return Recv::Local(base, segs);
        }
        return Recv::Opaque;
    }
    if k >= 2
        && matches!(&toks[k - 1].tok, Tok::Punct(':'))
        && matches!(&toks[k - 2].tok, Tok::Punct(':'))
    {
        if k >= 3 {
            if let Tok::Ident(base) = &toks[k - 3].tok {
                return Recv::Type(base.clone());
            }
        }
        return Recv::Opaque;
    }
    Recv::Free
}

/// Marks the tail expression(s) of a block (recursing into branch
/// constructs in tail position).
fn mark_tail(block: &mut Block) {
    if let Some(last) = block.stmts.last_mut() {
        match last {
            Stmt::Expr { tail, .. } => *tail = true,
            Stmt::If { then_b, else_b, .. } => {
                mark_tail(then_b);
                if let Some(e) = else_b {
                    mark_tail(e);
                }
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    mark_tail(&mut a.body);
                }
            }
            Stmt::Nested(b) => mark_tail(b),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
struct Queue {
    store: Mutex<MessageStore>,
    gate: Arc<RwLock<()>>,
}

impl Queue {
    // lint: custody(msg, err-reverts)
    fn put(&self, msg: Message) -> MqResult<()> {
        let _gate = self.gate.read();
        let mut store = self.store.lock();
        self.check_open(&store)?;
        self.insert(&mut store, msg, false);
        drop(store);
        Ok(())
    }

    fn drain(&self) {
        for rec in self.pending.iter() {
            match rec {
                Ok(Some(mut envelope)) => self.push(envelope),
                Ok(None) => break,
                Err(_) => return,
            }
        }
    }
}

impl WireEncode for JournalRecord {
    fn encode(&self) {}
}
"#;

    #[test]
    fn structs_impls_and_fns_are_recorded() {
        let f = parse_file("x.rs", SRC);
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.structs[0].fields[0], ("store".into(), "Mutex<MessageStore>".into()));
        assert!(f.trait_impls.contains(&("WireEncode".into(), "JournalRecord".into())));
        let put = f.fns.iter().find(|d| d.name == "put").unwrap();
        assert_eq!(put.owner.as_deref(), Some("Queue"));
        assert_eq!(put.params, vec![("msg".to_string(), "Message".to_string())]);
        assert_eq!(put.anns, vec!["custody(msg, err-reverts)".to_string()]);
    }

    #[test]
    fn lock_chains_moves_and_drops_are_events() {
        let f = parse_file("x.rs", SRC);
        let put = f.fns.iter().find(|d| d.name == "put").unwrap();
        let body = put.body.as_ref().unwrap();
        // let _gate = self.gate.read();
        let Stmt::Let { bindings, events, .. } = &body.stmts[0] else { panic!() };
        assert_eq!(bindings, &["_gate".to_string()]);
        let Event::Call(c) = &events[0] else { panic!() };
        assert_eq!(c.name, "read");
        assert_eq!(c.recv, Recv::SelfChain(vec!["gate".into()]));
        assert!(c.sticky_end);
        // self.check_open(&store)? has a try
        let Stmt::Expr { has_try, .. } = &body.stmts[2] else { panic!() };
        assert!(has_try);
        // self.insert(&mut store, msg, false) moves msg
        let Stmt::Expr { events, .. } = &body.stmts[3] else { panic!() };
        let Event::Call(c) = &events[0] else { panic!() };
        assert_eq!(c.moved, vec!["msg".to_string()]);
        // drop(store)
        let Stmt::Expr { events, .. } = &body.stmts[4] else { panic!() };
        assert!(matches!(&events[0], Event::Drop { var, .. } if var == "store"));
        // tail Ok(()) marked
        assert!(matches!(body.stmts.last(), Some(Stmt::Expr { tail: true, .. })));
    }

    #[test]
    fn for_loops_and_match_arms_parse() {
        let f = parse_file("x.rs", SRC);
        let drain = f.fns.iter().find(|d| d.name == "drain").unwrap();
        let body = drain.body.as_ref().unwrap();
        let Stmt::Loop { header, body: lb, .. } = &body.stmts[0] else { panic!() };
        // synthesized iterator pull
        assert!(header.iter().any(|e| matches!(e, Event::Call(c) if c.name == "next")));
        let Stmt::Match { arms, .. } = &lb.stmts[0] else { panic!() };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].bindings, vec!["envelope".to_string()]);
        assert!(matches!(arms[1].body.stmts[0], Stmt::Break { .. }));
        assert!(matches!(arms[2].body.stmts[0], Stmt::Return { .. }));
    }
}
