//! `cond-lint` CLI: scans the workspace's non-vendor crates for
//! project-specific hazards. See the library docs for the rules.
//!
//! Usage: `cond-lint [--deny] [--root DIR] [--allow FILE]`
//!
//! * `--deny`  — exit non-zero when any unallowed finding remains.
//! * `--root`  — workspace root to scan (default: current directory).
//! * `--allow` — allowlist file (default: `<root>/lint.allow` if present).

use std::path::PathBuf;
use std::process::ExitCode;

use cond_lint::{run_all, Allowlist};

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut allow_file: Option<PathBuf> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match argv.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root requires a directory"),
            },
            "--allow" => match argv.next() {
                Some(file) => allow_file = Some(PathBuf::from(file)),
                None => return usage("--allow requires a file"),
            },
            "--help" | "-h" => {
                println!("usage: cond-lint [--deny] [--root DIR] [--allow FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let allow_path = allow_file.unwrap_or_else(|| root.join("lint.allow"));
    let allowlist = if allow_path.is_file() {
        match std::fs::read_to_string(&allow_path) {
            Ok(text) => match Allowlist::parse(&text) {
                Ok(list) => list,
                Err(e) => {
                    eprintln!("cond-lint: {}: {e}", allow_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("cond-lint: {}: {e}", allow_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::default()
    };

    let findings = match run_all(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cond-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let mut reported = 0usize;
    let mut allowed = 0usize;
    for finding in &findings {
        if allowlist.allows(finding) {
            allowed += 1;
            continue;
        }
        println!("{finding}");
        reported += 1;
    }
    eprintln!(
        "cond-lint: {reported} finding(s){}{}",
        if allowed > 0 {
            format!(", {allowed} allowlisted")
        } else {
            String::new()
        },
        if deny { " [--deny]" } else { "" }
    );

    if deny && reported > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("cond-lint: {problem}\nusage: cond-lint [--deny] [--root DIR] [--allow FILE]");
    ExitCode::from(2)
}
