//! Pre-registered metric handles for the conditional-messaging layer.
//!
//! Both services resolve their cells once, at construction, against the
//! owning queue manager's [`mq::Obs`] registry (naming scheme
//! `cond.<area>.<metric>`); hot paths then only touch the atomic cells.

use std::sync::Arc;

use mq::{Counter, Gauge, Histogram, MetricsRegistry};

/// Sender-side (evaluation manager) metrics.
#[derive(Debug)]
pub(crate) struct MessengerMetrics {
    /// Conditional messages sent (`cond.sent`).
    pub sent: Arc<Counter>,
    /// Fan-out copies staged across all sends (`cond.fanout`).
    pub fanout: Arc<Counter>,
    /// Evaluation-manager pump cycles (`cond.pump.iterations`).
    pub pump_iterations: Arc<Counter>,
    /// Read acknowledgments applied (`cond.ack.read`).
    pub acks_read: Arc<Counter>,
    /// Processed acknowledgments applied (`cond.ack.processed`).
    pub acks_processed: Arc<Counter>,
    /// Lag between an ack's receiver-side timestamp and the pump applying
    /// it, in simtime milliseconds (`cond.ack.lag_ms`).
    pub ack_lag_ms: Arc<Histogram>,
    /// Evaluations decided successful (`cond.verdict.success`).
    pub verdict_success: Arc<Counter>,
    /// Evaluations decided failed, timeouts included
    /// (`cond.verdict.failure`).
    pub verdict_failure: Arc<Counter>,
    /// The failures caused by evaluation-timeout expiry
    /// (`cond.verdict.timeout`).
    pub verdict_timeout: Arc<Counter>,
    /// Parked compensations released to destinations
    /// (`cond.comp.released`).
    pub comp_released: Arc<Counter>,
    /// Parked compensations consumed on success (`cond.comp.consumed`).
    pub comp_consumed: Arc<Counter>,
    /// Success notifications staged (`cond.notify.success`).
    pub notify_success: Arc<Counter>,
    /// Conditional messages still under evaluation
    /// (`cond.pending.depth`, with high-water mark).
    pub pending_depth: Arc<Gauge>,
    /// Decided messages whose outcome actions are deferred to a D-Sphere
    /// (`cond.deferred.depth`).
    pub deferred_depth: Arc<Gauge>,
    /// O(depth) incremental condition-cell updates applied by acks and
    /// timer fires (`cond.eval.incremental_updates`).
    pub eval_incremental_updates: Arc<Counter>,
    /// Armed deadline/timeout timers that fired for a pending message
    /// (`cond.eval.timer_fires`).
    pub eval_timer_fires: Arc<Counter>,
    /// Acks drained per ack-queue transaction (`cond.ack.batch_size`).
    pub ack_batch_size: Arc<Histogram>,
    /// Condition trees run through the static analyzer at send time
    /// (`cond.analyze.runs`).
    pub analyze_runs: Arc<Counter>,
    /// Warning-severity analyzer diagnostics across all sends
    /// (`cond.analyze.warnings`).
    pub analyze_warnings: Arc<Counter>,
    /// Sends rejected by error-severity analyzer diagnostics
    /// (`cond.analyze.rejected`).
    pub analyze_rejected: Arc<Counter>,
}

impl MessengerMetrics {
    pub fn registered(registry: &MetricsRegistry) -> MessengerMetrics {
        MessengerMetrics {
            sent: registry.counter("cond.sent"),
            fanout: registry.counter("cond.fanout"),
            pump_iterations: registry.counter("cond.pump.iterations"),
            acks_read: registry.counter("cond.ack.read"),
            acks_processed: registry.counter("cond.ack.processed"),
            ack_lag_ms: registry.histogram("cond.ack.lag_ms"),
            verdict_success: registry.counter("cond.verdict.success"),
            verdict_failure: registry.counter("cond.verdict.failure"),
            verdict_timeout: registry.counter("cond.verdict.timeout"),
            comp_released: registry.counter("cond.comp.released"),
            comp_consumed: registry.counter("cond.comp.consumed"),
            notify_success: registry.counter("cond.notify.success"),
            pending_depth: registry.gauge("cond.pending.depth"),
            deferred_depth: registry.gauge("cond.deferred.depth"),
            eval_incremental_updates: registry.counter("cond.eval.incremental_updates"),
            eval_timer_fires: registry.counter("cond.eval.timer_fires"),
            ack_batch_size: registry.histogram("cond.ack.batch_size"),
            analyze_runs: registry.counter("cond.analyze.runs"),
            analyze_warnings: registry.counter("cond.analyze.warnings"),
            analyze_rejected: registry.counter("cond.analyze.rejected"),
        }
    }
}

/// Receiver-side metrics.
#[derive(Debug)]
pub(crate) struct ReceiverMetrics {
    /// Original conditional messages delivered to the application
    /// (`cond.recv.originals`).
    pub originals: Arc<Counter>,
    /// Read acknowledgments sent back (`cond.recv.read_acks`).
    pub read_acks: Arc<Counter>,
    /// Processed acknowledgments sent back (`cond.recv.processed_acks`).
    pub processed_acks: Arc<Counter>,
    /// Compensations delivered to the application (`cond.recv.comp_delivered`).
    pub comp_delivered: Arc<Counter>,
    /// Compensations requeued because their original's fate is not yet
    /// known (`cond.recv.comp_deferred`).
    pub comp_deferred: Arc<Counter>,
    /// Original/compensation pairs annihilated before application
    /// delivery (`cond.recv.annihilated`).
    pub annihilated: Arc<Counter>,
}

impl ReceiverMetrics {
    pub fn registered(registry: &MetricsRegistry) -> ReceiverMetrics {
        ReceiverMetrics {
            originals: registry.counter("cond.recv.originals"),
            read_acks: registry.counter("cond.recv.read_acks"),
            processed_acks: registry.counter("cond.recv.processed_acks"),
            comp_delivered: registry.counter("cond.recv.comp_delivered"),
            comp_deferred: registry.counter("cond.recv.comp_deferred"),
            annihilated: registry.counter("cond.recv.annihilated"),
        }
    }
}
