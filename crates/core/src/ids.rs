//! Identifiers for conditional messages.

use std::fmt;

use rand::RngCore;

/// Unique identifier of a *conditional* message (the paper's "conditional
/// message id", stamped as a property on every generated standard message
/// and used to correlate acknowledgments, compensations and outcomes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondMessageId(u128);

impl CondMessageId {
    /// Generates a fresh random identifier.
    pub fn generate() -> CondMessageId {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        CondMessageId(u128::from_be_bytes(bytes))
    }

    /// Reconstructs an identifier from its raw value.
    pub fn from_u128(v: u128) -> CondMessageId {
        CondMessageId(v)
    }

    /// Returns the raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Hex string form used in message properties and selectors.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex string form.
    pub fn from_hex(s: &str) -> Option<CondMessageId> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CondMessageId)
    }
}

impl fmt::Debug for CondMessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CondMessageId({self})")
    }
}

impl fmt::Display for CondMessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        assert_ne!(CondMessageId::generate(), CondMessageId::generate());
    }

    #[test]
    fn hex_roundtrip() {
        let id = CondMessageId::generate();
        assert_eq!(CondMessageId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(id.to_hex().len(), 32);
        assert!(CondMessageId::from_hex("xyz").is_none());
        assert!(CondMessageId::from_hex("").is_none());
    }

    #[test]
    fn raw_roundtrip() {
        let id = CondMessageId::from_u128(42);
        assert_eq!(id.as_u128(), 42);
        assert_eq!(id.to_hex(), format!("{:032x}", 42));
    }
}
