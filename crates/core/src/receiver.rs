//! The receiver-side conditional messaging service (paper §2.4, §2.6).
//!
//! [`ConditionalReceiver`] wraps the standard messaging API for final
//! recipients:
//!
//! * [`ConditionalReceiver::read_message`] reads from a queue and
//!   *implicitly* initiates acknowledgments: a non-transactional read sends
//!   a read-ack immediately; a read inside a receiver transaction
//!   ([`ConditionalReceiver::begin_tx`] / [`ConditionalReceiver::commit_tx`])
//!   sends a processed-ack only when the transaction commits — a rolled
//!   back transaction redelivers the message and sends nothing. A receiver
//!   therefore produces **exactly one acknowledgment per consumed
//!   message**, never one for receipt *and* one for processing.
//! * Every consumption is logged to the persistent receiver log
//!   (`DS.RLOG.Q`).
//! * Compensation handling: if a compensation message and its original are
//!   both on the queue, they *annihilate* (neither is delivered); a
//!   compensation is delivered to the application only when the receiver
//!   log shows the original was consumed (paper §2.6, Fig. 8).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use mq::selector::Selector;
use mq::{Message, MessageId, MqError, QueueAddress, QueueManager, TraceStage, Wait};
use simtime::Time;

use crate::config::CondConfig;
use crate::error::{CondError, CondResult};
use crate::ids::CondMessageId;
use crate::metrics::ReceiverMetrics;
use crate::wire::{self, AckKind, Acknowledgment, MessageKind};

/// A message delivered through the conditional-messaging read API.
#[derive(Debug, Clone)]
pub struct ReceivedMessage {
    kind: MessageKind,
    cond_id: Option<CondMessageId>,
    leaf: Option<u32>,
    message: Message,
}

impl ReceivedMessage {
    // lint: custody(message)
    fn classify(message: Message) -> ReceivedMessage {
        let kind = wire::kind_of(&message);
        let cond_id = wire::cond_id_of(&message).ok();
        let leaf = wire::leaf_of(&message).ok();
        ReceivedMessage {
            kind,
            cond_id,
            leaf,
            message,
        }
    }

    /// What kind of message this is.
    pub fn kind(&self) -> MessageKind {
        self.kind
    }

    /// The conditional message id, for anything but standard messages.
    pub fn cond_id(&self) -> Option<CondMessageId> {
        self.cond_id
    }

    /// The destination leaf index within the conditional message.
    pub fn leaf(&self) -> Option<u32> {
        self.leaf
    }

    /// The application payload.
    pub fn payload(&self) -> &bytes::Bytes {
        self.message.payload()
    }

    /// The payload as UTF-8, if valid.
    pub fn payload_str(&self) -> Option<&str> {
        self.message.payload_str()
    }

    /// Whether this is a system-generated (data-less) compensation.
    pub fn is_system_compensation(&self) -> bool {
        self.kind == MessageKind::Compensation
            && self.message.bool_property(wire::P_COMP_SYSTEM) == Some(true)
    }

    /// The full underlying standard message.
    pub fn message(&self) -> &Message {
        &self.message
    }
}

struct PendingAck {
    cond_id: CondMessageId,
    leaf: u32,
    read_at: Time,
    ack_to: QueueAddress,
}

/// The receiver-side conditional messaging service.
///
/// One receiver per consuming application (it is a stateful facade over a
/// messaging session, so it is deliberately `!Sync`-style: use `&mut self`).
pub struct ConditionalReceiver {
    qmgr: Arc<QueueManager>,
    config: CondConfig,
    recipient: Option<String>,
    session: mq::Session,
    pending_acks: Vec<PendingAck>,
    /// Per-queue enqueue counter at the last annihilation scan; if nothing
    /// new arrived since, the scan is skipped (keeps reads O(1) on busy
    /// queues).
    scanned_at: HashMap<String, u64>,
    /// Pre-registered `cond.recv.*` metric cells.
    metrics: ReceiverMetrics,
}

impl fmt::Debug for ConditionalReceiver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConditionalReceiver")
            .field("manager", &self.qmgr.name())
            .field("recipient", &self.recipient)
            .field("in_tx", &self.session.in_transaction())
            .finish()
    }
}

impl ConditionalReceiver {
    /// Creates an anonymous receiver on a queue manager, ensuring the
    /// receiver log queue exists.
    ///
    /// # Errors
    ///
    /// Queue-creation failures.
    pub fn new(qmgr: Arc<QueueManager>) -> CondResult<ConditionalReceiver> {
        ConditionalReceiver::with_config(qmgr, None, CondConfig::default())
    }

    /// Creates a receiver with a recipient identity (reported in
    /// acknowledgments, letting senders learn "numbers and identities …
    /// of final recipients", paper §2.4).
    ///
    /// # Errors
    ///
    /// Queue-creation failures.
    pub fn with_identity(
        qmgr: Arc<QueueManager>,
        recipient: impl Into<String>,
    ) -> CondResult<ConditionalReceiver> {
        ConditionalReceiver::with_config(qmgr, Some(recipient.into()), CondConfig::default())
    }

    /// Fully general constructor.
    ///
    /// # Errors
    ///
    /// Queue-creation failures.
    pub fn with_config(
        qmgr: Arc<QueueManager>,
        recipient: Option<String>,
        config: CondConfig,
    ) -> CondResult<ConditionalReceiver> {
        qmgr.ensure_queue(&config.rlog_queue)?;
        let session = qmgr.session();
        let metrics = ReceiverMetrics::registered(qmgr.obs().metrics());
        Ok(ConditionalReceiver {
            qmgr,
            config,
            recipient,
            session,
            pending_acks: Vec::new(),
            scanned_at: HashMap::new(),
            metrics,
        })
    }

    /// The underlying queue manager.
    pub fn manager(&self) -> &Arc<QueueManager> {
        &self.qmgr
    }

    /// This receiver's recipient identity, if any.
    pub fn recipient(&self) -> Option<&str> {
        self.recipient.as_deref()
    }

    /// Whether a receiver transaction is active.
    pub fn in_transaction(&self) -> bool {
        self.session.in_transaction()
    }

    // ------------------------------------------------------------ read --

    /// Reads the next deliverable message from `queue` (the paper's
    /// `readMessage(String)`).
    ///
    /// Conditional originals trigger the implicit acknowledgment protocol;
    /// compensation messages are annihilated, delivered or deferred per
    /// §2.6; success notifications and standard messages pass through.
    ///
    /// # Errors
    ///
    /// Messaging failures, or [`CondError::Mq`] with
    /// [`mq::MqError::NoRoute`] when an acknowledgment cannot be routed to
    /// the sender's queue manager.
    pub fn read_message(&mut self, queue: &str, wait: Wait) -> CondResult<Option<ReceivedMessage>> {
        self.annihilate_pairs(queue)?;
        let mut seen_comps: HashSet<MessageId> = HashSet::new();
        loop {
            let msg = if self.session.in_transaction() {
                self.session.get(queue, wait)?
            } else {
                self.qmgr.get(queue, wait)?
            };
            let Some(msg) = msg else { return Ok(None) };
            match wire::kind_of(&msg) {
                MessageKind::Original => {
                    let received = ReceivedMessage::classify(msg);
                    self.acknowledge_original(&received)?;
                    self.metrics.originals.incr();
                    return Ok(Some(received));
                }
                MessageKind::Compensation => {
                    let cond_id = wire::cond_id_of(&msg)?;
                    let leaf = wire::leaf_of(&msg)?;
                    if self.rlog_shows_consumed(cond_id, leaf)? {
                        // Original was consumed: deliver the compensation
                        // (exactly once — log the delivery).
                        self.log_rlog_entry(cond_id, leaf, "comp-delivered")?;
                        self.metrics.comp_delivered.incr();
                        self.qmgr.trace().record(
                            self.qmgr.clock().now(),
                            TraceStage::CompensationDelivered,
                            Some(cond_id.as_u128()),
                            Some(leaf),
                            queue,
                        );
                        return Ok(Some(ReceivedMessage::classify(msg)));
                    }
                    // Encounter-time annihilation: the original may still
                    // be behind this compensation in the queue (priority
                    // reordering, or a pre-scan skipped as redundant). The
                    // compensation in hand is already consumed; removing
                    // the original completes the annihilation.
                    let original_sel = pair_selector(wire::kind::ORIGINAL, cond_id, leaf)?;
                    let mut session = self.qmgr.session();
                    session.begin()?;
                    if session
                        .get_selected(queue, &original_sel, Wait::NoWait)?
                        .is_some()
                    {
                        session.put(
                            &self.config.rlog_queue,
                            rlog_entry(cond_id, leaf, "annihilated", self.qmgr.clock().now()),
                        )?;
                        session.commit()?;
                        self.metrics.annihilated.incr();
                        self.qmgr.trace().record(
                            self.qmgr.clock().now(),
                            TraceStage::Annihilated,
                            Some(cond_id.as_u128()),
                            Some(leaf),
                            queue,
                        );
                        continue;
                    }
                    session.rollback_for_retry()?;
                    // Original neither in the queue nor consumed here:
                    // defer the compensation.
                    let msg_id = msg.id();
                    self.requeue(queue, msg)?;
                    self.metrics.comp_deferred.incr();
                    self.qmgr.trace().record(
                        self.qmgr.clock().now(),
                        TraceStage::CompensationDeferred,
                        Some(cond_id.as_u128()),
                        Some(leaf),
                        queue,
                    );
                    if !seen_comps.insert(msg_id) {
                        // Every remaining message is an undeliverable
                        // compensation; report "nothing deliverable".
                        return Ok(None);
                    }
                }
                MessageKind::SuccessNotification | MessageKind::Standard => {
                    return Ok(Some(ReceivedMessage::classify(msg)));
                }
            }
        }
    }

    fn requeue(&mut self, queue: &str, msg: Message) -> CondResult<()> {
        if self.session.in_transaction() {
            // Staged: net effect after commit is a move to the back.
            self.session.put(queue, msg)?;
        } else {
            self.qmgr.put(queue, msg)?;
        }
        Ok(())
    }

    /// Annihilates original/compensation pairs sitting on the same queue
    /// (paper §2.6: "both messages cancel each other out and will be
    /// deleted from the queue").
    fn annihilate_pairs(&mut self, queue: &str) -> CondResult<()> {
        // Skip the scan when no message has been enqueued since the last
        // one — no new compensation can have appeared.
        let enqueued = match self.qmgr.queue(queue) {
            Ok(q) => q.stats().enqueued.get(),
            Err(_) => return Ok(()),
        };
        if self.scanned_at.get(queue) == Some(&enqueued) {
            return Ok(());
        }
        self.scanned_at.insert(queue.to_owned(), enqueued);
        let comp_selector = Selector::parse(&format!(
            "{} = '{}'",
            wire::P_KIND,
            wire::kind::COMPENSATION
        ))
        .map_err(MqError::from)?;
        let comps = match self.qmgr.queue(queue) {
            // Indexed existence probe first: queues with no compensation
            // aboard (the common case) skip the full browse entirely.
            Ok(q) if !q.any_selected(&comp_selector) => return Ok(()),
            Ok(q) => q.browse_selected(Some(&comp_selector)),
            Err(_) => return Ok(()),
        };
        for comp in comps {
            let (Ok(cond_id), Ok(leaf)) = (wire::cond_id_of(&comp), wire::leaf_of(&comp)) else {
                continue;
            };
            let original_sel = pair_selector(wire::kind::ORIGINAL, cond_id, leaf)?;
            let comp_sel = pair_selector(wire::kind::COMPENSATION, cond_id, leaf)?;
            let mut session = self.qmgr.session();
            session.begin()?;
            let original = session.get_selected(queue, &original_sel, Wait::NoWait)?;
            if original.is_none() {
                session.rollback_for_retry()?;
                continue;
            }
            let comp_taken = session.get_selected(queue, &comp_sel, Wait::NoWait)?;
            if comp_taken.is_none() {
                // Someone else consumed the compensation meanwhile.
                session.rollback_for_retry()?;
                continue;
            }
            session.put(
                &self.config.rlog_queue,
                rlog_entry(cond_id, leaf, "annihilated", self.qmgr.clock().now()),
            )?;
            session.commit()?;
            self.metrics.annihilated.incr();
            self.qmgr.trace().record(
                self.qmgr.clock().now(),
                TraceStage::Annihilated,
                Some(cond_id.as_u128()),
                Some(leaf),
                queue,
            );
        }
        Ok(())
    }

    fn acknowledge_original(&mut self, received: &ReceivedMessage) -> CondResult<()> {
        let cond_id = received
            .cond_id()
            .ok_or_else(|| CondError::Malformed("original missing cond id".into()))?;
        let leaf = received
            .leaf()
            .ok_or_else(|| CondError::Malformed("original missing leaf index".into()))?;
        let ack_to = ack_address(received.message())?;
        let read_at = self.qmgr.clock().now();
        if self.session.in_transaction() {
            // Deferred: the processed-ack is staged at commit time, in the
            // same transaction as the consumption itself.
            self.pending_acks.push(PendingAck {
                cond_id,
                leaf,
                read_at,
                ack_to,
            });
            return Ok(());
        }
        // Non-transactional read: read-ack plus consumption log entry, sent
        // atomically right away.
        let ack = Acknowledgment {
            cond_id,
            leaf,
            kind: AckKind::Read,
            read_at,
            processed_at: None,
            recipient: self.recipient.clone(),
        };
        let mut session = self.qmgr.session();
        session.begin()?;
        session.put(
            &self.config.rlog_queue,
            rlog_entry(cond_id, leaf, "consumed", read_at),
        )?;
        session.put_to(&ack_to, ack.to_message())?;
        session.commit()?;
        self.metrics.read_acks.incr();
        Ok(())
    }

    fn rlog_shows_consumed(&self, cond_id: CondMessageId, leaf: u32) -> CondResult<bool> {
        let selector = Selector::parse(&format!(
            "{} = '{}' AND {} = {} AND {} = 'consumed'",
            wire::P_COND_ID,
            cond_id.to_hex(),
            wire::P_LEAF,
            leaf,
            wire::P_RLOG_ENTRY
        ))
        .map_err(MqError::from)?;
        let rlog = self.qmgr.queue(&self.config.rlog_queue)?;
        // Point read off the property index: the rlog grows with every
        // delivery, and this probe runs once per duplicate redelivery.
        Ok(rlog.any_selected(&selector))
    }

    fn log_rlog_entry(&mut self, cond_id: CondMessageId, leaf: u32, entry: &str) -> CondResult<()> {
        let msg = rlog_entry(cond_id, leaf, entry, self.qmgr.clock().now());
        if self.session.in_transaction() {
            self.session.put(&self.config.rlog_queue, msg)?;
        } else {
            self.qmgr.put(&self.config.rlog_queue, msg)?;
        }
        Ok(())
    }

    // ---------------------------------------------------- transactions --

    /// Begins a receiver transaction (the paper's `begin_tx()` facade).
    ///
    /// # Errors
    ///
    /// [`CondError::TransactionActive`] if one is already active.
    pub fn begin_tx(&mut self) -> CondResult<()> {
        self.session.begin().map_err(|e| match e {
            MqError::TransactionActive => CondError::TransactionActive,
            other => CondError::Mq(other),
        })?;
        self.pending_acks.clear();
        Ok(())
    }

    /// Commits the receiver transaction (the paper's `commit_tx()`).
    ///
    /// The consumption log entries and the *processed* acknowledgments of
    /// every conditional message read in the transaction are staged into
    /// the same transaction, so consumption and acknowledgment commit
    /// atomically: "the generation of the second kind of acknowledgment is
    /// bound to the successful commit of the receiver's transaction".
    ///
    /// # Errors
    ///
    /// [`CondError::NoTransaction`] without an active transaction;
    /// messaging failures (the transaction is then still open and can be
    /// retried or rolled back).
    pub fn commit_tx(&mut self) -> CondResult<()> {
        if !self.session.in_transaction() {
            return Err(CondError::NoTransaction);
        }
        let commit_time = self.qmgr.clock().now();
        for pa in &self.pending_acks {
            self.session.put(
                &self.config.rlog_queue,
                rlog_entry(pa.cond_id, pa.leaf, "consumed", pa.read_at),
            )?;
            let ack = Acknowledgment {
                cond_id: pa.cond_id,
                leaf: pa.leaf,
                kind: AckKind::Processed,
                read_at: pa.read_at,
                processed_at: Some(commit_time),
                recipient: self.recipient.clone(),
            };
            self.session.put_to(&pa.ack_to, ack.to_message())?;
        }
        self.session.commit()?;
        self.metrics
            .processed_acks
            .add(self.pending_acks.len() as u64);
        self.pending_acks.clear();
        Ok(())
    }

    /// Rolls back the receiver transaction: consumed messages return to
    /// their queues and *no acknowledgment is generated* (paper §2.4).
    ///
    /// # Errors
    ///
    /// [`CondError::NoTransaction`] without an active transaction.
    pub fn rollback_tx(&mut self) -> CondResult<()> {
        if !self.session.in_transaction() {
            return Err(CondError::NoTransaction);
        }
        self.session.rollback()?;
        self.pending_acks.clear();
        Ok(())
    }
}

fn pair_selector(kind: &str, cond_id: CondMessageId, leaf: u32) -> CondResult<Selector> {
    Selector::parse(&format!(
        "{} = '{}' AND {} = '{}' AND {} = {}",
        wire::P_KIND,
        kind,
        wire::P_COND_ID,
        cond_id.to_hex(),
        wire::P_LEAF,
        leaf
    ))
    .map_err(|e| CondError::Mq(e.into()))
}

fn rlog_entry(cond_id: CondMessageId, leaf: u32, entry: &str, at: Time) -> Message {
    Message::builder(bytes::Bytes::new())
        .property(wire::P_KIND, wire::kind::RLOG)
        .property(wire::P_COND_ID, cond_id.to_hex())
        .property(wire::P_LEAF, i64::from(leaf))
        .property(wire::P_RLOG_ENTRY, entry)
        .property(wire::P_RLOG_TS, at.as_millis() as i64)
        .persistent(true)
        .build()
}

fn ack_address(msg: &Message) -> CondResult<QueueAddress> {
    let manager = msg
        .str_property(wire::P_SENDER_MANAGER)
        .ok_or_else(|| CondError::Malformed("original missing sender manager".into()))?;
    let queue = msg
        .str_property(wire::P_ACK_QUEUE)
        .ok_or_else(|| CondError::Malformed("original missing ack queue".into()))?;
    Ok(QueueAddress::new(manager, queue))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Destination, DestinationSet};
    use crate::messenger::ConditionalMessenger;
    use crate::wire::MessageOutcome;
    use simtime::{Millis, SimClock};

    fn setup() -> (Arc<SimClock>, Arc<QueueManager>, Arc<ConditionalMessenger>) {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        (clock, qmgr, messenger)
    }

    fn one_dest(window: Millis) -> Condition {
        Destination::queue("QM1", "Q.A")
            .pickup_within(window)
            .into()
    }

    fn processing_dest(window: Millis) -> Condition {
        Destination::queue("QM1", "Q.A")
            .process_within(window)
            .into()
    }

    #[test]
    fn non_transactional_read_sends_read_ack_and_logs() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("hi", &one_dest(Millis(100)))
            .unwrap();
        clock.advance(Millis(10));
        let mut receiver = ConditionalReceiver::with_identity(qmgr.clone(), "alice").unwrap();
        let got = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.kind(), MessageKind::Original);
        assert_eq!(got.payload_str(), Some("hi"));
        assert_eq!(got.cond_id(), Some(id));
        // Ack on DS.ACK.Q with the read timestamp and identity (browse:
        // the evaluation manager will consume it during pump()).
        let ack_msg = &qmgr.queue("DS.ACK.Q").unwrap().browse()[0];
        let ack = Acknowledgment::from_message(ack_msg).unwrap();
        assert_eq!(ack.kind, AckKind::Read);
        assert_eq!(ack.read_at, Time(10));
        assert_eq!(ack.recipient.as_deref(), Some("alice"));
        // RLOG records the consumption.
        let rlog = qmgr.queue("DS.RLOG.Q").unwrap().browse();
        assert_eq!(rlog.len(), 1);
        assert_eq!(rlog[0].str_property(wire::P_RLOG_ENTRY), Some("consumed"));
        // End to end: evaluation succeeds.
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }

    #[test]
    fn transactional_read_acks_only_on_commit() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("work", &processing_dest(Millis(1_000)))
            .unwrap();
        clock.advance(Millis(10));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.begin_tx().unwrap();
        let got = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.cond_id(), Some(id));
        // Before commit: no ack, message invisible.
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 0);
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 0);
        clock.advance(Millis(40));
        receiver.commit_tx().unwrap();
        let ack =
            Acknowledgment::from_message(&qmgr.queue("DS.ACK.Q").unwrap().browse()[0]).unwrap();
        assert_eq!(ack.kind, AckKind::Processed);
        assert_eq!(ack.read_at, Time(10));
        assert_eq!(ack.processed_at, Some(Time(50)));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }

    #[test]
    fn rolled_back_read_redelivers_without_ack() {
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message("work", &processing_dest(Millis(1_000)))
            .unwrap();
        clock.advance(Millis(5));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.begin_tx().unwrap();
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        receiver.rollback_tx().unwrap();
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 0, "no ack");
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 1, "redelivered");
        // A second, successful attempt acks exactly once.
        receiver.begin_tx().unwrap();
        let again = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert!(again.message().redelivery_count() > 0);
        receiver.commit_tx().unwrap();
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 1);
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }

    #[test]
    fn exactly_one_ack_per_consumption() {
        // Non-transactional read: one read-ack, no processed-ack, even if
        // processing was expected (paper: an acknowledgment of successful
        // non-transactional processing cannot be generated automatically).
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message("work", &processing_dest(Millis(50)))
            .unwrap();
        clock.advance(Millis(5));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 1);
        // Evaluation: processing required but only a read-ack → fails once
        // the window passes.
        clock.advance(Millis(100));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    }

    #[test]
    fn annihilation_when_original_unread() {
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message_with_compensation("orig", "undo", &one_dest(Millis(30)))
            .unwrap();
        // Nobody reads; failure → compensation joins the original on Q.A.
        clock.advance(Millis(60));
        messenger.pump().unwrap();
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 2);
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        let got = receiver.read_message("Q.A", Wait::NoWait).unwrap();
        assert!(got.is_none(), "both messages annihilated: {got:?}");
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 0);
        // The annihilation is logged.
        let rlog = qmgr.queue("DS.RLOG.Q").unwrap().browse();
        assert!(rlog
            .iter()
            .any(|m| m.str_property(wire::P_RLOG_ENTRY) == Some("annihilated")));
        // No acknowledgment was produced.
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 0);
    }

    #[test]
    fn compensation_delivered_after_original_consumed() {
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message_with_compensation("orig", "undo", &processing_dest(Millis(30)))
            .unwrap();
        clock.advance(Millis(5));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        // Non-transactional read: consumption logged, but processing can
        // never be acknowledged → the message will fail.
        let got = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.kind(), MessageKind::Original);
        clock.advance(Millis(60));
        messenger.pump().unwrap();
        // The compensation arrives and is deliverable because the RLOG
        // shows consumption.
        let comp = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(comp.kind(), MessageKind::Compensation);
        assert_eq!(comp.payload_str(), Some("undo"));
        assert!(!comp.is_system_compensation());
        // Delivered exactly once.
        assert!(receiver
            .read_message("Q.A", Wait::NoWait)
            .unwrap()
            .is_none());
        let rlog = qmgr.queue("DS.RLOG.Q").unwrap().browse();
        assert!(rlog
            .iter()
            .any(|m| m.str_property(wire::P_RLOG_ENTRY) == Some("comp-delivered")));
    }

    #[test]
    fn unresolvable_compensation_is_deferred_not_delivered() {
        let (_clock, qmgr, _messenger) = setup();
        // A compensation with no matching original anywhere (e.g. original
        // expired in transit).
        let comp = wire::make_compensation(
            CondMessageId::generate(),
            0,
            &QueueAddress::new("QM1", "Q.A"),
            None,
        );
        qmgr.put("Q.A", comp).unwrap();
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        assert!(receiver
            .read_message("Q.A", Wait::NoWait)
            .unwrap()
            .is_none());
        // Still parked on the queue for a later attempt.
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 1);
    }

    #[test]
    fn deferred_compensation_does_not_block_other_messages() {
        let (_clock, qmgr, _messenger) = setup();
        let comp = wire::make_compensation(
            CondMessageId::generate(),
            0,
            &QueueAddress::new("QM1", "Q.A"),
            None,
        );
        qmgr.put("Q.A", comp).unwrap();
        qmgr.put("Q.A", Message::text("ordinary").build()).unwrap();
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        let got = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(got.kind(), MessageKind::Standard);
        assert_eq!(got.payload_str(), Some("ordinary"));
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 1, "comp still parked");
    }

    #[test]
    fn success_notifications_are_delivered_to_receivers() {
        let (clock, qmgr, messenger) = setup();
        use crate::wire::SendOptions;
        let id = messenger
            .send_with(
                "data",
                None,
                &one_dest(Millis(100)),
                SendOptions {
                    success_notifications: Some(true),
                    ..SendOptions::default()
                },
            )
            .unwrap();
        clock.advance(Millis(5));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        messenger.pump().unwrap();
        let note = receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        assert_eq!(note.kind(), MessageKind::SuccessNotification);
        assert_eq!(note.cond_id(), Some(id));
    }

    #[test]
    fn tx_api_misuse_errors() {
        let (_clock, qmgr, _messenger) = setup();
        let mut receiver = ConditionalReceiver::new(qmgr).unwrap();
        assert!(matches!(
            receiver.commit_tx(),
            Err(CondError::NoTransaction)
        ));
        assert!(matches!(
            receiver.rollback_tx(),
            Err(CondError::NoTransaction)
        ));
        receiver.begin_tx().unwrap();
        assert!(matches!(
            receiver.begin_tx(),
            Err(CondError::TransactionActive)
        ));
        receiver.rollback_tx().unwrap();
    }

    #[test]
    fn min_subset_condition_end_to_end() {
        // 1-of-2 pickup: one receiver reading one queue is enough.
        let (clock, qmgr, messenger) = setup();
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A").into(),
            Destination::queue("QM1", "Q.B").into(),
        ])
        .pickup_within(Millis(100))
        .min_pickup(1)
        .into();
        messenger.send_message("either", &cond).unwrap();
        clock.advance(Millis(10));
        let mut receiver = ConditionalReceiver::new(qmgr.clone()).unwrap();
        receiver.read_message("Q.A", Wait::NoWait).unwrap().unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].outcome,
            MessageOutcome::Success,
            "early success at 1 of 2"
        );
    }

    #[test]
    fn shared_queue_competing_consumers_one_ack() {
        // Example 2 shape: one queue, several potential readers, any one
        // read satisfies the condition.
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message("flight", &one_dest(Millis(100)))
            .unwrap();
        clock.advance(Millis(1));
        let mut r1 = ConditionalReceiver::with_identity(qmgr.clone(), "c1").unwrap();
        let mut r2 = ConditionalReceiver::with_identity(qmgr.clone(), "c2").unwrap();
        let got1 = r1.read_message("Q.A", Wait::NoWait).unwrap();
        let got2 = r2.read_message("Q.A", Wait::NoWait).unwrap();
        assert!(
            got1.is_some() ^ got2.is_some(),
            "exactly one controller wins"
        );
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 1);
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }
}
