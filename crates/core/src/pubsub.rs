//! Conditional publish/subscribe.
//!
//! The paper defines conditional messaging generically over "specific
//! models of messaging, such as message queuing and publish/subscribe
//! systems" (§2) and names pub/sub conditions as a direction the system
//! should grow in. This module provides that extension: a
//! [`GroupCondition`] is a condition *template* — time windows and min/max
//! counts without fixed destinations — that
//! [`ConditionalMessenger::publish_conditional`] instantiates over the
//! subscriber set of an [`mq::topic::Topic`] at publish time.
//!
//! Each subscription queue becomes one destination leaf of an ordinary
//! conditional message, so everything else (implicit acknowledgments,
//! evaluation, compensation annihilation, Dependency-Spheres) applies
//! unchanged: "any one subscriber must pick this event up within 20
//! seconds" or "at least half the subscribers must process this request"
//! are one-line publishes.

use bytes::Bytes;
use mq::topic::Topic;
use mq::QueueAddress;
use simtime::Millis;

use crate::condition::{Condition, Destination, DestinationSet};
use crate::error::{CondError, CondResult};
use crate::ids::CondMessageId;
use crate::messenger::ConditionalMessenger;
use crate::wire::SendOptions;

/// A destination-independent condition template, instantiated over a
/// dynamic set of queues (e.g. a topic's subscribers) at send time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupCondition {
    /// Pick-up window applied to the group (`MsgPickUpTime`).
    pub pickup_within: Option<Millis>,
    /// Processing window applied to the group (`MsgProcessingTime`).
    pub process_within: Option<Millis>,
    /// `MinNrPickUp`: at least this many members must pick up in time
    /// (default: all of them).
    pub min_pickup: Option<u32>,
    /// `MinNrProcessing`: at least this many members must process in time.
    pub min_process: Option<u32>,
    /// `MaxNrPickUp` counting cap.
    pub max_pickup: Option<u32>,
    /// `MaxNrProcessing` counting cap.
    pub max_process: Option<u32>,
}

impl GroupCondition {
    /// A template requiring every member to pick up within `window`.
    pub fn all_pickup_within(window: Millis) -> GroupCondition {
        GroupCondition {
            pickup_within: Some(window),
            ..GroupCondition::default()
        }
    }

    /// A template requiring at least `min` members to pick up within
    /// `window`.
    pub fn min_pickup_within(min: u32, window: Millis) -> GroupCondition {
        GroupCondition {
            pickup_within: Some(window),
            min_pickup: Some(min),
            ..GroupCondition::default()
        }
    }

    /// Instantiates the template over concrete destination queues.
    ///
    /// # Errors
    ///
    /// [`CondError::InvalidCondition`] when `queues` is empty, a min count
    /// exceeds the member count, or the template carries counts without
    /// the corresponding window (validated like any condition).
    pub fn to_condition(&self, queues: &[QueueAddress]) -> CondResult<Condition> {
        if queues.is_empty() {
            return Err(CondError::InvalidCondition(
                "group condition instantiated over zero destinations".into(),
            ));
        }
        let mut set = DestinationSet::of(
            queues
                .iter()
                .map(|q| Destination::addressed(q.clone()).into())
                .collect(),
        );
        if let Some(w) = self.pickup_within {
            set = set.pickup_within(w);
        }
        if let Some(w) = self.process_within {
            set = set.process_within(w);
        }
        if let Some(n) = self.min_pickup {
            set = set.min_pickup(n);
        }
        if let Some(n) = self.min_process {
            set = set.min_process(n);
        }
        if let Some(n) = self.max_pickup {
            set = set.max_pickup(n);
        }
        if let Some(n) = self.max_process {
            set = set.max_process(n);
        }
        let condition: Condition = set.into();
        condition.validate()?;
        Ok(condition)
    }
}

impl ConditionalMessenger {
    /// Publishes a conditional message to every current subscriber of
    /// `topic`: the template is instantiated over the subscription queues
    /// and sent as a regular conditional message (one standard message per
    /// subscriber, plus parked compensations).
    ///
    /// Returns the conditional message id and the number of subscribers
    /// addressed. Subscribers added *after* the publish do not affect the
    /// message (snapshot semantics).
    ///
    /// # Errors
    ///
    /// [`CondError::InvalidCondition`] when the topic has no subscribers or
    /// the template is inconsistent with the subscriber count; messaging
    /// failures.
    pub fn publish_conditional(
        &self,
        topic: &Topic,
        payload: impl Into<Bytes>,
        template: &GroupCondition,
        options: SendOptions,
    ) -> CondResult<(CondMessageId, usize)> {
        let queues: Vec<QueueAddress> = topic
            .subscriber_queues()
            .into_iter()
            .map(|(_, addr)| addr)
            .collect();
        let condition = template.to_condition(&queues)?;
        let id = self.send_with(payload, None, &condition, options)?;
        Ok((id, queues.len()))
    }

    /// Like [`ConditionalMessenger::publish_conditional`], with
    /// application-defined compensation data.
    ///
    /// # Errors
    ///
    /// See [`ConditionalMessenger::publish_conditional`].
    pub fn publish_conditional_with_compensation(
        &self,
        topic: &Topic,
        payload: impl Into<Bytes>,
        compensation: impl Into<Bytes>,
        template: &GroupCondition,
        options: SendOptions,
    ) -> CondResult<(CondMessageId, usize)> {
        let queues: Vec<QueueAddress> = topic
            .subscriber_queues()
            .into_iter()
            .map(|(_, addr)| addr)
            .collect();
        let condition = template.to_condition(&queues)?;
        let id = self.send_with(payload, Some(compensation.into()), &condition, options)?;
        Ok((id, queues.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::ConditionalReceiver;
    use crate::wire::{MessageKind, MessageOutcome};
    use mq::{QueueManager, Wait};
    use simtime::SimClock;
    use std::sync::Arc;

    fn setup() -> (
        Arc<SimClock>,
        Arc<QueueManager>,
        Arc<ConditionalMessenger>,
        Arc<Topic>,
    ) {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let topic = Topic::open(qmgr.clone(), "events").unwrap();
        (clock, qmgr, messenger, topic)
    }

    #[test]
    fn template_instantiation_and_validation() {
        let queues = vec![
            QueueAddress::new("QM1", "A"),
            QueueAddress::new("QM1", "B"),
            QueueAddress::new("QM1", "C"),
        ];
        let cond = GroupCondition::min_pickup_within(2, Millis(100))
            .to_condition(&queues)
            .unwrap();
        assert_eq!(cond.leaf_count(), 3);
        assert!(GroupCondition::default().to_condition(&[]).is_err());
        // min > members is rejected by condition validation.
        assert!(GroupCondition::min_pickup_within(4, Millis(100))
            .to_condition(&queues)
            .is_err());
    }

    #[test]
    fn publish_with_no_subscribers_fails_cleanly() {
        let (_c, _q, messenger, topic) = setup();
        let err = messenger
            .publish_conditional(
                &topic,
                "x",
                &GroupCondition::all_pickup_within(Millis(100)),
                SendOptions::default(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("zero destinations"));
    }

    #[test]
    fn conditional_publish_all_subscribers_ack() {
        let (clock, qmgr, messenger, topic) = setup();
        let q_alice = topic.subscribe("alice").unwrap();
        let q_bob = topic.subscribe("bob").unwrap();
        let (id, n) = messenger
            .publish_conditional(
                &topic,
                "release notes",
                &GroupCondition::all_pickup_within(Millis(100)),
                SendOptions::default(),
            )
            .unwrap();
        assert_eq!(n, 2);
        clock.advance(Millis(10));
        for q in [&q_alice, &q_bob] {
            let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
            let m = r.read_message(q, Wait::NoWait).unwrap().unwrap();
            assert_eq!(m.kind(), MessageKind::Original);
            assert_eq!(m.cond_id(), Some(id));
        }
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }

    #[test]
    fn min_k_of_subscribers_semantics() {
        let (clock, qmgr, messenger, topic) = setup();
        for name in ["s1", "s2", "s3"] {
            topic.subscribe(name).unwrap();
        }
        let (_, n) = messenger
            .publish_conditional(
                &topic,
                "poll",
                &GroupCondition::min_pickup_within(2, Millis(100)),
                SendOptions::default(),
            )
            .unwrap();
        assert_eq!(n, 3);
        clock.advance(Millis(10));
        // Only two of three subscribers read.
        for q in ["TOPIC.events.s1", "TOPIC.events.s2"] {
            let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
            r.read_message(q, Wait::NoWait).unwrap().unwrap();
        }
        let outcomes = messenger.pump().unwrap();
        assert_eq!(
            outcomes[0].outcome,
            MessageOutcome::Success,
            "2 of 3 suffices"
        );
    }

    #[test]
    fn failed_publish_compensates_every_subscriber() {
        let (clock, qmgr, messenger, topic) = setup();
        topic.subscribe("s1").unwrap();
        topic.subscribe("s2").unwrap();
        messenger
            .publish_conditional_with_compensation(
                &topic,
                "event",
                "event withdrawn",
                &GroupCondition::all_pickup_within(Millis(50)),
                SendOptions::default(),
            )
            .unwrap();
        clock.advance(Millis(10));
        // s1 reads; s2 never does.
        let mut r1 = ConditionalReceiver::new(qmgr.clone()).unwrap();
        r1.read_message("TOPIC.events.s1", Wait::NoWait)
            .unwrap()
            .unwrap();
        clock.advance(Millis(100));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
        // s1 gets the compensation; s2's pair annihilates.
        let comp = r1
            .read_message("TOPIC.events.s1", Wait::NoWait)
            .unwrap()
            .unwrap();
        assert_eq!(comp.kind(), MessageKind::Compensation);
        assert_eq!(comp.payload_str(), Some("event withdrawn"));
        let mut r2 = ConditionalReceiver::new(qmgr.clone()).unwrap();
        assert!(r2
            .read_message("TOPIC.events.s2", Wait::NoWait)
            .unwrap()
            .is_none());
        assert_eq!(qmgr.queue("TOPIC.events.s2").unwrap().depth(), 0);
    }

    #[test]
    fn snapshot_semantics_late_subscribers_unaffected() {
        let (clock, qmgr, messenger, topic) = setup();
        topic.subscribe("early").unwrap();
        let (_, n) = messenger
            .publish_conditional(
                &topic,
                "x",
                &GroupCondition::all_pickup_within(Millis(100)),
                SendOptions::default(),
            )
            .unwrap();
        assert_eq!(n, 1);
        // A subscriber joining after the publish neither receives the
        // message nor affects its evaluation.
        let late_q = topic.subscribe("late").unwrap();
        assert_eq!(qmgr.queue(&late_q).unwrap().depth(), 0);
        clock.advance(Millis(10));
        let mut r = ConditionalReceiver::new(qmgr.clone()).unwrap();
        r.read_message("TOPIC.events.early", Wait::NoWait)
            .unwrap()
            .unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }
}
