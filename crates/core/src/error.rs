//! Error types for the conditional-messaging service.

use std::fmt;

use crate::ids::CondMessageId;

/// Errors reported by the conditional-messaging layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum CondError {
    /// The underlying messaging middleware failed.
    Mq(mq::MqError),
    /// The condition tree is structurally invalid.
    InvalidCondition(String),
    /// The condition tree was rejected by static analysis
    /// ([`crate::analyze`]) as statically unsatisfiable.
    Analysis(crate::analyze::AnalyzeError),
    /// No pending conditional message with this id is known.
    UnknownMessage(CondMessageId),
    /// An internal (ack / log / outcome) message failed to decode.
    Malformed(String),
    /// A transactional receiver API was used outside a transaction.
    NoTransaction,
    /// `begin_tx` was called while a transaction was already active.
    TransactionActive,
    /// A background worker thread could not be spawned.
    Daemon(String),
}

impl fmt::Display for CondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondError::Mq(e) => write!(f, "messaging error: {e}"),
            CondError::InvalidCondition(reason) => write!(f, "invalid condition: {reason}"),
            CondError::Analysis(e) => write!(f, "{e}"),
            CondError::UnknownMessage(id) => write!(f, "unknown conditional message {id}"),
            CondError::Malformed(what) => write!(f, "malformed internal message: {what}"),
            CondError::NoTransaction => write!(f, "no receiver transaction is active"),
            CondError::TransactionActive => {
                write!(f, "a receiver transaction is already active")
            }
            CondError::Daemon(reason) => write!(f, "daemon spawn failed: {reason}"),
        }
    }
}

impl std::error::Error for CondError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CondError::Mq(e) => Some(e),
            CondError::Analysis(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mq::MqError> for CondError {
    fn from(e: mq::MqError) -> Self {
        CondError::Mq(e)
    }
}

impl From<mq::codec::CodecError> for CondError {
    fn from(e: mq::codec::CodecError) -> Self {
        CondError::Malformed(e.to_string())
    }
}

/// Convenience result alias.
pub type CondResult<T> = Result<T, CondError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CondError::InvalidCondition("empty set".into()).to_string(),
            "invalid condition: empty set"
        );
        assert_eq!(
            CondError::NoTransaction.to_string(),
            "no receiver transaction is active"
        );
        let err: CondError = mq::MqError::QueueNotFound("X".into()).into();
        assert!(err.to_string().contains("queue not found"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<CondError>();
    }
}
