//! Configuration of the conditional-messaging system's service queues.
//!
//! The paper's architecture (Fig. 9) uses five dedicated persistent queues;
//! the defaults here follow its naming exactly.

use simtime::Millis;

/// Sender-side log queue: send records and observed acknowledgments, the
/// WAL from which a restarted sender rebuilds evaluation state.
pub const DEFAULT_SLOG_QUEUE: &str = "DS.SLOG.Q";

/// Sender-side acknowledgment queue receivers direct their acks to.
pub const DEFAULT_ACK_QUEUE: &str = "DS.ACK.Q";

/// Sender-side queue parking pre-generated compensation messages.
pub const DEFAULT_COMP_QUEUE: &str = "DS.COMP.Q";

/// Sender-side queue receiving outcome notifications for the application.
pub const DEFAULT_OUTCOME_QUEUE: &str = "DS.OUTCOME.Q";

/// Receiver-side log queue recording message consumption.
pub const DEFAULT_RLOG_QUEUE: &str = "DS.RLOG.Q";

/// Sender-side history queue of decided outcomes. Kept separate from the
/// (hot) sender log so the active-log purges stay proportional to the
/// number of *in-flight* conditional messages.
pub const DEFAULT_DONE_QUEUE: &str = "DS.DONE.Q";

/// Queue names and behavioural defaults for one conditional-messaging
/// service instance.
#[derive(Debug, Clone)]
pub struct CondConfig {
    /// Sender log queue name (default [`DEFAULT_SLOG_QUEUE`]).
    pub slog_queue: String,
    /// Acknowledgment queue name (default [`DEFAULT_ACK_QUEUE`]).
    pub ack_queue: String,
    /// Compensation queue name (default [`DEFAULT_COMP_QUEUE`]).
    pub comp_queue: String,
    /// Outcome queue name (default [`DEFAULT_OUTCOME_QUEUE`]).
    pub outcome_queue: String,
    /// Receiver log queue name (default [`DEFAULT_RLOG_QUEUE`]).
    pub rlog_queue: String,
    /// Decided-outcome history queue name (default [`DEFAULT_DONE_QUEUE`]).
    pub done_queue: String,
    /// Whether success notifications are sent to all destinations when a
    /// message succeeds (paper §2.6; per-send overridable).
    pub success_notifications: bool,
    /// Evaluation timeout applied when a send specifies none. `None` means
    /// evaluation runs until the condition's own deadlines decide it.
    pub default_evaluation_timeout: Option<Millis>,
    /// Extra time past a condition deadline before a *missing*
    /// acknowledgment counts as a violation, covering acks still in
    /// transit from remote receivers. Ack timestamps are always compared
    /// against the true deadline. The paper's Example 2 uses a 20 s
    /// condition with a 21 s evaluation timeout — i.e. one second of
    /// grace. Default: zero (decide eagerly at the deadline).
    pub ack_grace: Millis,
    /// Maximum acknowledgments drained from the ack queue under a single
    /// messaging transaction (one journal commit per batch instead of one
    /// per ack). Default: 64.
    pub ack_batch: usize,
    /// Run the evaluation manager event-driven: acks are drained and
    /// evaluated the moment they land on the ack queue (put-watcher under
    /// a virtual clock, condvar-parked daemon under a system clock) and
    /// deadline verdicts fire from armed timers, instead of waiting for
    /// the next `pump()`/poll tick. Default: off, preserving the
    /// deterministic drain-on-pump semantics tests rely on.
    pub event_driven: bool,
    /// Run the [static condition analyzer](crate::analyze) on every send:
    /// error-severity findings (statically unsatisfiable trees) reject the
    /// send with [`CondError::Analysis`](crate::CondError) before any
    /// destination put; warnings are counted in the `cond.analyze.*`
    /// metrics. Default: on.
    pub analyze_sends: bool,
}

impl Default for CondConfig {
    fn default() -> Self {
        CondConfig {
            slog_queue: DEFAULT_SLOG_QUEUE.to_owned(),
            ack_queue: DEFAULT_ACK_QUEUE.to_owned(),
            comp_queue: DEFAULT_COMP_QUEUE.to_owned(),
            outcome_queue: DEFAULT_OUTCOME_QUEUE.to_owned(),
            rlog_queue: DEFAULT_RLOG_QUEUE.to_owned(),
            done_queue: DEFAULT_DONE_QUEUE.to_owned(),
            success_notifications: false,
            default_evaluation_timeout: None,
            ack_grace: Millis::ZERO,
            ack_batch: 64,
            event_driven: false,
            analyze_sends: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_queue_names() {
        let c = CondConfig::default();
        assert_eq!(c.slog_queue, "DS.SLOG.Q");
        assert_eq!(c.ack_queue, "DS.ACK.Q");
        assert_eq!(c.comp_queue, "DS.COMP.Q");
        assert_eq!(c.outcome_queue, "DS.OUTCOME.Q");
        assert_eq!(c.rlog_queue, "DS.RLOG.Q");
        assert_eq!(c.done_queue, "DS.DONE.Q");
        assert!(!c.success_notifications);
        assert!(c.default_evaluation_timeout.is_none());
        assert_eq!(c.ack_grace, Millis::ZERO);
        assert_eq!(c.ack_batch, 64);
        assert!(!c.event_driven);
        assert!(c.analyze_sends);
    }
}
