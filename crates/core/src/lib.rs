//! `condmsg` — conditional messaging: reliable messaging extended with
//! application conditions.
//!
//! A Rust reproduction of *"Extending Reliable Messaging with Application
//! Conditions"* (Tai, Mikalsen, Rouvellou, Sutton — ICDCS 2002). Standard
//! messaging middleware guarantees delivery to *queues*; conditional
//! messaging extends that guarantee management to **final recipients**: an
//! application attaches a [`condition::Condition`] to a message — time
//! constraints on the *pick-up* and the *processing* of the message by
//! (sets of) recipients — and the middleware monitors, evaluates and acts
//! on the outcome:
//!
//! * [`ConditionalMessenger`] (sender side) fans the message out, logs it,
//!   parks compensation messages, consumes implicit acknowledgments and
//!   evaluates the condition to a success/failure outcome.
//! * [`ConditionalReceiver`] (receiver side) generates the implicit
//!   acknowledgments — a read-ack for a non-transactional read, a
//!   processed-ack bound to the receiver's transaction commit — and
//!   implements compensation annihilation/delivery.
//!
//! # Quick start
//!
//! ```
//! use condmsg::{Condition, ConditionalMessenger, ConditionalReceiver, Destination};
//! use condmsg::wire::MessageOutcome;
//! use mq::{QueueManager, Wait};
//! use simtime::{Millis, SimClock};
//!
//! let clock = SimClock::new();
//! let qmgr = QueueManager::builder("QM1").clock(clock.clone()).build()?;
//! qmgr.create_queue("ORDERS")?;
//!
//! let messenger = ConditionalMessenger::new(qmgr.clone())?;
//! let condition: Condition = Destination::queue("QM1", "ORDERS")
//!     .pickup_within(Millis(20_000))
//!     .into();
//! let id = messenger.send_message("order #1", &condition)?;
//!
//! let mut receiver = ConditionalReceiver::new(qmgr.clone())?;
//! receiver.read_message("ORDERS", Wait::NoWait)?.expect("delivered");
//!
//! let outcomes = messenger.pump()?;
//! assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
//! # assert_eq!(outcomes[0].cond_id, id);
//! # Ok::<(), condmsg::CondError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod condition;
pub mod config;
mod error;
pub mod eval;
mod ids;
pub mod listener;
mod messenger;
mod metrics;
pub mod pubsub;
mod receiver;
pub mod wire;

pub use analyze::{analyze, analyze_with, AnalyzeContext, AnalyzeError, Diagnostic, Severity};
pub use condition::{Condition, Destination, DestinationSet};
pub use config::CondConfig;
pub use error::{CondError, CondResult};
pub use eval::{AckState, CompiledCondition, Dimension, Verdict};
pub use ids::CondMessageId;
pub use listener::{ConditionalListener, Processing};
pub use messenger::{ConditionalMessenger, EvaluationDaemon, MessageStatus};
pub use pubsub::GroupCondition;
pub use receiver::{ConditionalReceiver, ReceivedMessage};
pub use wire::{
    AckKind, Acknowledgment, MessageKind, MessageOutcome, OutcomeNotification, SendOptions,
};
