//! The sender-side conditional messaging service (paper §2.3, §2.5–§2.7).
//!
//! [`ConditionalMessenger`] is the application's entry point for sending
//! conditional messages. It owns the four sender-side service queues of the
//! paper's architecture (Fig. 9) — `DS.SLOG.Q`, `DS.ACK.Q`, `DS.COMP.Q`,
//! `DS.OUTCOME.Q` — and implements:
//!
//! * **Send** ([`ConditionalMessenger::send_message`]): compiles the
//!   condition, journals a [`SendRecord`] to the sender log, fans the
//!   payload out as one standard message per destination leaf (with control
//!   properties), and parks pre-generated compensation messages — all in a
//!   single local messaging transaction, so a crash can never leave a
//!   half-sent conditional message.
//! * **Evaluation manager** ([`ConditionalMessenger::pump`]): consumes
//!   acknowledgments from `DS.ACK.Q` (logging each to the sender log before
//!   applying it), re-evaluates pending conditions, detects deadline and
//!   timeout expiry, and finalizes outcomes.
//! * **Outcome actions**: on success, optional success notifications to all
//!   destinations; on failure, release of the parked compensation messages
//!   (paper §2.6). Both are performed atomically with the outcome
//!   notification put on `DS.OUTCOME.Q`.
//! * **Recovery** ([`ConditionalMessenger::new`] replays the sender log):
//!   a restarted sender rebuilds its evaluation state machines exactly and
//!   continues monitoring in-flight conditional messages.
//!
//! Deterministic tests drive evaluation with [`ConditionalMessenger::pump`]
//! under a [`simtime::SimClock`]; examples and benches use
//! [`ConditionalMessenger::spawn_daemon`] with a system clock.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use bytes::Bytes;
use mq::selector::Selector;
use mq::{MetricsSnapshot, MqError, QueueAddress, QueueManager, TraceStage, Wait};
use parking_lot::{Condvar, Mutex};
use simtime::{Time, TimerId};

use crate::condition::Condition;
use crate::config::CondConfig;
use crate::error::{CondError, CondResult};
use crate::eval::{AckState, CompiledCondition, IncrementalEval, Verdict};
use crate::ids::CondMessageId;
use crate::metrics::MessengerMetrics;
use crate::wire::{
    self, AckKind, Acknowledgment, MessageOutcome, OutcomeNotification, SendOptions, SendRecord,
    SlogEntry,
};

/// Evaluation status of a conditional message, as known to this messenger.
#[derive(Debug, Clone, PartialEq)]
pub enum MessageStatus {
    /// Monitoring and evaluation are still in progress.
    Pending,
    /// The evaluation finished with this outcome.
    Decided(OutcomeNotification),
    /// The id is not known to this messenger instance.
    Unknown,
}

struct PendingEval {
    compiled: CompiledCondition,
    send_time: Time,
    timeout_at: Option<Time>,
    acks: AckState,
    success_notifications: bool,
    defer_outcome_actions: bool,
    /// Incremental mirror of the condition: per-cell satisfied/violated
    /// state updated in O(depth) per ack, so decidability is known without
    /// re-walking the tree.
    inc: IncrementalEval,
    /// The one armed deadline/timeout timer for this message (event-driven
    /// mode): id and the trigger time it is armed for.
    timer: Option<(TimerId, Time)>,
    /// Bumped every time the timer is (re)armed or cancelled; a firing
    /// callback carrying a stale generation is ignored.
    timer_gen: u64,
}

impl PendingEval {
    /// The earliest future instant at which this evaluation could be
    /// decided by time alone: the incremental structure's next deadline
    /// trigger or the evaluation timeout, whichever comes first.
    fn next_trigger(&self) -> Option<Time> {
        match (self.inc.next_deadline(), self.timeout_at) {
            (Some(d), Some(t)) => Some(d.min(t)),
            (Some(d), None) => Some(d),
            (None, Some(t)) => Some(t),
            (None, None) => None,
        }
    }
}

/// The sender-side conditional messaging service.
pub struct ConditionalMessenger {
    qmgr: Arc<QueueManager>,
    config: CondConfig,
    pending: Mutex<HashMap<CondMessageId, PendingEval>>,
    decided: Mutex<HashMap<CondMessageId, OutcomeNotification>>,
    /// Decided messages whose outcome actions are deferred (D-Spheres);
    /// value = the message's success-notification setting.
    deferred: Mutex<HashMap<CondMessageId, bool>>,
    /// Serializes pump() invocations (daemon + explicit callers).
    pump_lock: Mutex<()>,
    /// Pre-registered `cond.*` metric cells (hot paths never touch the
    /// registry).
    metrics: MessengerMetrics,
    /// Event-driven mode: acks are evaluated on arrival (ack-queue put
    /// watcher) and deadline verdicts fire from armed timers.
    event_driven: AtomicBool,
    /// Outcomes finalized outside an explicit `pump()` (timer fires,
    /// ack-arrival evaluation); the next `pump()` drains and returns them.
    recent_outcomes: Mutex<Vec<OutcomeNotification>>,
    /// Decided-outcome sequence number + condvar: bumped on every
    /// finalization so subscribers (D-Sphere termination) can park instead
    /// of poll-sleeping.
    outcome_seq: Mutex<u64>,
    outcome_cv: Condvar,
    /// Back-reference for timer callbacks and queue watchers.
    self_weak: Weak<ConditionalMessenger>,
}

impl fmt::Debug for ConditionalMessenger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConditionalMessenger")
            .field("manager", &self.qmgr.name())
            .field("pending", &self.pending.lock().len())
            .finish()
    }
}

impl ConditionalMessenger {
    /// Attaches a conditional messaging service to a queue manager with
    /// default configuration, creating the service queues if needed and
    /// recovering in-flight evaluation state from the sender log.
    ///
    /// # Errors
    ///
    /// Queue-creation or journal failures; malformed sender-log entries.
    pub fn new(qmgr: Arc<QueueManager>) -> CondResult<Arc<ConditionalMessenger>> {
        ConditionalMessenger::with_config(qmgr, CondConfig::default())
    }

    /// Like [`ConditionalMessenger::new`] with explicit configuration.
    ///
    /// # Errors
    ///
    /// See [`ConditionalMessenger::new`].
    pub fn with_config(
        qmgr: Arc<QueueManager>,
        config: CondConfig,
    ) -> CondResult<Arc<ConditionalMessenger>> {
        for queue in [
            &config.slog_queue,
            &config.ack_queue,
            &config.comp_queue,
            &config.outcome_queue,
            &config.done_queue,
        ] {
            qmgr.ensure_queue(queue)?;
        }
        let metrics = MessengerMetrics::registered(qmgr.obs().metrics());
        let messenger = Arc::new_cyclic(|weak| ConditionalMessenger {
            qmgr,
            config,
            pending: Mutex::new(HashMap::new()),
            decided: Mutex::new(HashMap::new()),
            deferred: Mutex::new(HashMap::new()),
            pump_lock: Mutex::new(()),
            metrics,
            event_driven: AtomicBool::new(false),
            recent_outcomes: Mutex::new(Vec::new()),
            outcome_seq: Mutex::new(0),
            outcome_cv: Condvar::new(),
            self_weak: weak.clone(),
        });
        messenger.recover()?;
        if messenger.config.event_driven {
            messenger.enable_event_driven()?;
        }
        Ok(messenger)
    }

    /// The underlying queue manager.
    pub fn manager(&self) -> &Arc<QueueManager> {
        &self.qmgr
    }

    /// The service configuration.
    pub fn config(&self) -> &CondConfig {
        &self.config
    }

    /// A point-in-time snapshot of every metric registered against the
    /// underlying manager's observability hub (including this service's
    /// `cond.*` metrics).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.qmgr.metrics_snapshot()
    }

    /// The shared message-lifecycle trace log.
    pub fn trace(&self) -> &mq::TraceLog {
        self.qmgr.trace()
    }

    // ------------------------------------------------------------ send --

    /// Sends a conditional message (paper's `sendMessage(Object,
    /// Condition)`). On failure a *system-generated* compensation message
    /// is delivered to every destination.
    ///
    /// # Errors
    ///
    /// [`CondError::InvalidCondition`] or messaging failures. On error
    /// nothing was sent (the send transaction rolled back).
    pub fn send_message(
        &self,
        payload: impl Into<Bytes>,
        condition: &Condition,
    ) -> CondResult<CondMessageId> {
        self.send_with(payload, None, condition, SendOptions::default())
    }

    /// Sends a conditional message with application-defined compensation
    /// data (paper's `sendMessage(Object, Object, Condition)`).
    ///
    /// # Errors
    ///
    /// See [`ConditionalMessenger::send_message`].
    pub fn send_message_with_compensation(
        &self,
        payload: impl Into<Bytes>,
        compensation: impl Into<Bytes>,
        condition: &Condition,
    ) -> CondResult<CondMessageId> {
        self.send_with(
            payload,
            Some(compensation.into()),
            condition,
            SendOptions::default(),
        )
    }

    /// Fully general send with per-send [`SendOptions`].
    ///
    /// # Errors
    ///
    /// See [`ConditionalMessenger::send_message`].
    pub fn send_with(
        &self,
        payload: impl Into<Bytes>,
        compensation: Option<Bytes>,
        condition: &Condition,
        options: SendOptions,
    ) -> CondResult<CondMessageId> {
        let payload = payload.into();
        let compiled = CompiledCondition::compile(condition)?;
        if self.config.analyze_sends {
            let ctx = crate::analyze::AnalyzeContext {
                evaluation_timeout: options
                    .evaluation_timeout
                    .or(self.config.default_evaluation_timeout),
                ack_grace: self.config.ack_grace,
                has_compensation: Some(compensation.is_some()),
            };
            let report = crate::analyze::analyze_with(condition, &ctx);
            self.metrics.analyze_runs.incr();
            self.metrics
                .analyze_warnings
                .add(report.warnings().count() as u64);
            if let Ok(err) = report.into_error() {
                self.metrics.analyze_rejected.incr();
                return Err(CondError::Analysis(err));
            }
        }
        let cond_id = CondMessageId::generate();
        let send_time = self.qmgr.clock().now();
        let record = SendRecord {
            cond_id,
            send_time,
            condition: condition.clone(),
            payload: payload.clone(),
            compensation: compensation.clone(),
            options: options.clone(),
        };

        // One local transaction covers: the send record (WAL), the fan-out
        // (local queues and transmission queues alike), and the parked
        // compensation messages. Atomic under crash.
        let mut session = self.qmgr.session();
        session.begin()?;
        session.put(
            &self.config.slog_queue,
            SlogEntry::Send(record).to_message(),
        )?;
        // Stage the parked compensations *before* the originals: commit
        // applies staged puts in order, so by the time any original is
        // visible (and can be acknowledged, evaluated and finalized), its
        // compensation is already on DS.COMP.Q.
        for leaf in compiled.leaves() {
            let comp =
                wire::make_compensation(cond_id, leaf.index, &leaf.queue, compensation.as_ref());
            session.put(&self.config.comp_queue, comp)?;
        }
        let mut leaf_dests: Vec<(u32, String)> = Vec::with_capacity(compiled.leaves().len());
        for leaf in compiled.leaves() {
            let msg = wire::make_original(
                &payload,
                cond_id,
                leaf,
                self.qmgr.name(),
                &self.config.ack_queue,
            );
            session.put_to(&leaf.queue, msg)?;
            leaf_dests.push((leaf.index, leaf.queue.to_string()));
        }
        // Register the evaluation *before* the fan-out commit: the moment
        // the commit makes the messages visible, a fast receiver's ack can
        // race into DS.ACK.Q and be pumped — it must find the pending
        // entry, not be dropped as unknown.
        let timeout_at = options
            .evaluation_timeout
            .or(self.config.default_evaluation_timeout)
            .map(|t| send_time + t);
        let success_notifications = options
            .success_notifications
            .unwrap_or(self.config.success_notifications);
        let inc = IncrementalEval::new(&compiled, send_time, self.config.ack_grace);
        self.pending.lock().insert(
            cond_id,
            PendingEval {
                compiled,
                send_time,
                timeout_at,
                acks: AckState::new(condition.leaf_count()),
                success_notifications,
                defer_outcome_actions: options.defer_outcome_actions,
                inc,
                timer: None,
                timer_gen: 0,
            },
        );
        if let Err(e) = session.commit() {
            self.pending.lock().remove(&cond_id);
            return Err(e.into());
        }
        self.metrics.sent.incr();
        self.metrics.fanout.add(leaf_dests.len() as u64);
        self.metrics
            .pending_depth
            .set(self.pending.lock().len() as u64);
        let trace = self.qmgr.trace();
        trace.record(
            send_time,
            TraceStage::Send,
            Some(cond_id.as_u128()),
            None,
            format!("{} leaves", leaf_dests.len()),
        );
        for (leaf, dest) in &leaf_dests {
            trace.record(
                send_time,
                TraceStage::FanOut,
                Some(cond_id.as_u128()),
                Some(*leaf),
                dest.clone(),
            );
        }
        if self.is_event_driven() {
            // Arm the new message's deadline timer (and decide vacuous
            // conditions) right away; no pump will come along to do it.
            // Targeted: deciding and rearming only this id keeps send
            // O(1) in the pending count — a full-cycle scan here would
            // make a burst of n sends cost O(n²).
            let _serial = self.pump_lock.lock();
            if let Ok(outs) = self.run_cycle_for(&[cond_id]) {
                self.buffer_outcomes(outs);
            }
        }
        Ok(cond_id)
    }

    // ------------------------------------------------------ evaluation --

    /// Runs one evaluation-manager cycle: drains `DS.ACK.Q`, re-evaluates
    /// pending conditions against the current clock, finalizes decided
    /// messages (outcome actions + outcome notification) and returns the
    /// newly decided outcomes.
    ///
    /// Deterministic: with a `SimClock`, `advance` + `pump` reproduces any
    /// timing scenario exactly.
    ///
    /// # Errors
    ///
    /// Messaging failures; malformed acknowledgments are consumed and
    /// skipped rather than wedging the queue.
    pub fn pump(&self) -> CondResult<Vec<OutcomeNotification>> {
        let _serial = self.pump_lock.lock();
        self.metrics.pump_iterations.incr();
        // Outcomes already finalized by timer fires / ack-arrival
        // evaluation since the last pump come first (they decided earlier).
        let mut out = std::mem::take(&mut *self.recent_outcomes.lock());
        out.extend(self.run_cycle()?);
        if self.is_event_driven() {
            self.rearm_all();
        }
        Ok(out)
    }

    /// One evaluation cycle under the pump lock: drain the ack queue in
    /// batches, expire cells against the clock, finalize every decided
    /// message and return the new outcomes.
    fn run_cycle(&self) -> CondResult<Vec<OutcomeNotification>> {
        self.drain_acks()?;
        let ids: Vec<CondMessageId> = self.pending.lock().keys().copied().collect();
        self.decide_ids(&ids)
    }

    /// Targeted cycle for the event-driven hot paths (send, ack arrival,
    /// timer fire): drains the ack queue, then decides — and rearms —
    /// only `seed` plus the messages the drained acks touched. O(touched)
    /// instead of O(pending); the full scan stays with [`pump`](Self::pump).
    /// Sound because every pending message keeps an armed timer at its
    /// next decision-relevant instant, so time-only decisions arrive via
    /// their own timer fire rather than opportunistic full scans.
    fn run_cycle_for(&self, seed: &[CondMessageId]) -> CondResult<Vec<OutcomeNotification>> {
        let mut ids = self.drain_acks()?;
        ids.extend_from_slice(seed);
        ids.sort_unstable();
        ids.dedup();
        let out = self.decide_ids(&ids)?;
        self.rearm_ids(&ids);
        Ok(out)
    }

    /// Expires cells against the clock, decides and finalizes the given
    /// messages, and returns the new outcomes. Caller holds the pump lock.
    fn decide_ids(&self, ids: &[CondMessageId]) -> CondResult<Vec<OutcomeNotification>> {
        let now = self.qmgr.clock().now();

        // Decide. Decidability comes from the O(depth)-maintained
        // incremental structure; the canonical verdict (and its reason
        // string) is rendered by one full evaluation at the decision
        // instant only.
        let mut decided = Vec::new();
        {
            let mut pending = self.pending.lock();
            for &id in ids {
                let Some(eval) = pending.get_mut(&id) else {
                    continue;
                };
                let expired = eval.inc.on_time(now);
                if expired > 0 {
                    self.metrics.eval_incremental_updates.add(expired);
                }
                let mut outcome = if eval.inc.decided() {
                    match eval.compiled.evaluate_with_grace(
                        &eval.acks,
                        eval.send_time,
                        now,
                        self.config.ack_grace,
                    ) {
                        Verdict::Satisfied => Some((MessageOutcome::Success, None)),
                        Verdict::Violated(reason) => Some((MessageOutcome::Failure, Some(reason))),
                        Verdict::Pending => None,
                    }
                } else {
                    None
                };
                if outcome.is_none() {
                    if let Some(t) = eval.timeout_at {
                        if now >= t {
                            self.metrics.verdict_timeout.incr();
                            outcome = Some((
                                MessageOutcome::Failure,
                                Some("evaluation timeout expired".to_owned()),
                            ));
                        }
                    }
                }
                if let Some((outcome, reason)) = outcome {
                    let Some(mut eval) = pending.remove(&id) else {
                        continue;
                    };
                    if let Some((timer, _)) = eval.timer.take() {
                        self.qmgr.clock().cancel(timer);
                    }
                    decided.push((id, eval, outcome, reason));
                }
            }
            self.metrics.pending_depth.set(pending.len() as u64);
        }

        // Finalize outside the pending lock (messaging I/O).
        let mut out = Vec::new();
        for (id, eval, outcome, reason) in decided {
            let notification = self.finalize(id, &eval, outcome, reason, now)?;
            self.decided.lock().insert(id, notification.clone());
            out.push(notification);
        }
        Ok(out)
    }

    /// Drains the ack queue and applies every ack for a known pending
    /// message; returns the (sorted, deduplicated) ids those acks touched.
    fn drain_acks(&self) -> CondResult<Vec<CondMessageId>> {
        let mut touched: Vec<CondMessageId> = Vec::new();
        let ack_queue = self.qmgr.queue(&self.config.ack_queue)?;
        let batch_cap = self.config.ack_batch.max(1) as u64;
        loop {
            // Fast path: an idle wakeup must not open a session (or touch
            // the journal) just to learn there is nothing to drain.
            if ack_queue.is_empty() {
                touched.sort_unstable();
                touched.dedup();
                return Ok(touched);
            }
            // One messaging transaction per batch: up to `ack_batch` gets
            // plus their AckSeen WAL entries commit as a single grouped
            // journal record instead of one append per ack.
            let mut session = self.qmgr.session();
            session.begin()?;
            let mut consumed = 0u64;
            let mut batch: Vec<Acknowledgment> = Vec::new();
            while consumed < batch_cap {
                let Some(msg) = session.get(&self.config.ack_queue, Wait::NoWait)? else {
                    break;
                };
                consumed += 1;
                // Malformed acks and acks for unknown messages are consumed
                // with the batch rather than wedging the queue.
                if let Ok(ack) = Acknowledgment::from_message(&msg) {
                    // Log the ack before applying it (WAL): recovery
                    // replays AckSeen entries to rebuild in-memory state.
                    if self.pending.lock().contains_key(&ack.cond_id) {
                        session.put(
                            &self.config.slog_queue,
                            SlogEntry::AckSeen(ack.clone()).to_message(),
                        )?;
                        batch.push(ack);
                    }
                }
            }
            if consumed == 0 {
                session.rollback()?;
                touched.sort_unstable();
                touched.dedup();
                return Ok(touched);
            }
            session.commit()?;
            self.metrics.ack_batch_size.record(consumed);
            for ack in &batch {
                self.apply_ack(ack);
                touched.push(ack.cond_id);
            }
        }
    }

    fn apply_ack(&self, ack: &Acknowledgment) {
        let now = self.qmgr.clock().now();
        let mut pending = self.pending.lock();
        if let Some(eval) = pending.get_mut(&ack.cond_id) {
            let (stage, stamped_at) = match ack.kind {
                AckKind::Read => {
                    eval.acks
                        .record_read(ack.leaf, ack.read_at, ack.recipient.clone());
                    self.metrics.acks_read.incr();
                    (TraceStage::ReadAck, ack.read_at)
                }
                AckKind::Processed => {
                    let processed_at = ack.processed_at.unwrap_or(ack.read_at);
                    eval.acks.record_processed(
                        ack.leaf,
                        ack.read_at,
                        processed_at,
                        ack.recipient.clone(),
                    );
                    self.metrics.acks_processed.incr();
                    (TraceStage::ProcessAck, processed_at)
                }
            };
            let updates = eval.inc.apply_ack(ack.leaf, &eval.acks);
            if updates > 0 {
                self.metrics.eval_incremental_updates.add(updates);
            }
            drop(pending);
            // Ack-queue lag: simtime between the receiver stamping the ack
            // and the evaluation manager applying it.
            self.metrics.ack_lag_ms.record(now.since(stamped_at).as_u64());
            self.qmgr.trace().record(
                now,
                stage,
                Some(ack.cond_id.as_u128()),
                Some(ack.leaf),
                ack.recipient.clone().unwrap_or_default(),
            );
        }
    }

    // ------------------------------------------------- event-driven mode --

    /// Whether the evaluation manager is running event-driven (acks
    /// evaluated on arrival, deadline verdicts from armed timers).
    pub fn is_event_driven(&self) -> bool {
        self.event_driven.load(Ordering::SeqCst)
    }

    /// Switches the evaluation manager to event-driven operation:
    ///
    /// * every put on the ack queue triggers an immediate drain+evaluate on
    ///   the putting thread (synchronous under a [`simtime::SimClock`], so
    ///   the ack that satisfies the last undecided leaf produces its
    ///   outcome notification with no intervening `advance` or `pump`);
    /// * each pending message keeps exactly one armed timer at its next
    ///   decision-relevant instant (earliest undecided cell's
    ///   deadline-plus-grace trigger, or the evaluation timeout), fired by
    ///   the clock — on `advance` for a sim clock, from the parked waiter
    ///   thread for a system clock.
    ///
    /// `pump()` keeps working as the deterministic thin wrapper (drain +
    /// fire-due evaluation) and additionally returns outcomes the event
    /// path finalized since the last call. Idempotent.
    ///
    /// # Errors
    ///
    /// Messaging failures while catching up on already-queued acks.
    pub fn enable_event_driven(&self) -> CondResult<()> {
        if self.event_driven.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        let weak = self.self_weak.clone();
        self.qmgr
            .queue(&self.config.ack_queue)?
            .add_put_watcher(Arc::new(move || {
                if let Some(messenger) = weak.upgrade() {
                    messenger.on_ack_arrival();
                }
            }));
        // Catch up: drain anything already queued, then arm timers for
        // every pending message.
        let _serial = self.pump_lock.lock();
        let outs = self.run_cycle()?;
        self.buffer_outcomes(outs);
        self.rearm_all();
        Ok(())
    }

    fn buffer_outcomes(&self, outs: Vec<OutcomeNotification>) {
        if !outs.is_empty() {
            self.recent_outcomes.lock().extend(outs);
        }
    }

    /// Ack-queue put watcher: evaluate the moment an ack lands. Only the
    /// messages the drained acks touch are re-evaluated and rearmed;
    /// everything else keeps its armed timer.
    fn on_ack_arrival(&self) {
        if !self.is_event_driven() {
            return;
        }
        let _serial = self.pump_lock.lock();
        // Errors mean the manager is shutting down; the queue close path
        // handles cleanup.
        if let Ok(outs) = self.run_cycle_for(&[]) {
            self.buffer_outcomes(outs);
        }
    }

    /// Deadline/timeout timer callback for one pending message.
    fn on_timer(&self, id: CondMessageId, gen: u64) {
        let _serial = self.pump_lock.lock();
        {
            let mut pending = self.pending.lock();
            match pending.get_mut(&id) {
                // The armed timer for this message really is the one that
                // fired; it is no longer scheduled.
                Some(eval) if eval.timer_gen == gen => eval.timer = None,
                // Stale fire (rearmed since) or already decided.
                _ => return,
            }
        }
        self.metrics.eval_timer_fires.incr();
        if let Ok(outs) = self.run_cycle_for(&[id]) {
            self.buffer_outcomes(outs);
        }
    }

    /// Ensures every pending message has exactly one armed timer at its
    /// next trigger instant (and none when no future instant can decide
    /// it). Caller holds the pump lock.
    fn rearm_all(&self) {
        let mut pending = self.pending.lock();
        for (id, eval) in pending.iter_mut() {
            self.rearm_entry(*id, eval);
        }
    }

    /// [`rearm_all`](Self::rearm_all) restricted to the given ids
    /// (already-decided ids are skipped). Caller holds the pump lock.
    fn rearm_ids(&self, ids: &[CondMessageId]) {
        let mut pending = self.pending.lock();
        for id in ids {
            if let Some(eval) = pending.get_mut(id) {
                self.rearm_entry(*id, eval);
            }
        }
    }

    fn rearm_entry(&self, id: CondMessageId, eval: &mut PendingEval) {
        let clock = self.qmgr.clock();
        match (eval.next_trigger(), eval.timer) {
            (Some(at), Some((_, armed))) if armed == at => {}
            (Some(at), previous) => {
                if let Some((timer, _)) = previous {
                    clock.cancel(timer);
                }
                eval.timer_gen += 1;
                let gen = eval.timer_gen;
                let weak = self.self_weak.clone();
                let timer = clock.schedule_at(
                    at,
                    Box::new(move || {
                        if let Some(messenger) = weak.upgrade() {
                            messenger.on_timer(id, gen);
                        }
                    }),
                );
                eval.timer = Some((timer, at));
            }
            (None, Some((timer, _))) => {
                clock.cancel(timer);
                eval.timer_gen += 1;
                eval.timer = None;
            }
            (None, None) => {}
        }
    }

    /// Blocks (real time) until any conditional message is decided or
    /// `timeout` elapses; returns whether a decision happened. D-Sphere
    /// termination parks here instead of sleep-polling.
    pub fn wait_outcome_event(&self, timeout: Duration) -> bool {
        let mut seq = self.outcome_seq.lock();
        let start = *seq;
        self.outcome_cv.wait_for(&mut seq, timeout);
        *seq != start
    }

    fn note_outcome(&self) {
        *self.outcome_seq.lock() += 1;
        self.outcome_cv.notify_all();
    }

    fn finalize(
        &self,
        cond_id: CondMessageId,
        eval: &PendingEval,
        outcome: MessageOutcome,
        reason: Option<String>,
        now: Time,
    ) -> CondResult<OutcomeNotification> {
        let notification = OutcomeNotification {
            cond_id,
            outcome,
            reason,
            decided_at: now,
        };

        // One transaction: the outcome log entry, the outcome actions
        // (compensation release or success notifications, plus removal of
        // the parked compensations), and the outcome notification.
        let mut session = self.qmgr.session();
        session.begin()?;
        session.put(
            &self.config.done_queue,
            SlogEntry::Outcome {
                cond_id,
                outcome,
                decided_at: now,
            }
            .to_message(),
        )?;
        let mut staged = Vec::new();
        if !eval.defer_outcome_actions {
            self.stage_outcome_actions(
                &mut session,
                cond_id,
                outcome,
                eval.success_notifications,
                &mut staged,
            )?;
        }
        session.put(&self.config.outcome_queue, notification.to_message())?;
        session.commit()?;

        match outcome {
            MessageOutcome::Success => self.metrics.verdict_success.incr(),
            MessageOutcome::Failure => self.metrics.verdict_failure.incr(),
        }
        self.qmgr.trace().record(
            now,
            TraceStage::Verdict,
            Some(cond_id.as_u128()),
            None,
            match (&outcome, &notification.reason) {
                (MessageOutcome::Success, _) => "success".to_owned(),
                (MessageOutcome::Failure, Some(reason)) => format!("failure: {reason}"),
                (MessageOutcome::Failure, None) => "failure".to_owned(),
            },
        );
        self.record_outcome_actions(cond_id, staged);

        if eval.defer_outcome_actions {
            // Keep the send record (for recovery) and the parked
            // compensations until the sphere releases the actions.
            let mut deferred = self.deferred.lock();
            deferred.insert(cond_id, eval.success_notifications);
            self.metrics.deferred_depth.set(deferred.len() as u64);
        } else {
            // Cleanup pass: drop the send/ack log entries; the outcome
            // entry on the history queue marks the message decided for any
            // future recovery.
            self.purge_slog(cond_id)?;
        }
        self.note_outcome();
        Ok(notification)
    }

    /// Stages the outcome actions for `cond_id` into `session`: on failure
    /// the parked compensation messages are released to their destinations;
    /// on success they are consumed and, when enabled, success
    /// notifications are sent instead (paper §2.6).
    fn stage_outcome_actions(
        &self,
        session: &mut mq::Session,
        cond_id: CondMessageId,
        outcome: MessageOutcome,
        success_notifications: bool,
        staged: &mut Vec<(TraceStage, u32, String)>,
    ) -> CondResult<()> {
        // Parked compensations carry the conditional message id as their
        // correlation id; the indexed get avoids scanning a busy DS.COMP.Q.
        while let Some(comp) =
            session.get_by_correlation(&self.config.comp_queue, &cond_id.to_hex(), Wait::NoWait)?
        {
            let dest = comp
                .str_property(wire::P_COMP_DEST)
                .and_then(QueueAddress::parse)
                .ok_or_else(|| CondError::Malformed("compensation missing destination".into()))?;
            let leaf = wire::leaf_of(&comp)?;
            match outcome {
                MessageOutcome::Failure => {
                    session.put_to(&dest, comp)?;
                    staged.push((TraceStage::CompensationReleased, leaf, dest.to_string()));
                }
                MessageOutcome::Success => {
                    if success_notifications {
                        session.put_to(&dest, wire::make_success_notification(cond_id, leaf))?;
                        staged.push((TraceStage::SuccessNotify, leaf, dest.to_string()));
                    }
                    // The parked compensation is simply consumed.
                    staged.push((TraceStage::CompensationConsumed, leaf, String::new()));
                }
            }
        }
        Ok(())
    }

    /// Counts and traces the outcome actions staged by
    /// [`stage_outcome_actions`](Self::stage_outcome_actions). Called only
    /// after the surrounding transaction commits, so the trace never shows
    /// an action that was rolled back and the verdict event always precedes
    /// its actions.
    fn record_outcome_actions(
        &self,
        cond_id: CondMessageId,
        staged: Vec<(TraceStage, u32, String)>,
    ) {
        let now = self.qmgr.clock().now();
        for (stage, leaf, detail) in staged {
            match stage {
                TraceStage::CompensationReleased => self.metrics.comp_released.incr(),
                TraceStage::SuccessNotify => self.metrics.notify_success.incr(),
                TraceStage::CompensationConsumed => self.metrics.comp_consumed.incr(),
                _ => {}
            }
            self.qmgr
                .trace()
                .record(now, stage, Some(cond_id.as_u128()), Some(leaf), detail);
        }
    }

    /// Performs the deferred outcome actions of a decided conditional
    /// message, treating it per `group_outcome` — the overall outcome of
    /// the Dependency-Sphere the message belonged to (paper §3.1: "only
    /// when the D-Sphere terminates as a whole … outcome actions for all
    /// individual messages … will be initiated based on the overall
    /// D-Sphere outcome").
    ///
    /// # Errors
    ///
    /// [`CondError::UnknownMessage`] when the message has no deferred
    /// actions pending; messaging failures.
    pub fn release_outcome_actions(
        &self,
        cond_id: CondMessageId,
        group_outcome: MessageOutcome,
    ) -> CondResult<()> {
        let success_notifications = {
            let mut deferred = self.deferred.lock();
            let sn = deferred
                .remove(&cond_id)
                .ok_or(CondError::UnknownMessage(cond_id))?;
            self.metrics.deferred_depth.set(deferred.len() as u64);
            sn
        };
        let mut session = self.qmgr.session();
        session.begin()?;
        let mut staged = Vec::new();
        self.stage_outcome_actions(
            &mut session,
            cond_id,
            group_outcome,
            success_notifications,
            &mut staged,
        )?;
        session.commit()?;
        self.record_outcome_actions(cond_id, staged);
        self.purge_slog(cond_id)?;
        Ok(())
    }

    /// Forces a pending conditional message to fail immediately (used when
    /// a Dependency-Sphere aborts while member evaluations are still in
    /// progress). Returns the resulting (or previously decided) outcome.
    ///
    /// # Errors
    ///
    /// [`CondError::UnknownMessage`] for ids this messenger never sent.
    pub fn force_fail(
        &self,
        cond_id: CondMessageId,
        reason: impl Into<String>,
    ) -> CondResult<OutcomeNotification> {
        let _serial = self.pump_lock.lock();
        let eval = self.pending.lock().remove(&cond_id);
        match eval {
            Some(mut eval) => {
                if let Some((timer, _)) = eval.timer.take() {
                    self.qmgr.clock().cancel(timer);
                }
                let now = self.qmgr.clock().now();
                let notification = self.finalize(
                    cond_id,
                    &eval,
                    MessageOutcome::Failure,
                    Some(reason.into()),
                    now,
                )?;
                self.decided.lock().insert(cond_id, notification.clone());
                Ok(notification)
            }
            None => self
                .decided
                .lock()
                .get(&cond_id)
                .cloned()
                .ok_or(CondError::UnknownMessage(cond_id)),
        }
    }

    /// Removes every active-log entry of a decided conditional message
    /// (correlation-indexed: O(entries for this message)).
    fn purge_slog(&self, cond_id: CondMessageId) -> CondResult<()> {
        while self
            .qmgr
            .get_by_correlation(&self.config.slog_queue, &cond_id.to_hex(), Wait::NoWait)?
            .is_some()
        {}
        Ok(())
    }

    /// Drains decided-outcome history entries older than `before` from the
    /// history queue, bounding its growth; returns how many were removed.
    ///
    /// # Errors
    ///
    /// Messaging failures.
    pub fn prune_decided_before(&self, before: Time) -> CondResult<usize> {
        let selector = Selector::parse(&format!(
            "{} = 'outcome' AND {} < {}",
            wire::P_SLOG_ENTRY,
            wire::P_SLOG_DECIDED_TS,
            before.as_millis()
        ))
        .map_err(MqError::from)?;
        let mut n = 0;
        while let Some(msg) =
            self.qmgr
                .get_selected(&self.config.done_queue, &selector, Wait::NoWait)?
        {
            if let Ok(id) = wire::cond_id_of(&msg) {
                self.decided.lock().remove(&id);
            }
            n += 1;
        }
        Ok(n)
    }

    // ---------------------------------------------------------- status --

    /// Reports what this messenger knows about a conditional message.
    pub fn status(&self, id: CondMessageId) -> MessageStatus {
        if let Some(n) = self.decided.lock().get(&id) {
            return MessageStatus::Decided(n.clone());
        }
        if self.pending.lock().contains_key(&id) {
            return MessageStatus::Pending;
        }
        MessageStatus::Unknown
    }

    /// Number of conditional messages still under evaluation.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Consumes the outcome notification for `id` from `DS.OUTCOME.Q`,
    /// waiting per `wait`. Applications correlate outcomes with the
    /// conditional message id returned by send (paper §2.3).
    ///
    /// Note: with a manual-pump setup, call [`ConditionalMessenger::pump`]
    /// first; the notification only exists once the evaluation completed.
    ///
    /// # Errors
    ///
    /// Messaging failures or a malformed notification.
    pub fn take_outcome(
        &self,
        id: CondMessageId,
        wait: Wait,
    ) -> CondResult<Option<OutcomeNotification>> {
        match self
            .qmgr
            .get_by_correlation(&self.config.outcome_queue, &id.to_hex(), wait)?
        {
            Some(msg) => Ok(Some(OutcomeNotification::from_message(&msg)?)),
            None => Ok(None),
        }
    }

    // -------------------------------------------------------- recovery --

    /// Rebuilds evaluation state from the sender log (paper §2.3: "creates
    /// a log entry for the outgoing messages and stores the log entry
    /// persistently"). Called automatically from the constructor.
    fn recover(&self) -> CondResult<()> {
        let slog = self.qmgr.queue(&self.config.slog_queue)?;
        let mut sends: HashMap<CondMessageId, SendRecord> = HashMap::new();
        let mut acks: Vec<Acknowledgment> = Vec::new();
        let mut outcomes: HashMap<CondMessageId, (MessageOutcome, Time)> = HashMap::new();
        for msg in slog.browse() {
            match SlogEntry::from_message(&msg)? {
                SlogEntry::Send(record) => {
                    sends.insert(record.cond_id, record);
                }
                SlogEntry::AckSeen(ack) => acks.push(ack),
                SlogEntry::Outcome { .. } => {
                    // Legacy location; outcome history lives on done_queue.
                }
            }
        }
        for msg in self.qmgr.queue(&self.config.done_queue)?.browse() {
            if let SlogEntry::Outcome {
                cond_id,
                outcome,
                decided_at,
            } = SlogEntry::from_message(&msg)?
            {
                outcomes.insert(cond_id, (outcome, decided_at));
            }
        }
        let mut pending = self.pending.lock();
        let mut decided = self.decided.lock();
        let mut leftovers: Vec<CondMessageId> = Vec::new();
        // Outcome entries whose send/ack entries were already purged: the
        // message is decided; remember the outcome for status queries.
        for (cond_id, (outcome, decided_at)) in &outcomes {
            if !sends.contains_key(cond_id) {
                decided.insert(
                    *cond_id,
                    OutcomeNotification {
                        cond_id: *cond_id,
                        outcome: *outcome,
                        reason: None,
                        decided_at: *decided_at,
                    },
                );
            }
        }
        let mut deferred = self.deferred.lock();
        for (cond_id, record) in sends {
            if let Some((outcome, decided_at)) = outcomes.get(&cond_id) {
                // Already decided before the crash.
                decided.insert(
                    cond_id,
                    OutcomeNotification {
                        cond_id,
                        outcome: *outcome,
                        reason: None,
                        decided_at: *decided_at,
                    },
                );
                if record.options.defer_outcome_actions {
                    // Actions still owed to the sphere; keep the log
                    // entries and parked compensations.
                    deferred.insert(
                        cond_id,
                        record
                            .options
                            .success_notifications
                            .unwrap_or(self.config.success_notifications),
                    );
                } else {
                    leftovers.push(cond_id);
                }
                continue;
            }
            let compiled = CompiledCondition::compile(&record.condition)?;
            let leaf_count = compiled.leaves().len();
            let inc = IncrementalEval::new(&compiled, record.send_time, self.config.ack_grace);
            let mut eval = PendingEval {
                acks: AckState::new(leaf_count),
                compiled,
                send_time: record.send_time,
                timeout_at: record
                    .options
                    .evaluation_timeout
                    .or(self.config.default_evaluation_timeout)
                    .map(|t| record.send_time + t),
                success_notifications: record
                    .options
                    .success_notifications
                    .unwrap_or(self.config.success_notifications),
                defer_outcome_actions: record.options.defer_outcome_actions,
                inc,
                timer: None,
                timer_gen: 0,
            };
            for ack in acks.iter().filter(|a| a.cond_id == cond_id) {
                match ack.kind {
                    AckKind::Read => {
                        eval.acks
                            .record_read(ack.leaf, ack.read_at, ack.recipient.clone())
                    }
                    AckKind::Processed => eval.acks.record_processed(
                        ack.leaf,
                        ack.read_at,
                        ack.processed_at.unwrap_or(ack.read_at),
                        ack.recipient.clone(),
                    ),
                }
            }
            // Replay the rebuilt ack state into the incremental structure.
            for leaf in 0..leaf_count as u32 {
                eval.inc.apply_ack(leaf, &eval.acks);
            }
            pending.insert(cond_id, eval);
        }
        drop(pending);
        drop(decided);
        drop(deferred);
        for cond_id in leftovers {
            self.purge_slog(cond_id)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------- daemon --

    /// Spawns a background thread that pumps the evaluation manager.
    /// Polling mode sleeps `poll` of real time between cycles; in
    /// [event-driven](Self::enable_event_driven) mode the thread instead
    /// parks on the ack queue's condvar (acks wake it immediately,
    /// deadline verdicts come from the armed timers) and the daemon is
    /// only a drain-backstop. Tests with a `SimClock` should pump
    /// manually instead.
    ///
    /// # Errors
    ///
    /// [`CondError::Daemon`] when the OS refuses to spawn the thread.
    pub fn spawn_daemon(self: &Arc<Self>, poll: Duration) -> CondResult<EvaluationDaemon> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let messenger = self.clone();
        let ack_queue = self.qmgr.queue(&self.config.ack_queue)?;
        let poll_ms = simtime::Millis((poll.as_millis() as u64).max(1));
        let handle = std::thread::Builder::new()
            .name(format!("condmsg-eval-{}", self.qmgr.name()))
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    if messenger.pump().is_err() && !messenger.qmgr.is_running() {
                        return;
                    }
                    if messenger.is_event_driven() {
                        // Park until an ack lands (bounded so the stop flag
                        // stays responsive).
                        if ack_queue
                            .wait_nonempty(Wait::Timeout(simtime::Millis(200)))
                            .is_err()
                            && !messenger.qmgr.is_running()
                        {
                            return;
                        }
                    } else {
                        // Bounded park on the ack queue's condvar: an
                        // arriving ack wakes the pump immediately, and the
                        // timeout keeps the poll cadence for deadline and
                        // timeout evaluation.
                        if ack_queue.wait_nonempty(Wait::Timeout(poll_ms)).is_err()
                            && !messenger.qmgr.is_running()
                        {
                            return;
                        }
                    }
                }
            })
            .map_err(|e| CondError::Daemon(e.to_string()))?;
        Ok(EvaluationDaemon {
            stop,
            handle: Some(handle),
        })
    }
}

/// Handle to a running evaluation daemon; stops (and joins) on drop.
pub struct EvaluationDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl fmt::Debug for EvaluationDaemon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EvaluationDaemon")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl EvaluationDaemon {
    /// Stops the daemon and waits for the thread to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for EvaluationDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Destination, DestinationSet};
    use crate::config::{DEFAULT_COMP_QUEUE, DEFAULT_SLOG_QUEUE};
    use mq::journal::MemJournal;
    use mq::Message;
    use simtime::{Millis, SimClock};

    fn setup() -> (Arc<SimClock>, Arc<QueueManager>, Arc<ConditionalMessenger>) {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        (clock, qmgr, messenger)
    }

    fn two_dest_condition(window: Millis) -> Condition {
        DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A").into(),
            Destination::queue("QM1", "Q.B").into(),
        ])
        .pickup_within(window)
        .into()
    }

    fn fake_read_ack(id: CondMessageId, leaf: u32, at: Time) -> Message {
        Acknowledgment {
            cond_id: id,
            leaf,
            kind: AckKind::Read,
            read_at: at,
            processed_at: None,
            recipient: None,
        }
        .to_message()
    }

    #[test]
    fn unsatisfiable_condition_rejected_before_any_put() {
        let (_clock, qmgr, messenger) = setup();
        // Both members carry 0 ms windows: zero-window errors plus an
        // unsatisfiable implicit min count — rejected by the analyzer.
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A")
                .pickup_within(Millis::ZERO)
                .into(),
            Destination::queue("QM1", "Q.B")
                .pickup_within(Millis::ZERO)
                .into(),
        ])
        .into();
        let err = messenger.send_message("doomed", &cond).unwrap_err();
        match &err {
            CondError::Analysis(e) => {
                assert!(!e.diagnostics().is_empty());
                assert!(err.to_string().contains("zero-window"), "{err}");
            }
            other => panic!("expected analysis rejection, got {other:?}"),
        }
        // Nothing was staged or registered: no destination put, no send
        // record, no parked compensation, no pending evaluation.
        for queue in ["Q.A", "Q.B", DEFAULT_SLOG_QUEUE, DEFAULT_COMP_QUEUE] {
            assert!(qmgr.get(queue, Wait::NoWait).unwrap().is_none(), "{queue}");
        }
        assert!(messenger.pending.lock().is_empty());
        assert_eq!(messenger.metrics.analyze_rejected.get(), 1);
        assert_eq!(messenger.metrics.sent.get(), 0);
    }

    #[test]
    fn analyzer_warnings_counted_but_send_proceeds() {
        let (_clock, qmgr, messenger) = setup();
        // Duplicate destination is warning-severity: counted, not rejected.
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A").into(),
            Destination::queue("QM1", "Q.A").into(),
        ])
        .pickup_within(Millis(100))
        .into();
        messenger.send_message("dup", &cond).unwrap();
        assert!(messenger.metrics.analyze_warnings.get() >= 1);
        assert_eq!(messenger.metrics.analyze_rejected.get(), 0);
        assert!(qmgr.get("Q.A", Wait::NoWait).unwrap().is_some());
    }

    #[test]
    fn analyze_sends_off_bypasses_rejection() {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        let config = CondConfig {
            analyze_sends: false,
            ..CondConfig::default()
        };
        let messenger = ConditionalMessenger::with_config(qmgr.clone(), config).unwrap();
        let cond: Condition = Destination::queue("QM1", "Q.A")
            .pickup_within(Millis::ZERO)
            .into();
        messenger.send_message("legacy", &cond).unwrap();
        assert!(qmgr.get("Q.A", Wait::NoWait).unwrap().is_some());
    }

    #[test]
    fn send_fans_out_with_control_properties() {
        let (_clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        for queue in ["Q.A", "Q.B"] {
            let msg = qmgr.get(queue, Wait::NoWait).unwrap().unwrap();
            assert_eq!(msg.payload_str(), Some("hello"));
            assert_eq!(wire::cond_id_of(&msg).unwrap(), id);
            assert_eq!(msg.str_property(wire::P_SENDER_MANAGER), Some("QM1"));
            assert_eq!(msg.str_property(wire::P_ACK_QUEUE), Some("DS.ACK.Q"));
        }
        // One compensation parked per destination.
        assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 2);
        // One send record on the log.
        assert_eq!(qmgr.queue("DS.SLOG.Q").unwrap().depth(), 1);
        assert_eq!(messenger.status(id), MessageStatus::Pending);
        assert_eq!(messenger.pending_count(), 1);
    }

    #[test]
    fn invalid_condition_sends_nothing() {
        let (_clock, qmgr, messenger) = setup();
        let bad: Condition = DestinationSet::empty().into();
        assert!(messenger.send_message("x", &bad).is_err());
        assert_eq!(qmgr.queue("DS.SLOG.Q").unwrap().depth(), 0);
        assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 0);
        assert_eq!(messenger.pending_count(), 0);
    }

    #[test]
    fn timely_acks_produce_success_and_clear_compensations() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        clock.advance(Millis(10));
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(10)))
            .unwrap();
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 1, Time(10)))
            .unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
        assert_eq!(outcomes[0].cond_id, id);
        // Compensations consumed, not delivered.
        assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 0);
        assert_eq!(qmgr.queue("Q.A").unwrap().depth(), 1, "only the original");
        // Outcome notification available and consumable.
        let n = messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
        assert_eq!(n.outcome, MessageOutcome::Success);
        assert!(messenger.take_outcome(id, Wait::NoWait).unwrap().is_none());
        assert!(matches!(messenger.status(id), MessageStatus::Decided(_)));
        // Send/ack log entries purged from the active log; the outcome
        // entry lives on the history queue.
        assert_eq!(qmgr.queue("DS.SLOG.Q").unwrap().depth(), 0);
        let done = qmgr.queue("DS.DONE.Q").unwrap().browse();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].str_property(wire::P_SLOG_ENTRY), Some("outcome"));
    }

    #[test]
    fn deadline_passing_without_acks_fails_and_compensates() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        clock.advance(Millis(50));
        assert!(messenger.pump().unwrap().is_empty(), "still pending");
        clock.advance(Millis(51));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
        assert!(outcomes[0].reason.as_deref().unwrap().contains("pick-up"));
        // Compensation messages delivered to both destinations.
        for queue in ["Q.A", "Q.B"] {
            let msgs = qmgr.queue(queue).unwrap().browse();
            assert_eq!(msgs.len(), 2, "{queue}: original + compensation");
            assert!(msgs
                .iter()
                .any(|m| wire::kind_of(m) == wire::MessageKind::Compensation));
        }
        assert_eq!(qmgr.queue("DS.COMP.Q").unwrap().depth(), 0);
        assert_eq!(messenger.status(id), {
            let n = messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
            MessageStatus::Decided(n)
        });
    }

    #[test]
    fn late_ack_fails_immediately_before_deadline_of_others() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_message("x", &two_dest_condition(Millis(100)))
            .unwrap();
        clock.advance(Millis(150));
        // Ack arrives but its read timestamp is beyond the window.
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(120)))
            .unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    }

    #[test]
    fn evaluation_timeout_fails_pending_message() {
        let (clock, qmgr, messenger) = setup();
        // Processing window is long, but the evaluation timeout cuts in
        // first (paper: "a timeout … to ultimately terminate an
        // evaluation").
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A").into(),
            Destination::queue("QM1", "Q.B").into(),
        ])
        .process_within(Millis(10_000))
        .min_process(2)
        .into();
        let id = messenger
            .send_with(
                "x",
                None,
                &cond,
                SendOptions {
                    evaluation_timeout: Some(Millis(500)),
                    ..SendOptions::default()
                },
            )
            .unwrap();
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(10)))
            .unwrap();
        clock.advance(Millis(499));
        assert!(messenger.pump().unwrap().is_empty());
        clock.advance(Millis(1));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
        assert!(outcomes[0].reason.as_deref().unwrap().contains("timeout"));
    }

    #[test]
    fn success_notifications_sent_when_enabled() {
        let (clock, qmgr, messenger) = setup();
        let id = messenger
            .send_with(
                "x",
                None,
                &two_dest_condition(Millis(100)),
                SendOptions {
                    success_notifications: Some(true),
                    ..SendOptions::default()
                },
            )
            .unwrap();
        clock.advance(Millis(5));
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(5))).unwrap();
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 1, Time(5))).unwrap();
        messenger.pump().unwrap();
        for queue in ["Q.A", "Q.B"] {
            let msgs = qmgr.queue(queue).unwrap().browse();
            assert!(
                msgs.iter()
                    .any(|m| wire::kind_of(m) == wire::MessageKind::SuccessNotification),
                "{queue} received a success notification"
            );
        }
    }

    #[test]
    fn application_compensation_data_is_delivered() {
        let (clock, qmgr, messenger) = setup();
        messenger
            .send_message_with_compensation(
                "meeting at 10",
                "meeting cancelled",
                &two_dest_condition(Millis(100)),
            )
            .unwrap();
        clock.advance(Millis(200));
        messenger.pump().unwrap();
        let comp = qmgr
            .queue("Q.A")
            .unwrap()
            .browse()
            .into_iter()
            .find(|m| wire::kind_of(m) == wire::MessageKind::Compensation)
            .unwrap();
        assert_eq!(comp.payload_str(), Some("meeting cancelled"));
        assert_eq!(comp.bool_property(wire::P_COMP_SYSTEM), Some(false));
    }

    #[test]
    fn acks_for_unknown_messages_are_consumed_silently() {
        let (_clock, qmgr, messenger) = setup();
        qmgr.put(
            "DS.ACK.Q",
            fake_read_ack(CondMessageId::generate(), 0, Time(1)),
        )
        .unwrap();
        qmgr.put("DS.ACK.Q", Message::text("not an ack").build())
            .unwrap();
        assert!(messenger.pump().unwrap().is_empty());
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 0);
        // No stray log entries.
        assert_eq!(qmgr.queue("DS.SLOG.Q").unwrap().depth(), 0);
    }

    #[test]
    fn multiple_messages_evaluate_independently() {
        let (clock, qmgr, messenger) = setup();
        let fast = messenger
            .send_message("fast", &two_dest_condition(Millis(50)))
            .unwrap();
        let slow = messenger
            .send_message("slow", &two_dest_condition(Millis(500)))
            .unwrap();
        clock.advance(Millis(10));
        qmgr.put("DS.ACK.Q", fake_read_ack(fast, 0, Time(10)))
            .unwrap();
        qmgr.put("DS.ACK.Q", fake_read_ack(fast, 1, Time(10)))
            .unwrap();
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].cond_id, fast);
        assert_eq!(messenger.status(slow), MessageStatus::Pending);
        clock.advance(Millis(600));
        let outcomes = messenger.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].cond_id, slow);
        assert_eq!(outcomes[0].outcome, MessageOutcome::Failure);
    }

    #[test]
    fn recovery_rebuilds_pending_state_and_continues() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        // One ack observed (and logged) before the crash.
        clock.advance(Millis(10));
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(10)))
            .unwrap();
        messenger.pump().unwrap();
        qmgr.crash();

        // Restart: same journal, fresh manager + messenger.
        let qmgr2 = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal)
            .build()
            .unwrap();
        let messenger2 = ConditionalMessenger::new(qmgr2.clone()).unwrap();
        assert_eq!(messenger2.status(id), MessageStatus::Pending);
        assert_eq!(messenger2.pending_count(), 1);
        // The second ack arrives after restart; evaluation completes.
        qmgr2
            .put("DS.ACK.Q", fake_read_ack(id, 1, Time(20)))
            .unwrap();
        clock.advance(Millis(10));
        let outcomes = messenger2.pump().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].outcome, MessageOutcome::Success);
    }

    #[test]
    fn recovery_skips_already_decided_messages() {
        let clock = SimClock::new();
        let journal = MemJournal::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .journal(journal.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let id = messenger
            .send_message("x", &two_dest_condition(Millis(50)))
            .unwrap();
        clock.advance(Millis(100));
        messenger.pump().unwrap(); // decides failure
        qmgr.crash();

        let qmgr2 = QueueManager::builder("QM1")
            .clock(clock)
            .journal(journal)
            .build()
            .unwrap();
        let messenger2 = ConditionalMessenger::new(qmgr2).unwrap();
        assert_eq!(messenger2.pending_count(), 0);
        assert!(matches!(
            messenger2.status(id),
            MessageStatus::Decided(n) if n.outcome == MessageOutcome::Failure
        ));
    }

    #[test]
    fn unknown_id_status() {
        let (_clock, _qmgr, messenger) = setup();
        assert_eq!(
            messenger.status(CondMessageId::generate()),
            MessageStatus::Unknown
        );
    }

    #[test]
    fn prune_decided_history() {
        let (clock, qmgr, messenger) = setup();
        // Two messages decided at different times.
        let early = messenger
            .send_message("a", &two_dest_condition(Millis(10)))
            .unwrap();
        clock.advance(Millis(20));
        messenger.pump().unwrap(); // early fails at t=20
        clock.advance(Millis(100));
        let late = messenger
            .send_message("b", &two_dest_condition(Millis(10)))
            .unwrap();
        clock.advance(Millis(20));
        messenger.pump().unwrap(); // late fails at t=140
        assert_eq!(qmgr.queue("DS.DONE.Q").unwrap().depth(), 2);

        let pruned = messenger.prune_decided_before(Time(100)).unwrap();
        assert_eq!(pruned, 1);
        assert_eq!(qmgr.queue("DS.DONE.Q").unwrap().depth(), 1);
        assert_eq!(messenger.status(early), MessageStatus::Unknown, "forgotten");
        assert!(matches!(messenger.status(late), MessageStatus::Decided(_)));
        assert_eq!(messenger.prune_decided_before(Time(100)).unwrap(), 0);
    }

    #[test]
    fn event_driven_ack_decides_without_pump_or_advance() {
        let (clock, qmgr, messenger) = setup();
        messenger.enable_event_driven().unwrap();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        clock.advance(Millis(10));
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 0, Time(10)))
            .unwrap();
        assert_eq!(messenger.status(id), MessageStatus::Pending);
        // The second ack satisfies the last undecided leaf: the outcome
        // notification appears with no intervening advance or pump.
        qmgr.put("DS.ACK.Q", fake_read_ack(id, 1, Time(10)))
            .unwrap();
        let n = messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
        assert_eq!(n.outcome, MessageOutcome::Success);
        assert_eq!(n.decided_at, Time(10));
        assert!(matches!(messenger.status(id), MessageStatus::Decided(_)));
        // The ack queue was drained eagerly and the message's timer torn
        // down with the decision.
        assert_eq!(qmgr.queue("DS.ACK.Q").unwrap().depth(), 0);
        assert_eq!(clock.pending_timers(), 0);
        // A later pump returns the buffered outcome exactly once.
        assert_eq!(messenger.pump().unwrap().len(), 1);
        assert!(messenger.pump().unwrap().is_empty());
    }

    #[test]
    fn event_driven_deadline_failure_fires_at_exact_tick() {
        let (clock, qmgr, messenger) = setup();
        messenger.enable_event_driven().unwrap();
        let id = messenger
            .send_message("hello", &two_dest_condition(Millis(100)))
            .unwrap();
        // One big advance, no pump: the armed timer fires at the first
        // violating tick (deadline 100, grace 0 → tick 101).
        clock.advance(Millis(500));
        let n = messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
        assert_eq!(n.outcome, MessageOutcome::Failure);
        assert_eq!(n.decided_at, Time(101));
        // Outcome actions ran: compensations released to destinations.
        for queue in ["Q.A", "Q.B"] {
            assert!(qmgr
                .queue(queue)
                .unwrap()
                .browse()
                .iter()
                .any(|m| wire::kind_of(m) == wire::MessageKind::Compensation));
        }
        assert_eq!(clock.pending_timers(), 0);
    }

    #[test]
    fn event_driven_arms_exactly_one_timer_per_pending_message() {
        let (clock, qmgr, messenger) = setup();
        messenger.enable_event_driven().unwrap();
        let a = messenger
            .send_message("a", &two_dest_condition(Millis(100)))
            .unwrap();
        let _b = messenger
            .send_message("b", &two_dest_condition(Millis(200)))
            .unwrap();
        assert_eq!(messenger.pending_count(), 2);
        assert_eq!(clock.pending_timers(), 2, "one armed timer per pending");
        // An ack on one leaf of `a` changes nothing about the count.
        qmgr.put("DS.ACK.Q", fake_read_ack(a, 0, Time(0))).unwrap();
        assert_eq!(clock.pending_timers(), 2);
        // Deciding `a` (second ack) cancels its timer.
        qmgr.put("DS.ACK.Q", fake_read_ack(a, 1, Time(0))).unwrap();
        assert_eq!(messenger.pending_count(), 1);
        assert_eq!(clock.pending_timers(), 1);
        clock.advance(Millis(300));
        assert_eq!(messenger.pending_count(), 0);
        assert_eq!(clock.pending_timers(), 0);
    }

    #[test]
    fn event_driven_evaluation_timeout_fires_from_timer() {
        let (clock, _qmgr, messenger) = setup();
        messenger.enable_event_driven().unwrap();
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.A").into(),
            Destination::queue("QM1", "Q.B").into(),
        ])
        .process_within(Millis(10_000))
        .into();
        let id = messenger
            .send_with(
                "x",
                None,
                &cond,
                SendOptions {
                    evaluation_timeout: Some(Millis(500)),
                    ..SendOptions::default()
                },
            )
            .unwrap();
        clock.advance(Millis(499));
        assert_eq!(messenger.status(id), MessageStatus::Pending);
        clock.advance(Millis(1));
        let n = messenger.take_outcome(id, Wait::NoWait).unwrap().unwrap();
        assert_eq!(n.outcome, MessageOutcome::Failure);
        assert!(n.reason.as_deref().unwrap().contains("timeout"));
        assert_eq!(n.decided_at, Time(500));
    }

    #[test]
    fn event_driven_config_flag_enables_at_construction() {
        let clock = SimClock::new();
        let qmgr = QueueManager::builder("QM1")
            .clock(clock.clone())
            .build()
            .unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::with_config(
            qmgr,
            CondConfig {
                event_driven: true,
                ..CondConfig::default()
            },
        )
        .unwrap();
        assert!(messenger.is_event_driven());
        messenger
            .send_message("x", &two_dest_condition(Millis(50)))
            .unwrap();
        assert_eq!(clock.pending_timers(), 1);
    }

    #[test]
    fn event_driven_system_clock_decides_with_no_daemon() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        messenger.enable_event_driven().unwrap();
        let id = messenger
            .send_message("x", &two_dest_condition(Millis(40)))
            .unwrap();
        // No daemon, no pump: the system clock's waiter thread fires the
        // armed deadline timer and finalizes the failure.
        let n = messenger
            .take_outcome(id, Wait::Timeout(Millis(3_000)))
            .unwrap()
            .expect("outcome from timer thread");
        assert_eq!(n.outcome, MessageOutcome::Failure);
    }

    #[test]
    fn daemon_pumps_with_system_clock() {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("Q.A").unwrap();
        qmgr.create_queue("Q.B").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        let mut daemon = messenger.spawn_daemon(Duration::from_millis(2)).unwrap();
        let id = messenger
            .send_message("x", &two_dest_condition(Millis(40)))
            .unwrap();
        // No acks: the daemon should decide failure shortly after 40 ms.
        let n = messenger
            .take_outcome(id, Wait::Timeout(Millis(3_000)))
            .unwrap()
            .expect("outcome within timeout");
        assert_eq!(n.outcome, MessageOutcome::Failure);
        daemon.stop();
    }
}
