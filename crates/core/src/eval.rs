//! Condition evaluation (paper §2.5).
//!
//! A [`Condition`] tree is *compiled* into a flat list of constraints over
//! its destination leaves:
//!
//! * a [`LeafConstraint`] for every destination with its own time window
//!   (a *required destination*), and
//! * a [`CountConstraint`] for every set-level window, requiring
//!   `min..` of the set's descendant leaves to satisfy the window
//!   (`min` defaults to *all* of them, per the paper: a set-level time
//!   condition "applies per default to all members of the set").
//!
//! Window inheritance is nearest-ancestor: a leaf's effective window inside
//! a set's count is its own window if present, else the most deeply nested
//! set window between it and the declaring set, else the declaring set's
//! window.
//!
//! Evaluation is tri-state ([`Verdict`]): as acknowledgments arrive the
//! verdict may flip to [`Verdict::Satisfied`] *early* (all constraints met)
//! or to [`Verdict::Violated`] *early* (a deadline passed unmet, a late
//! timestamp, or a count that can no longer be reached) — the evaluation
//! manager does not need to wait for the full window.

use std::fmt;

use mq::{Priority, QueueAddress};
use simtime::{Millis, Time};

use crate::condition::{Condition, Destination};
use crate::error::CondResult;

/// Which recipient action a time window constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Message read from the queue (`MsgPickUpTime`).
    Pickup,
    /// Successful (transactional) processing (`MsgProcessingTime`).
    Process,
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dimension::Pickup => write!(f, "pick-up"),
            Dimension::Process => write!(f, "processing"),
        }
    }
}

/// The evaluation result of a condition (or one constraint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Not yet decidable; more acknowledgments or time needed.
    Pending,
    /// The condition is satisfied (message success).
    Satisfied,
    /// The condition is violated (message failure); carries the first
    /// violation's reason.
    Violated(String),
}

impl Verdict {
    /// `true` for [`Verdict::Satisfied`].
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }

    /// `true` for [`Verdict::Violated`].
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }

    /// `true` once the verdict is no longer [`Verdict::Pending`].
    pub fn is_decided(&self) -> bool {
        !matches!(self, Verdict::Pending)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Pending => write!(f, "pending"),
            Verdict::Satisfied => write!(f, "satisfied"),
            Verdict::Violated(reason) => write!(f, "violated: {reason}"),
        }
    }
}

/// Everything the sender needs to generate and track the standard message
/// for one destination leaf.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafSpec {
    /// Leaf index in definition order; correlates messages and acks.
    pub index: u32,
    /// Destination queue.
    pub queue: QueueAddress,
    /// Named final recipient, if any (`None` = anonymous).
    pub recipient: Option<String>,
    /// The leaf's final effective pick-up window, if any applies.
    pub pickup_window: Option<Millis>,
    /// The leaf's final effective processing window, if any applies.
    pub process_window: Option<Millis>,
    /// Whether processing (not just receipt) is expected of this
    /// destination; stamped on the outgoing message (paper §2.3).
    pub processing_expected: bool,
    /// Effective message expiry.
    pub expiry: Option<Millis>,
    /// Effective message persistence (defaults to `true`: conditional
    /// messaging is built on *reliable* messaging).
    pub persistent: bool,
    /// Effective delivery priority.
    pub priority: Priority,
}

/// A required destination's own time window.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafConstraint {
    /// Which action is constrained.
    pub dim: Dimension,
    /// Constrained leaf index.
    pub leaf: u32,
    /// Window relative to the send timestamp.
    pub window: Millis,
}

/// A set-level window over a group of leaves with a minimum count.
#[derive(Debug, Clone, PartialEq)]
pub struct CountConstraint {
    /// Which action is constrained.
    pub dim: Dimension,
    /// At least this many members must satisfy their window.
    pub min: u32,
    /// Counting cap (`MaxNrPickUp`/`MaxNrProcessing`): acknowledgments
    /// beyond this many satisfiers are not waited for.
    pub max: Option<u32>,
    /// `(leaf index, effective window)` for each member leaf.
    pub members: Vec<(u32, Millis)>,
}

/// A compiled condition: leaf specs plus flat constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCondition {
    leaves: Vec<LeafSpec>,
    leaf_constraints: Vec<LeafConstraint>,
    count_constraints: Vec<CountConstraint>,
}

/// Result of compiling a subtree: per-leaf most-specific windows inside it.
struct SubtreeLeaves {
    /// (leaf index, specific pickup window, specific process window)
    entries: Vec<(u32, Option<Millis>, Option<Millis>)>,
}

impl CompiledCondition {
    /// Compiles (and validates) a condition.
    ///
    /// # Errors
    ///
    /// Propagates [`Condition::validate`] errors.
    pub fn compile(condition: &Condition) -> CondResult<CompiledCondition> {
        condition.validate()?;
        let mut compiled = CompiledCondition {
            leaves: Vec::new(),
            leaf_constraints: Vec::new(),
            count_constraints: Vec::new(),
        };
        let defaults = InheritedAttrs {
            expiry: None,
            persistent: None,
            priority: None,
        };
        let subtree = compiled.walk(condition, &defaults)?;
        // Finalize leaf effective windows (root has nothing further to add).
        for (idx, pickup, process) in subtree.entries {
            let leaf = &mut compiled.leaves[idx as usize];
            leaf.pickup_window = pickup;
            leaf.process_window = process;
            leaf.processing_expected = process.is_some();
        }
        Ok(compiled)
    }

    fn walk(
        &mut self,
        condition: &Condition,
        inherited: &InheritedAttrs,
    ) -> CondResult<SubtreeLeaves> {
        match condition {
            Condition::Destination(d) => Ok(self.walk_leaf(d, inherited)),
            Condition::Set(set) => {
                let attrs = InheritedAttrs {
                    expiry: set.expiry_ttl().or(inherited.expiry),
                    persistent: set.persistence().or(inherited.persistent),
                    priority: set.priority_override().or(inherited.priority),
                };
                let mut entries = Vec::new();
                for member in set.members() {
                    let sub = self.walk(member, &attrs)?;
                    entries.extend(sub.entries);
                }
                for (dim, window, min, max) in [
                    (
                        Dimension::Pickup,
                        set.pickup_window(),
                        set.min_pickup_count(),
                        set.max_pickup_count(),
                    ),
                    (
                        Dimension::Process,
                        set.process_window(),
                        set.min_process_count(),
                        set.max_process_count(),
                    ),
                ] {
                    let Some(window) = window else { continue };
                    let members: Vec<(u32, Millis)> = entries
                        .iter()
                        .map(|(idx, pickup, process)| {
                            let specific = match dim {
                                Dimension::Pickup => *pickup,
                                Dimension::Process => *process,
                            };
                            (*idx, specific.unwrap_or(window))
                        })
                        .collect();
                    let min = min.unwrap_or(members.len() as u32);
                    self.count_constraints.push(CountConstraint {
                        dim,
                        min,
                        max,
                        members,
                    });
                    // The set's window becomes the most-specific window for
                    // members that had none, for constraints further up.
                    for entry in &mut entries {
                        match dim {
                            Dimension::Pickup => {
                                entry.1 = entry.1.or(Some(window));
                            }
                            Dimension::Process => {
                                entry.2 = entry.2.or(Some(window));
                            }
                        }
                    }
                }
                Ok(SubtreeLeaves { entries })
            }
        }
    }

    fn walk_leaf(&mut self, d: &Destination, inherited: &InheritedAttrs) -> SubtreeLeaves {
        let index = self.leaves.len() as u32;
        self.leaves.push(LeafSpec {
            index,
            queue: d.address().clone(),
            recipient: d.recipient_id().map(str::to_owned),
            pickup_window: d.pickup_window(),
            process_window: d.process_window(),
            processing_expected: d.process_window().is_some(),
            expiry: d.expiry_ttl().or(inherited.expiry),
            persistent: d.persistence().or(inherited.persistent).unwrap_or(true),
            priority: d
                .priority_override()
                .or(inherited.priority)
                .unwrap_or_default(),
        });
        if let Some(w) = d.pickup_window() {
            self.leaf_constraints.push(LeafConstraint {
                dim: Dimension::Pickup,
                leaf: index,
                window: w,
            });
        }
        if let Some(w) = d.process_window() {
            self.leaf_constraints.push(LeafConstraint {
                dim: Dimension::Process,
                leaf: index,
                window: w,
            });
        }
        SubtreeLeaves {
            entries: vec![(index, d.pickup_window(), d.process_window())],
        }
    }

    /// The destination leaf specs, in leaf-index order.
    pub fn leaves(&self) -> &[LeafSpec] {
        &self.leaves
    }

    /// The compiled required-destination constraints.
    pub fn leaf_constraints(&self) -> &[LeafConstraint] {
        &self.leaf_constraints
    }

    /// The compiled set-level count constraints.
    pub fn count_constraints(&self) -> &[CountConstraint] {
        &self.count_constraints
    }

    /// Every distinct absolute deadline, given the send time — the moments
    /// at which a pending verdict can flip to violated. The evaluation
    /// manager schedules re-evaluation at each.
    pub fn deadlines(&self, send_time: Time) -> Vec<Time> {
        let mut out: Vec<Time> = self
            .leaf_constraints
            .iter()
            .map(|c| send_time + c.window)
            .chain(
                self.count_constraints
                    .iter()
                    .flat_map(|c| c.members.iter().map(move |(_, w)| send_time + *w)),
            )
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Evaluates the condition against the acknowledgments observed so far.
    ///
    /// `send_time` is the conditional message's send timestamp; `now` is
    /// the current (sender-clock) time, used to detect passed deadlines.
    pub fn evaluate(&self, acks: &AckState, send_time: Time, now: Time) -> Verdict {
        self.evaluate_with_grace(acks, send_time, now, Millis::ZERO)
    }

    /// Like [`CompiledCondition::evaluate`], but a *missing* acknowledgment
    /// only counts as a violation once `grace` has additionally elapsed
    /// past the deadline. Acknowledgment timestamps are still compared
    /// against the true deadline, so a late-arriving ack with a timely
    /// timestamp can still satisfy the condition — this models the paper's
    /// Example 2, where the pick-up requirement is 20 s but the evaluation
    /// timeout is 21 s, leaving 1 s for acks in transit.
    pub fn evaluate_with_grace(
        &self,
        acks: &AckState,
        send_time: Time,
        now: Time,
        grace: Millis,
    ) -> Verdict {
        let mut all_satisfied = true;
        for c in &self.leaf_constraints {
            match leaf_status(acks, c.leaf, c.dim, send_time + c.window, now, grace) {
                Status::Satisfied => {}
                Status::Pending => all_satisfied = false,
                Status::Violated(reason) => {
                    return Verdict::Violated(format!(
                        "destination {} ({}): {reason}",
                        c.leaf,
                        self.leaf_name(c.leaf),
                    ))
                }
            }
        }
        for c in &self.count_constraints {
            let mut satisfied = 0u32;
            let mut pending = 0u32;
            for (leaf, window) in &c.members {
                match leaf_status(acks, *leaf, c.dim, send_time + *window, now, grace) {
                    Status::Satisfied => satisfied += 1,
                    Status::Pending => pending += 1,
                    Status::Violated(_) => {}
                }
            }
            if satisfied >= c.min {
                continue;
            }
            all_satisfied = false;
            if satisfied + pending < c.min {
                return Verdict::Violated(format!(
                    "{} by {} of {} destinations required, only {} possible",
                    c.dim,
                    c.min,
                    c.members.len(),
                    satisfied + pending
                ));
            }
        }
        if all_satisfied {
            Verdict::Satisfied
        } else {
            Verdict::Pending
        }
    }

    fn leaf_name(&self, leaf: u32) -> String {
        self.leaves
            .get(leaf as usize)
            .map(|l| l.queue.to_string())
            .unwrap_or_else(|| "?".to_owned())
    }
}

/// Status of one `(constraint, member)` evaluation cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Pending,
    Satisfied,
    Violated,
}

/// One constraint membership of one leaf, with its absolute deadline.
#[derive(Debug, Clone)]
struct Cell {
    dim: Dimension,
    deadline: Time,
    state: CellState,
}

/// Counter block for one compiled [`CountConstraint`].
#[derive(Debug, Clone)]
struct CountState {
    min: u32,
    satisfied: u32,
    violated: u32,
    cells: Vec<Cell>,
}

/// Back-edge from a leaf to one of its cells.
#[derive(Debug, Clone, Copy)]
enum CellRef {
    Leaf(usize),
    Count { constraint: usize, member: usize },
}

/// Event-driven evaluation state for one pending message.
///
/// [`CompiledCondition::evaluate_with_grace`] re-walks every constraint
/// against the clock on each call — O(tree) per pump tick. `IncrementalEval`
/// lowers the same constraints once into per-`(constraint, member)` status
/// cells with per-constraint satisfied/violated counters and per-leaf
/// back-edges, so applying one acknowledgment touches only the cells of
/// that leaf (O(depth), i.e. the leaf's constraint memberships) and
/// decidability falls out of the counters immediately.
///
/// The struct tracks *decidability* only. Once [`IncrementalEval::decided`]
/// reports `true`, the caller renders the canonical verdict with a single
/// `evaluate_with_grace` call at that instant, so verdict strings (and the
/// paper's early-failure semantics) stay byte-identical to the full
/// re-evaluation oracle.
#[derive(Debug, Clone)]
pub struct IncrementalEval {
    grace: Millis,
    leaf_cells: Vec<Cell>,
    leaf_satisfied: u32,
    leaf_violated: u32,
    counts: Vec<CountState>,
    by_leaf: Vec<Vec<CellRef>>,
}

impl IncrementalEval {
    /// Lowers a compiled condition into incremental form. `grace` mirrors
    /// the messenger's ack grace: a *missing* acknowledgment only violates
    /// once `deadline + grace` has strictly passed, while acknowledgment
    /// stamps are compared against the true deadline — the same rules as
    /// [`leaf_status`].
    pub fn new(compiled: &CompiledCondition, send_time: Time, grace: Millis) -> IncrementalEval {
        let mut by_leaf: Vec<Vec<CellRef>> = vec![Vec::new(); compiled.leaves().len()];
        let mut leaf_cells = Vec::new();
        for c in compiled.leaf_constraints() {
            by_leaf[c.leaf as usize].push(CellRef::Leaf(leaf_cells.len()));
            leaf_cells.push(Cell {
                dim: c.dim,
                deadline: send_time + c.window,
                state: CellState::Pending,
            });
        }
        let mut counts = Vec::new();
        for c in compiled.count_constraints() {
            let constraint = counts.len();
            let mut cells = Vec::new();
            for (member, (leaf, window)) in c.members.iter().enumerate() {
                by_leaf[*leaf as usize].push(CellRef::Count { constraint, member });
                cells.push(Cell {
                    dim: c.dim,
                    deadline: send_time + *window,
                    state: CellState::Pending,
                });
            }
            counts.push(CountState {
                min: c.min,
                satisfied: 0,
                violated: 0,
                cells,
            });
        }
        IncrementalEval {
            grace,
            leaf_cells,
            leaf_satisfied: 0,
            leaf_violated: 0,
            counts,
            by_leaf,
        }
    }

    /// Folds the current acknowledgment stamps for `leaf` into that leaf's
    /// cells. Returns the number of cell transitions performed (the
    /// `cond.eval.incremental_updates` unit).
    ///
    /// Transitions are monotone except `Violated → Satisfied`: earlier-
    /// stamped redeliveries can improve a stamp (see
    /// [`AckState::record_read`]), and the oracle checks stamps before
    /// deadlines, so a timely stamp wins over an earlier time-based
    /// violation of the same cell.
    pub fn apply_ack(&mut self, leaf: u32, acks: &AckState) -> u64 {
        let Some(refs) = self.by_leaf.get(leaf as usize) else {
            return 0;
        };
        let Some(ack) = acks.leaf(leaf) else {
            return 0;
        };
        let (read_at, processed_at) = (ack.read_at, ack.processed_at);
        let mut updates = 0;
        for r in refs.clone() {
            let cell = self.cell(r);
            let stamp = match cell.dim {
                Dimension::Pickup => read_at,
                Dimension::Process => processed_at,
            };
            let target = match stamp {
                None => continue,
                Some(t) if t <= cell.deadline => CellState::Satisfied,
                Some(_) => CellState::Violated,
            };
            if self.set_cell(r, target) {
                updates += 1;
            }
        }
        updates
    }

    /// Flips cells whose deadline (plus grace) has strictly passed without
    /// an acknowledgment. Returns the number of transitions.
    pub fn on_time(&mut self, now: Time) -> u64 {
        let mut updates = 0;
        for i in 0..self.leaf_cells.len() {
            let c = &self.leaf_cells[i];
            if c.state == CellState::Pending && now > c.deadline + self.grace {
                self.set_cell(CellRef::Leaf(i), CellState::Violated);
                updates += 1;
            }
        }
        for constraint in 0..self.counts.len() {
            for member in 0..self.counts[constraint].cells.len() {
                let c = &self.counts[constraint].cells[member];
                if c.state == CellState::Pending && now > c.deadline + self.grace {
                    self.set_cell(CellRef::Count { constraint, member }, CellState::Violated);
                    updates += 1;
                }
            }
        }
        updates
    }

    /// Whether the verdict is decided, by the same rules as
    /// [`CompiledCondition::evaluate_with_grace`]: any violated required
    /// destination, any count constraint that can no longer reach its
    /// minimum, or everything satisfied.
    pub fn decided(&self) -> bool {
        if self.leaf_violated > 0 {
            return true;
        }
        for cs in &self.counts {
            let pending = cs.cells.len() as u32 - cs.satisfied - cs.violated;
            if cs.satisfied + pending < cs.min {
                return true;
            }
        }
        self.leaf_satisfied as usize == self.leaf_cells.len()
            && self.counts.iter().all(|cs| cs.satisfied >= cs.min)
    }

    /// The next instant at which the passage of time alone can change
    /// decidability: one millisecond past the earliest `deadline + grace`
    /// among cells that are still pending and still matter (members of
    /// count constraints that already met their minimum are skipped).
    /// `None` when no timer needs to be armed.
    pub fn next_deadline(&self) -> Option<Time> {
        let mut earliest: Option<Time> = None;
        let grace = self.grace;
        let mut consider = |deadline: Time| {
            let trigger = deadline + grace + Millis(1);
            earliest = Some(match earliest {
                Some(t) if t <= trigger => t,
                _ => trigger,
            });
        };
        for c in &self.leaf_cells {
            if c.state == CellState::Pending {
                consider(c.deadline);
            }
        }
        for cs in &self.counts {
            if cs.satisfied >= cs.min {
                continue;
            }
            for c in &cs.cells {
                if c.state == CellState::Pending {
                    consider(c.deadline);
                }
            }
        }
        earliest
    }

    fn cell(&self, r: CellRef) -> &Cell {
        match r {
            CellRef::Leaf(i) => &self.leaf_cells[i],
            CellRef::Count { constraint, member } => &self.counts[constraint].cells[member],
        }
    }

    /// Transitions a cell, maintaining the counters. `Satisfied` is final
    /// (stamps only ever get earlier); `Violated → Satisfied` is allowed.
    fn set_cell(&mut self, r: CellRef, target: CellState) -> bool {
        match r {
            CellRef::Leaf(i) => {
                let cur = self.leaf_cells[i].state;
                if cur == target || cur == CellState::Satisfied {
                    return false;
                }
                if cur == CellState::Violated {
                    self.leaf_violated -= 1;
                }
                match target {
                    CellState::Satisfied => self.leaf_satisfied += 1,
                    CellState::Violated => self.leaf_violated += 1,
                    CellState::Pending => unreachable!("cells never return to pending"),
                }
                self.leaf_cells[i].state = target;
                true
            }
            CellRef::Count { constraint, member } => {
                let cs = &mut self.counts[constraint];
                let cur = cs.cells[member].state;
                if cur == target || cur == CellState::Satisfied {
                    return false;
                }
                if cur == CellState::Violated {
                    cs.violated -= 1;
                }
                match target {
                    CellState::Satisfied => cs.satisfied += 1,
                    CellState::Violated => cs.violated += 1,
                    CellState::Pending => unreachable!("cells never return to pending"),
                }
                cs.cells[member].state = target;
                true
            }
        }
    }
}

#[derive(Debug, Clone)]
struct InheritedAttrs {
    expiry: Option<Millis>,
    persistent: Option<bool>,
    priority: Option<Priority>,
}

enum Status {
    Satisfied,
    Pending,
    Violated(String),
}

fn leaf_status(
    acks: &AckState,
    leaf: u32,
    dim: Dimension,
    deadline: Time,
    now: Time,
    grace: Millis,
) -> Status {
    let ack = acks.leaf(leaf);
    let stamp = match dim {
        Dimension::Pickup => ack.and_then(|a| a.read_at),
        Dimension::Process => ack.and_then(|a| a.processed_at),
    };
    match stamp {
        Some(t) if t <= deadline => Status::Satisfied,
        Some(t) => Status::Violated(format!("{dim} at {t} after deadline {deadline}")),
        None if now > deadline + grace => {
            Status::Violated(format!("no {dim} by deadline {deadline}"))
        }
        None => Status::Pending,
    }
}

/// Per-leaf acknowledgment observations for one conditional message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AckState {
    leaves: Vec<LeafAck>,
}

/// Acknowledgment data observed for a single destination leaf.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LeafAck {
    /// Timestamp of the message read, if acknowledged.
    pub read_at: Option<Time>,
    /// Timestamp of successful processing (transaction commit), if
    /// acknowledged.
    pub processed_at: Option<Time>,
    /// Identity of the acknowledging recipient, when reported.
    pub recipient: Option<String>,
}

impl AckState {
    /// Creates an empty state for `n` leaves.
    pub fn new(n: usize) -> AckState {
        AckState {
            leaves: vec![LeafAck::default(); n],
        }
    }

    /// The observation for a leaf, if the index is valid.
    pub fn leaf(&self, index: u32) -> Option<&LeafAck> {
        self.leaves.get(index as usize)
    }

    /// Records a read acknowledgment. Earlier timestamps win (idempotent
    /// under redelivered acks).
    pub fn record_read(&mut self, leaf: u32, at: Time, recipient: Option<String>) {
        if let Some(entry) = self.leaves.get_mut(leaf as usize) {
            match entry.read_at {
                Some(existing) if existing <= at => {}
                _ => entry.read_at = Some(at),
            }
            if entry.recipient.is_none() {
                entry.recipient = recipient;
            }
        }
    }

    /// Records a processing acknowledgment (which implies a read at
    /// `read_at`).
    pub fn record_processed(
        &mut self,
        leaf: u32,
        read_at: Time,
        processed_at: Time,
        recipient: Option<String>,
    ) {
        self.record_read(leaf, read_at, recipient);
        if let Some(entry) = self.leaves.get_mut(leaf as usize) {
            match entry.processed_at {
                Some(existing) if existing <= processed_at => {}
                _ => entry.processed_at = Some(processed_at),
            }
        }
    }

    /// Number of leaves with a recorded read.
    pub fn reads(&self) -> usize {
        self.leaves.iter().filter(|l| l.read_at.is_some()).count()
    }

    /// Number of leaves with a recorded processing.
    pub fn processings(&self) -> usize {
        self.leaves
            .iter()
            .filter(|l| l.processed_at.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Destination, DestinationSet};

    const DAY: u64 = 1000;

    fn example1() -> Condition {
        let qr3 = Destination::queue("QM1", "Q.R3")
            .recipient("receiver3")
            .process_within(Millis(7 * DAY));
        let others = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.R1").into(),
            Destination::queue("QM1", "Q.R2").into(),
            Destination::queue("QM1", "Q.R4").into(),
        ])
        .process_within(Millis(11 * DAY))
        .min_process(2);
        DestinationSet::of(vec![qr3.into(), others.into()])
            .pickup_within(Millis(2 * DAY))
            .into()
    }

    fn example2() -> Condition {
        Destination::queue("QM1", "Q.CENTRAL")
            .pickup_within(Millis(20_000))
            .into()
    }

    #[test]
    fn compile_example1_constraints() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        assert_eq!(c.leaves().len(), 4);
        // qr3's own processing window is the only leaf constraint.
        assert_eq!(c.leaf_constraints().len(), 1);
        let lc = &c.leaf_constraints()[0];
        assert_eq!(
            (lc.dim, lc.leaf, lc.window),
            (Dimension::Process, 0, Millis(7 * DAY))
        );
        // Two count constraints: destSet1 processing (min 2/3) and root
        // pickup (all 4).
        assert_eq!(c.count_constraints().len(), 2);
        let process = c
            .count_constraints()
            .iter()
            .find(|cc| cc.dim == Dimension::Process)
            .unwrap();
        assert_eq!(process.min, 2);
        assert_eq!(process.members.len(), 3);
        assert!(process.members.iter().all(|(_, w)| *w == Millis(11 * DAY)));
        let pickup = c
            .count_constraints()
            .iter()
            .find(|cc| cc.dim == Dimension::Pickup)
            .unwrap();
        assert_eq!(pickup.min, 4, "no MinNrPickUp: all members required");
        assert_eq!(pickup.members.len(), 4);
        assert!(pickup.members.iter().all(|(_, w)| *w == Millis(2 * DAY)));
    }

    #[test]
    fn compile_example2_constraints() {
        let c = CompiledCondition::compile(&example2()).unwrap();
        assert_eq!(c.leaves().len(), 1);
        assert_eq!(c.leaf_constraints().len(), 1);
        assert!(c.count_constraints().is_empty());
        assert_eq!(c.leaves()[0].pickup_window, Some(Millis(20_000)));
        assert!(!c.leaves()[0].processing_expected);
        assert!(c.leaves()[0].persistent, "reliable by default");
    }

    #[test]
    fn leaf_specs_resolve_inherited_attributes() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("M", "A").into(),
            Destination::queue("M", "B")
                .persistent(false)
                .priority(Priority::new(9))
                .expiry(Millis(5))
                .into(),
        ])
        .persistent(true)
        .priority(Priority::new(2))
        .expiry(Millis(100))
        .into();
        let c = CompiledCondition::compile(&cond).unwrap();
        let a = &c.leaves()[0];
        assert!(a.persistent);
        assert_eq!(a.priority, Priority::new(2));
        assert_eq!(a.expiry, Some(Millis(100)));
        let b = &c.leaves()[1];
        assert!(!b.persistent);
        assert_eq!(b.priority, Priority::new(9));
        assert_eq!(b.expiry, Some(Millis(5)));
    }

    #[test]
    fn processing_expected_propagates_from_sets() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        assert!(c.leaves()[0].processing_expected, "own window");
        assert!(c.leaves()[1].processing_expected, "set window");
        // Root pickup applies to all; effective windows recorded.
        assert_eq!(c.leaves()[1].pickup_window, Some(Millis(2 * DAY)));
        assert_eq!(c.leaves()[0].process_window, Some(Millis(7 * DAY)));
        assert_eq!(c.leaves()[1].process_window, Some(Millis(11 * DAY)));
    }

    #[test]
    fn nested_window_shadows_outer_for_inner_members() {
        // Outer set window 100; inner set declares tighter window 50 for
        // its members.
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("M", "A").into(),
            DestinationSet::of(vec![Destination::queue("M", "B").into()])
                .pickup_within(Millis(50))
                .into(),
        ])
        .pickup_within(Millis(100))
        .into();
        let c = CompiledCondition::compile(&cond).unwrap();
        let outer = c
            .count_constraints()
            .iter()
            .find(|cc| cc.members.len() == 2)
            .unwrap();
        let window_of = |leaf: u32| outer.members.iter().find(|(l, _)| *l == leaf).unwrap().1;
        assert_eq!(window_of(0), Millis(100), "A uses the outer window");
        assert_eq!(window_of(1), Millis(50), "B keeps the tighter inner window");
    }

    #[test]
    fn example1_success_scenario() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let send = Time(0);
        let mut acks = AckState::new(4);
        // All four read within 2 "days".
        for leaf in 0..4 {
            acks.record_read(leaf, Time(DAY), None);
        }
        assert_eq!(
            c.evaluate(&acks, send, Time(DAY)),
            Verdict::Pending,
            "processing still missing"
        );
        // qr3 processes within 7 days; two of the others within 11 days.
        acks.record_processed(0, Time(DAY), Time(6 * DAY), Some("receiver3".into()));
        acks.record_processed(1, Time(DAY), Time(10 * DAY), None);
        assert_eq!(
            c.evaluate(&acks, send, Time(10 * DAY)),
            Verdict::Pending,
            "one more processing needed"
        );
        acks.record_processed(3, Time(DAY), Time(10 * DAY), None);
        assert_eq!(c.evaluate(&acks, send, Time(10 * DAY)), Verdict::Satisfied);
    }

    #[test]
    fn example1_late_read_fails_immediately() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let mut acks = AckState::new(4);
        for leaf in 0..3 {
            acks.record_read(leaf, Time(DAY), None);
        }
        // Fourth read arrives after the 2-day pick-up window.
        acks.record_read(3, Time(3 * DAY), None);
        let verdict = c.evaluate(&acks, Time(0), Time(3 * DAY));
        assert!(verdict.is_violated(), "late read: {verdict}");
    }

    #[test]
    fn example1_missing_read_fails_once_deadline_passes() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let mut acks = AckState::new(4);
        for leaf in 0..3 {
            acks.record_read(leaf, Time(DAY), None);
        }
        assert_eq!(c.evaluate(&acks, Time(0), Time(2 * DAY)), Verdict::Pending);
        let verdict = c.evaluate(&acks, Time(0), Time(2 * DAY + 1));
        assert!(verdict.is_violated(), "{verdict}");
    }

    #[test]
    fn example1_required_processing_violation() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let mut acks = AckState::new(4);
        for leaf in 0..4 {
            acks.record_read(leaf, Time(DAY), None);
        }
        // Everyone processes quickly except receiver3, who is too late.
        acks.record_processed(1, Time(DAY), Time(2 * DAY), None);
        acks.record_processed(2, Time(DAY), Time(2 * DAY), None);
        acks.record_processed(0, Time(DAY), Time(8 * DAY), None);
        let verdict = c.evaluate(&acks, Time(0), Time(8 * DAY));
        assert!(verdict.is_violated());
        if let Verdict::Violated(reason) = &verdict {
            assert!(reason.contains("Q.R3"), "reason names the queue: {reason}");
        }
    }

    #[test]
    fn count_constraint_early_failure_when_unreachable() {
        // min 2 of 3, but two members already processed too late →
        // satisfied=1 max possible.
        let c = CompiledCondition::compile(&example1()).unwrap();
        let mut acks = AckState::new(4);
        for leaf in 0..4 {
            acks.record_read(leaf, Time(DAY), None);
        }
        acks.record_processed(0, Time(DAY), Time(DAY), None); // qr3 fine
        acks.record_processed(1, Time(DAY), Time(12 * DAY), None); // late
        acks.record_processed(2, Time(DAY), Time(12 * DAY), None); // late
                                                                   // With two members late, min 2-of-3 is unreachable — the verdict is
                                                                   // decided without waiting for any evaluation timeout.
        let verdict = c.evaluate(&acks, Time(0), Time(12 * DAY));
        assert!(verdict.is_violated(), "{verdict}");
        if let Verdict::Violated(reason) = &verdict {
            assert!(reason.contains("of 3 destinations"), "{reason}");
        }
    }

    #[test]
    fn example2_scenarios() {
        let c = CompiledCondition::compile(&example2()).unwrap();
        let send = Time(1_000);
        let acks = AckState::new(1);
        assert_eq!(c.evaluate(&acks, send, Time(5_000)), Verdict::Pending);
        // Early success on a timely read.
        let mut ok = acks.clone();
        ok.record_read(0, Time(15_000), Some("controller-7".into()));
        assert_eq!(c.evaluate(&ok, send, Time(15_000)), Verdict::Satisfied);
        // Deadline passes unread → violated.
        let verdict = c.evaluate(&acks, send, Time(21_001));
        assert!(verdict.is_violated());
    }

    #[test]
    fn ack_state_is_idempotent_and_keeps_earliest() {
        let mut acks = AckState::new(2);
        acks.record_read(0, Time(50), Some("a".into()));
        acks.record_read(0, Time(30), Some("b".into()));
        acks.record_read(0, Time(70), None);
        let leaf = acks.leaf(0).unwrap();
        assert_eq!(leaf.read_at, Some(Time(30)));
        assert_eq!(leaf.recipient.as_deref(), Some("a"));
        acks.record_processed(1, Time(10), Time(20), None);
        acks.record_processed(1, Time(10), Time(90), None);
        assert_eq!(acks.leaf(1).unwrap().processed_at, Some(Time(20)));
        assert_eq!(acks.reads(), 2);
        assert_eq!(acks.processings(), 1);
        // Out-of-range indices are ignored.
        acks.record_read(9, Time(1), None);
        assert!(acks.leaf(9).is_none());
    }

    #[test]
    fn deadlines_are_sorted_and_deduped() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let d = c.deadlines(Time(100));
        assert_eq!(
            d,
            vec![
                Time(100 + 2 * DAY),
                Time(100 + 7 * DAY),
                Time(100 + 11 * DAY)
            ]
        );
    }

    #[test]
    fn condition_without_time_constraints_is_vacuously_satisfied() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("M", "A").into(),
            Destination::queue("M", "B").into(),
        ])
        .into();
        let c = CompiledCondition::compile(&cond).unwrap();
        assert_eq!(
            c.evaluate(&AckState::new(2), Time(0), Time(0)),
            Verdict::Satisfied
        );
        assert!(c.deadlines(Time(0)).is_empty());
    }

    #[test]
    fn processing_ack_implies_read() {
        let cond: Condition = Destination::queue("M", "A")
            .pickup_within(Millis(100))
            .process_within(Millis(200))
            .into();
        let c = CompiledCondition::compile(&cond).unwrap();
        let mut acks = AckState::new(1);
        acks.record_processed(0, Time(50), Time(150), None);
        assert_eq!(c.evaluate(&acks, Time(0), Time(150)), Verdict::Satisfied);
    }

    #[test]
    fn verdict_display_and_predicates() {
        assert_eq!(Verdict::Pending.to_string(), "pending");
        assert_eq!(Verdict::Satisfied.to_string(), "satisfied");
        let v = Verdict::Violated("late".into());
        assert_eq!(v.to_string(), "violated: late");
        assert!(v.is_decided() && v.is_violated() && !v.is_satisfied());
        assert!(Verdict::Satisfied.is_decided());
        assert!(!Verdict::Pending.is_decided());
    }

    #[test]
    fn incremental_example1_tracks_oracle() {
        let c = CompiledCondition::compile(&example1()).unwrap();
        let send = Time(0);
        let mut acks = AckState::new(4);
        let mut inc = IncrementalEval::new(&c, send, Millis::ZERO);
        assert!(!inc.decided());
        // The earliest pending deadline is the 2-day pickup; strict
        // comparison means the trigger is one tick past it.
        assert_eq!(inc.next_deadline(), Some(Time(2 * DAY + 1)));
        for leaf in 0..4 {
            acks.record_read(leaf, Time(DAY), None);
            inc.apply_ack(leaf, &acks);
        }
        assert!(!inc.decided(), "processing still missing");
        // Pickup counts are met, so only processing deadlines remain armed.
        assert_eq!(inc.next_deadline(), Some(Time(7 * DAY + 1)));
        acks.record_processed(0, Time(DAY), Time(6 * DAY), None);
        inc.apply_ack(0, &acks);
        acks.record_processed(1, Time(DAY), Time(10 * DAY), None);
        inc.apply_ack(1, &acks);
        assert!(!inc.decided(), "one more processing needed");
        acks.record_processed(3, Time(DAY), Time(10 * DAY), None);
        inc.apply_ack(3, &acks);
        assert!(inc.decided());
        assert_eq!(
            c.evaluate(&acks, send, Time(10 * DAY)),
            Verdict::Satisfied,
            "canonical verdict at the decision instant"
        );
        assert_eq!(inc.next_deadline(), None, "nothing left to arm");
    }

    #[test]
    fn incremental_time_violation_decides_at_trigger() {
        let c = CompiledCondition::compile(&example2()).unwrap();
        let mut inc = IncrementalEval::new(&c, Time(1_000), Millis::ZERO);
        let trigger = inc.next_deadline().unwrap();
        assert_eq!(trigger, Time(21_001), "one past send + 20s window");
        assert_eq!(inc.on_time(Time(21_000)), 0, "deadline tick itself: strict");
        assert!(!inc.decided());
        assert_eq!(inc.on_time(trigger), 1);
        assert!(inc.decided());
        assert!(c
            .evaluate(&AckState::new(1), Time(1_000), trigger)
            .is_violated());
    }

    #[test]
    fn incremental_timely_stamp_overrides_time_violation() {
        // The oracle checks stamps before deadlines, so an ack arriving
        // after deadline+grace with a timely stamp still satisfies.
        let c = CompiledCondition::compile(&example2()).unwrap();
        let mut acks = AckState::new(1);
        let mut inc = IncrementalEval::new(&c, Time(0), Millis::ZERO);
        inc.on_time(Time(25_000));
        assert!(inc.decided(), "time-violated");
        acks.record_read(0, Time(10_000), None);
        assert_eq!(inc.apply_ack(0, &acks), 1, "violated cell flips");
        assert!(inc.decided());
        assert_eq!(c.evaluate(&acks, Time(0), Time(25_000)), Verdict::Satisfied);
    }

    #[test]
    fn incremental_vacuous_condition_is_decided_immediately() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("M", "A").into(),
            Destination::queue("M", "B").into(),
        ])
        .into();
        let c = CompiledCondition::compile(&cond).unwrap();
        let inc = IncrementalEval::new(&c, Time(0), Millis::ZERO);
        assert!(inc.decided());
        assert_eq!(inc.next_deadline(), None);
    }

    #[cfg(test)]
    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_flat_condition() -> impl Strategy<Value = (Condition, u32, u64)> {
            // n leaves, min in 1..=n, window w.
            (1u32..8, 1u64..1000).prop_flat_map(|(n, w)| {
                (1u32..=n).prop_map(move |min| {
                    let members: Vec<Condition> = (0..n)
                        .map(|i| Destination::queue("M", format!("Q{i}")).into())
                        .collect();
                    let cond: Condition = DestinationSet::of(members)
                        .pickup_within(Millis(w))
                        .min_pickup(min)
                        .into();
                    (cond, min, w)
                })
            })
        }

        proptest! {
            /// Invariant: with k timely reads, verdict is Satisfied iff
            /// k >= min once the deadline passed; Violated iff k < min.
            #[test]
            fn flat_min_pickup_verdicts((cond, min, w) in arb_flat_condition(), timely in 0u32..8) {
                let c = CompiledCondition::compile(&cond).unwrap();
                let n = c.leaves().len() as u32;
                let timely = timely.min(n);
                let mut acks = AckState::new(n as usize);
                for leaf in 0..timely {
                    acks.record_read(leaf, Time(w / 2), None);
                }
                // Before the deadline with k < min: still pending.
                let before = c.evaluate(&acks, Time(0), Time(w / 2));
                if timely >= min {
                    prop_assert_eq!(before, Verdict::Satisfied);
                } else {
                    prop_assert_eq!(before, Verdict::Pending);
                }
                // After the deadline the verdict is decided either way.
                let after = c.evaluate(&acks, Time(0), Time(w + 1));
                if timely >= min {
                    prop_assert_eq!(after, Verdict::Satisfied);
                } else {
                    prop_assert!(after.is_violated());
                }
            }

            /// Verdicts are monotone in acks: adding a timely ack never
            /// turns Satisfied into Violated.
            #[test]
            fn timely_acks_never_hurt((cond, _min, w) in arb_flat_condition(), k in 0u32..8) {
                let c = CompiledCondition::compile(&cond).unwrap();
                let n = c.leaves().len() as u32;
                let k = k.min(n);
                let mut acks = AckState::new(n as usize);
                for leaf in 0..k {
                    acks.record_read(leaf, Time(1), None);
                }
                let before = c.evaluate(&acks, Time(0), Time(w));
                if k < n {
                    acks.record_read(k, Time(1), None);
                }
                let after = c.evaluate(&acks, Time(0), Time(w));
                if before.is_satisfied() {
                    prop_assert!(after.is_satisfied());
                }
                if !before.is_violated() {
                    prop_assert!(!after.is_violated());
                }
            }

            /// The incremental evaluator agrees with the full re-evaluation
            /// oracle on decidability at every step of a random ack/advance
            /// schedule, and its `next_deadline` is exactly the first tick
            /// at which the oracle's pending verdict would flip by time.
            #[test]
            fn incremental_matches_oracle_stepwise(
                (cond, _min, w) in arb_flat_condition(),
                events in proptest::collection::vec((0u32..8, 0u64..2000, any::<bool>()), 0..20),
                grace in 0u64..5,
            ) {
                let grace = Millis(grace);
                let c = CompiledCondition::compile(&cond).unwrap();
                let n = c.leaves().len() as u32;
                let mut acks = AckState::new(n as usize);
                let mut inc = IncrementalEval::new(&c, Time(0), grace);
                let mut now = Time(0);
                for (leaf, stamp_or_step, is_ack) in events {
                    if is_ack {
                        let leaf = leaf % n;
                        acks.record_read(leaf, Time(stamp_or_step), None);
                        inc.apply_ack(leaf, &acks);
                    } else {
                        now = now + Millis(stamp_or_step % (w * 2).max(1));
                        inc.on_time(now);
                    }
                    let oracle = c.evaluate_with_grace(&acks, Time(0), now, grace);
                    prop_assert_eq!(
                        inc.decided(),
                        oracle.is_decided(),
                        "decidability diverged at {} (oracle {})", now, oracle
                    );
                    if let (false, Some(trigger)) = (inc.decided(), inc.next_deadline()) {
                        // One tick before the trigger the oracle is still
                        // pending; at the trigger it may decide (it always
                        // does when the flipped cells were load-bearing).
                        let before = c.evaluate_with_grace(&acks, Time(0), Time(trigger.0 - 1), grace);
                        prop_assert!(
                            !before.is_decided() || before == oracle,
                            "oracle decided before the armed trigger {}", trigger
                        );
                    }
                }
            }
        }
    }
}
