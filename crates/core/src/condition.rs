//! The condition object model (paper §2.2, Fig. 3).
//!
//! Conditions follow the *Composite* pattern: a [`Destination`] leaf holds
//! per-queue requirements, a [`DestinationSet`] groups conditions and adds
//! set-level requirements. Time attributes are in milliseconds **relative
//! to the send timestamp** on the sender's clock:
//!
//! * `pickup_within` — the paper's `MsgPickUpTime`: a read of the message is
//!   required within this window.
//! * `process_within` — the paper's `MsgProcessingTime`: a successful
//!   (transactional) processing is required within this window.
//!
//! A destination with its own time condition is a **required destination**;
//! one that only inherits a set-level time condition guarded by
//! `min_pickup`/`min_process` is **optional** (the set is satisfied by any
//! `min..=max` of its members). A set-level time condition without a
//! min/max applies to *all* members.
//!
//! Conditions are plain values, independent of any message (paper §2.3:
//! "the separation of condition definition … allows conditions to be reused
//! for different messages").
//!
//! # Examples
//!
//! The paper's Example 1 (Fig. 4), scaled to milliseconds:
//!
//! ```
//! use condmsg::condition::{Condition, Destination, DestinationSet};
//! use simtime::Millis;
//!
//! const DAY: u64 = 24 * 3600 * 1000;
//! let qr3 = Destination::queue("QM1", "Q.R3")
//!     .recipient("receiver3")
//!     .process_within(Millis(7 * DAY));
//! let others = DestinationSet::of(vec![
//!     Destination::queue("QM1", "Q.R1").into(),
//!     Destination::queue("QM1", "Q.R2").into(),
//!     Destination::queue("QM1", "Q.R4").into(),
//! ])
//! .process_within(Millis(11 * DAY))
//! .min_process(2);
//! let root = DestinationSet::of(vec![qr3.into(), others.into()])
//!     .pickup_within(Millis(2 * DAY));
//! let condition = Condition::from(root);
//! condition.validate()?;
//! assert_eq!(condition.leaf_count(), 4);
//! # Ok::<(), condmsg::CondError>(())
//! ```

use std::fmt;

use mq::codec::{CodecError, Decoder, Encoder, WireDecode, WireEncode};
use mq::{Priority, QueueAddress};
use simtime::Millis;

use crate::error::{CondError, CondResult};

/// Condition attributes for a single destination queue (Composite leaf).
#[derive(Debug, Clone, PartialEq)]
pub struct Destination {
    queue: QueueAddress,
    recipient: Option<String>,
    pickup_within: Option<Millis>,
    process_within: Option<Millis>,
    expiry: Option<Millis>,
    persistent: Option<bool>,
    priority: Option<Priority>,
}

impl Destination {
    /// Creates a destination for `manager/queue` with no conditions.
    pub fn queue(manager: impl Into<String>, queue: impl Into<String>) -> Destination {
        Destination::addressed(QueueAddress::new(manager, queue))
    }

    /// Creates a destination from a full [`QueueAddress`].
    pub fn addressed(queue: QueueAddress) -> Destination {
        Destination {
            queue,
            recipient: None,
            pickup_within: None,
            process_within: None,
            expiry: None,
            persistent: None,
            priority: None,
        }
    }

    /// Names the expected final recipient (e.g. a userid). Destinations
    /// without a recipient are *anonymous*: whoever reads from the queue
    /// acknowledges (paper Example 2).
    pub fn recipient(mut self, id: impl Into<String>) -> Destination {
        self.recipient = Some(id.into());
        self
    }

    /// Requires a message read within `window` of the send timestamp
    /// (`MsgPickUpTime`). Makes this a *required* destination.
    pub fn pickup_within(mut self, window: Millis) -> Destination {
        self.pickup_within = Some(window);
        self
    }

    /// Requires successful processing within `window` of the send timestamp
    /// (`MsgProcessingTime`). Makes this a *required* destination.
    pub fn process_within(mut self, window: Millis) -> Destination {
        self.process_within = Some(window);
        self
    }

    /// Sets the generated message's expiry (`MsgExpiry`) for this
    /// destination.
    pub fn expiry(mut self, ttl: Millis) -> Destination {
        self.expiry = Some(ttl);
        self
    }

    /// Overrides message persistence (`MsgPersistence`) for this
    /// destination.
    pub fn persistent(mut self, yes: bool) -> Destination {
        self.persistent = Some(yes);
        self
    }

    /// Overrides delivery priority (`MsgPriority`) for this destination.
    pub fn priority(mut self, p: Priority) -> Destination {
        self.priority = Some(p);
        self
    }

    /// The destination queue address.
    pub fn address(&self) -> &QueueAddress {
        &self.queue
    }

    /// The named final recipient, if any.
    pub fn recipient_id(&self) -> Option<&str> {
        self.recipient.as_deref()
    }

    /// The destination's own pick-up window, if any.
    pub fn pickup_window(&self) -> Option<Millis> {
        self.pickup_within
    }

    /// The destination's own processing window, if any.
    pub fn process_window(&self) -> Option<Millis> {
        self.process_within
    }

    /// The destination's own expiry, if any.
    pub fn expiry_ttl(&self) -> Option<Millis> {
        self.expiry
    }

    /// The destination's own persistence override, if any.
    pub fn persistence(&self) -> Option<bool> {
        self.persistent
    }

    /// The destination's own priority override, if any.
    pub fn priority_override(&self) -> Option<Priority> {
        self.priority
    }

    /// Whether this destination carries its own time condition and is thus
    /// *required* (paper §2.2).
    pub fn is_required(&self) -> bool {
        self.pickup_within.is_some() || self.process_within.is_some()
    }
}

/// Set-level condition attributes over a group of conditions (Composite
/// composite).
#[derive(Debug, Clone, PartialEq)]
pub struct DestinationSet {
    members: Vec<Condition>,
    pickup_within: Option<Millis>,
    process_within: Option<Millis>,
    min_pickup: Option<u32>,
    max_pickup: Option<u32>,
    min_process: Option<u32>,
    max_process: Option<u32>,
    expiry: Option<Millis>,
    persistent: Option<bool>,
    priority: Option<Priority>,
}

impl DestinationSet {
    /// Creates a set over the given members.
    pub fn of(members: Vec<Condition>) -> DestinationSet {
        DestinationSet {
            members,
            pickup_within: None,
            process_within: None,
            min_pickup: None,
            max_pickup: None,
            min_process: None,
            max_process: None,
            expiry: None,
            persistent: None,
            priority: None,
        }
    }

    /// Creates an empty set (members added with [`DestinationSet::member`]).
    pub fn empty() -> DestinationSet {
        DestinationSet::of(Vec::new())
    }

    /// Adds a member condition.
    pub fn member(mut self, member: impl Into<Condition>) -> DestinationSet {
        self.members.push(member.into());
        self
    }

    /// Set-level pick-up window, applying to all member destinations that
    /// lack their own (all of them required unless `min_pickup` is given).
    pub fn pickup_within(mut self, window: Millis) -> DestinationSet {
        self.pickup_within = Some(window);
        self
    }

    /// Set-level processing window (see [`DestinationSet::pickup_within`]).
    pub fn process_within(mut self, window: Millis) -> DestinationSet {
        self.process_within = Some(window);
        self
    }

    /// At least `n` member destinations must be picked up within the
    /// set-level window (`MinNrPickUp`); members become optional.
    pub fn min_pickup(mut self, n: u32) -> DestinationSet {
        self.min_pickup = Some(n);
        self
    }

    /// Stop counting pick-ups beyond `n` (`MaxNrPickUp`): once `n` members
    /// have satisfied the window the set condition is settled.
    pub fn max_pickup(mut self, n: u32) -> DestinationSet {
        self.max_pickup = Some(n);
        self
    }

    /// At least `n` member destinations must process within the set-level
    /// window (`MinNrProcessing`).
    pub fn min_process(mut self, n: u32) -> DestinationSet {
        self.min_process = Some(n);
        self
    }

    /// Stop counting processings beyond `n` (`MaxNrProcessing`).
    pub fn max_process(mut self, n: u32) -> DestinationSet {
        self.max_process = Some(n);
        self
    }

    /// Default message expiry for members without their own.
    pub fn expiry(mut self, ttl: Millis) -> DestinationSet {
        self.expiry = Some(ttl);
        self
    }

    /// Default persistence for members without their own.
    pub fn persistent(mut self, yes: bool) -> DestinationSet {
        self.persistent = Some(yes);
        self
    }

    /// Default priority for members without their own.
    pub fn priority(mut self, p: Priority) -> DestinationSet {
        self.priority = Some(p);
        self
    }

    /// The member conditions.
    pub fn members(&self) -> &[Condition] {
        &self.members
    }

    /// Set-level pick-up window, if any.
    pub fn pickup_window(&self) -> Option<Millis> {
        self.pickup_within
    }

    /// Set-level processing window, if any.
    pub fn process_window(&self) -> Option<Millis> {
        self.process_within
    }

    /// `MinNrPickUp`, if set.
    pub fn min_pickup_count(&self) -> Option<u32> {
        self.min_pickup
    }

    /// `MaxNrPickUp`, if set.
    pub fn max_pickup_count(&self) -> Option<u32> {
        self.max_pickup
    }

    /// `MinNrProcessing`, if set.
    pub fn min_process_count(&self) -> Option<u32> {
        self.min_process
    }

    /// `MaxNrProcessing`, if set.
    pub fn max_process_count(&self) -> Option<u32> {
        self.max_process
    }

    /// Set-level expiry default, if any.
    pub fn expiry_ttl(&self) -> Option<Millis> {
        self.expiry
    }

    /// Set-level persistence default, if any.
    pub fn persistence(&self) -> Option<bool> {
        self.persistent
    }

    /// Set-level priority default, if any.
    pub fn priority_override(&self) -> Option<Priority> {
        self.priority
    }
}

/// A condition: either a single destination or a set (Composite root).
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Condition on one destination queue.
    Destination(Destination),
    /// Condition on a (hierarchy of) set(s) of destinations.
    Set(DestinationSet),
}

impl From<Destination> for Condition {
    fn from(d: Destination) -> Condition {
        Condition::Destination(d)
    }
}

impl From<DestinationSet> for Condition {
    fn from(s: DestinationSet) -> Condition {
        Condition::Set(s)
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Destination(d) => write!(
                f,
                "dest({}{})",
                d.queue,
                d.recipient
                    .as_deref()
                    .map(|r| format!(", {r}"))
                    .unwrap_or_default()
            ),
            Condition::Set(s) => {
                write!(f, "set[{} members]", s.members.len())
            }
        }
    }
}

impl Condition {
    /// Number of destination leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Condition::Destination(_) => 1,
            Condition::Set(s) => s.members.iter().map(Condition::leaf_count).sum(),
        }
    }

    /// Iterates over all destination leaves in definition (DFS) order. The
    /// position of a leaf in this iteration is its *leaf index*, used to
    /// correlate generated messages and acknowledgments.
    pub fn leaves(&self) -> Vec<&Destination> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Destination>) {
        match self {
            Condition::Destination(d) => out.push(d),
            Condition::Set(s) => {
                for m in &s.members {
                    m.collect_leaves(out);
                }
            }
        }
    }

    /// Validates the condition tree.
    ///
    /// # Errors
    ///
    /// [`CondError::InvalidCondition`] when:
    /// * a set is empty,
    /// * a min/max count is zero, inverted (`min > max`), or exceeds the
    ///   number of destination leaves under the set,
    /// * a min/max count is specified without the corresponding set-level
    ///   time window (a count without a window is unsatisfiable),
    /// * a queue address has an empty manager or queue name.
    pub fn validate(&self) -> CondResult<()> {
        match self {
            Condition::Destination(d) => {
                if d.queue.manager.is_empty() || d.queue.queue.is_empty() {
                    return Err(CondError::InvalidCondition(
                        "destination queue address has empty components".into(),
                    ));
                }
                Ok(())
            }
            Condition::Set(s) => {
                if s.members.is_empty() {
                    return Err(CondError::InvalidCondition("empty destination set".into()));
                }
                let leaves = self.leaf_count() as u32;
                for (dim, window, min, max) in [
                    ("pickup", s.pickup_within, s.min_pickup, s.max_pickup),
                    ("process", s.process_within, s.min_process, s.max_process),
                ] {
                    if (min.is_some() || max.is_some()) && window.is_none() {
                        return Err(CondError::InvalidCondition(format!(
                            "{dim} min/max count requires a set-level {dim} window"
                        )));
                    }
                    if let Some(m) = min {
                        if m == 0 {
                            return Err(CondError::InvalidCondition(format!(
                                "{dim} min count must be positive"
                            )));
                        }
                        if m > leaves {
                            return Err(CondError::InvalidCondition(format!(
                                "{dim} min count {m} exceeds {leaves} destinations"
                            )));
                        }
                    }
                    if let (Some(lo), Some(hi)) = (min, max) {
                        if lo > hi {
                            return Err(CondError::InvalidCondition(format!(
                                "{dim} min count {lo} exceeds max count {hi}"
                            )));
                        }
                    }
                    if let Some(h) = max {
                        if h == 0 {
                            return Err(CondError::InvalidCondition(format!(
                                "{dim} max count must be positive"
                            )));
                        }
                    }
                }
                for m in &s.members {
                    m.validate()?;
                }
                Ok(())
            }
        }
    }
}

// ------------------------------------------------------------------ wire --

fn put_opt_millis(enc: &mut Encoder, v: Option<Millis>) {
    enc.put_opt(v.as_ref(), |e, m| e.put_u64(m.as_u64()));
}

fn get_opt_millis(dec: &mut Decoder) -> Result<Option<Millis>, CodecError> {
    dec.get_opt(|d| d.get_u64().map(Millis))
}

fn put_opt_u32(enc: &mut Encoder, v: Option<u32>) {
    enc.put_opt(v.as_ref(), |e, n| e.put_u32(*n));
}

fn get_opt_u32(dec: &mut Decoder) -> Result<Option<u32>, CodecError> {
    dec.get_opt(|d| d.get_u32())
}

impl WireEncode for Destination {
    fn encode(&self, enc: &mut Encoder) {
        self.queue.encode(enc);
        enc.put_opt(self.recipient.as_ref(), |e, s| e.put_str(s));
        put_opt_millis(enc, self.pickup_within);
        put_opt_millis(enc, self.process_within);
        put_opt_millis(enc, self.expiry);
        enc.put_opt(self.persistent.as_ref(), |e, b| e.put_bool(*b));
        enc.put_opt(self.priority.as_ref(), |e, p| e.put_u8(p.level()));
    }
}

impl WireDecode for Destination {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(Destination {
            queue: QueueAddress::decode(dec)?,
            recipient: dec.get_opt(|d| d.get_str())?,
            pickup_within: get_opt_millis(dec)?,
            process_within: get_opt_millis(dec)?,
            expiry: get_opt_millis(dec)?,
            persistent: dec.get_opt(|d| d.get_bool())?,
            priority: dec.get_opt(|d| d.get_u8().map(Priority::new))?,
        })
    }
}

impl WireEncode for DestinationSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.members.len() as u64);
        for m in &self.members {
            m.encode(enc);
        }
        put_opt_millis(enc, self.pickup_within);
        put_opt_millis(enc, self.process_within);
        put_opt_u32(enc, self.min_pickup);
        put_opt_u32(enc, self.max_pickup);
        put_opt_u32(enc, self.min_process);
        put_opt_u32(enc, self.max_process);
        put_opt_millis(enc, self.expiry);
        enc.put_opt(self.persistent.as_ref(), |e, b| e.put_bool(*b));
        enc.put_opt(self.priority.as_ref(), |e, p| e.put_u8(p.level()));
    }
}

impl WireDecode for DestinationSet {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        let n = dec.get_varint()?;
        let mut members = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            members.push(Condition::decode(dec)?);
        }
        Ok(DestinationSet {
            members,
            pickup_within: get_opt_millis(dec)?,
            process_within: get_opt_millis(dec)?,
            min_pickup: get_opt_u32(dec)?,
            max_pickup: get_opt_u32(dec)?,
            min_process: get_opt_u32(dec)?,
            max_process: get_opt_u32(dec)?,
            expiry: get_opt_millis(dec)?,
            persistent: dec.get_opt(|d| d.get_bool())?,
            priority: dec.get_opt(|d| d.get_u8().map(Priority::new))?,
        })
    }
}

impl WireEncode for Condition {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Condition::Destination(d) => {
                enc.put_u8(0);
                d.encode(enc);
            }
            Condition::Set(s) => {
                enc.put_u8(1);
                s.encode(enc);
            }
        }
    }
}

impl WireDecode for Condition {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(Condition::Destination(Destination::decode(dec)?)),
            1 => Ok(Condition::Set(DestinationSet::decode(dec)?)),
            tag => Err(CodecError::BadTag {
                what: "Condition",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Fig. 4 condition, scaled down (1 "day" = 1000 ms).
    pub(crate) fn example1() -> Condition {
        const DAY: u64 = 1000;
        let qr3 = Destination::queue("QM1", "Q.R3")
            .recipient("receiver3")
            .process_within(Millis(7 * DAY));
        let others = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.R1")
                .recipient("receiver1")
                .into(),
            Destination::queue("QM1", "Q.R2")
                .recipient("receiver2")
                .into(),
            Destination::queue("QM1", "Q.R4")
                .recipient("receiver4")
                .into(),
        ])
        .process_within(Millis(11 * DAY))
        .min_process(2);
        DestinationSet::of(vec![qr3.into(), others.into()])
            .pickup_within(Millis(2 * DAY))
            .into()
    }

    /// Paper Fig. 5 condition (20 s pick-up on a shared queue).
    pub(crate) fn example2() -> Condition {
        Destination::queue("QM1", "Q.CENTRAL")
            .pickup_within(Millis(20_000))
            .into()
    }

    #[test]
    fn example1_structure() {
        let cond = example1();
        cond.validate().unwrap();
        assert_eq!(cond.leaf_count(), 4);
        let leaves = cond.leaves();
        assert_eq!(leaves[0].recipient_id(), Some("receiver3"));
        assert!(leaves[0].is_required(), "qr3 has its own processing window");
        assert!(!leaves[1].is_required(), "qr1 is optional (set counts)");
        assert_eq!(leaves[3].address().queue, "Q.R4");
    }

    #[test]
    fn example2_structure() {
        let cond = example2();
        cond.validate().unwrap();
        assert_eq!(cond.leaf_count(), 1);
        let leaf = cond.leaves()[0];
        assert!(leaf.recipient_id().is_none(), "anonymous recipient");
        assert_eq!(leaf.pickup_window(), Some(Millis(20_000)));
        assert!(leaf.is_required());
    }

    #[test]
    fn empty_set_rejected() {
        let cond: Condition = DestinationSet::empty().into();
        assert!(matches!(
            cond.validate(),
            Err(CondError::InvalidCondition(_))
        ));
    }

    #[test]
    fn count_without_window_rejected() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("M", "A").into(),
            Destination::queue("M", "B").into(),
        ])
        .min_pickup(1)
        .into();
        let err = cond.validate().unwrap_err();
        assert!(err
            .to_string()
            .contains("requires a set-level pickup window"));
    }

    #[test]
    fn zero_and_inverted_counts_rejected() {
        let base = || {
            DestinationSet::of(vec![
                Destination::queue("M", "A").into(),
                Destination::queue("M", "B").into(),
            ])
            .process_within(Millis(10))
        };
        assert!(Condition::from(base().min_process(0)).validate().is_err());
        assert!(Condition::from(base().max_process(0)).validate().is_err());
        assert!(Condition::from(base().min_process(2).max_process(1))
            .validate()
            .is_err());
        assert!(Condition::from(base().min_process(3)).validate().is_err());
        assert!(Condition::from(base().min_process(2).max_process(2))
            .validate()
            .is_ok());
    }

    #[test]
    fn nested_validation_recurses() {
        let bad_inner: Condition = DestinationSet::empty().into();
        let cond: Condition =
            DestinationSet::of(vec![Destination::queue("M", "A").into(), bad_inner]).into();
        assert!(cond.validate().is_err());
    }

    #[test]
    fn empty_queue_address_rejected() {
        let cond: Condition = Destination::queue("", "Q").into();
        assert!(cond.validate().is_err());
        let cond: Condition = Destination::queue("M", "").into();
        assert!(cond.validate().is_err());
    }

    #[test]
    fn leaf_indices_follow_definition_order() {
        let cond = example1();
        let leaves = cond.leaves();
        let queues: Vec<_> = leaves.iter().map(|l| l.address().queue.as_str()).collect();
        assert_eq!(queues, vec!["Q.R3", "Q.R1", "Q.R2", "Q.R4"]);
    }

    #[test]
    fn wire_roundtrip_examples() {
        for cond in [example1(), example2()] {
            let bytes = cond.to_bytes();
            let back = Condition::from_bytes(bytes).unwrap();
            assert_eq!(back, cond);
        }
    }

    #[test]
    fn wire_roundtrip_full_attributes() {
        let cond: Condition = DestinationSet::of(vec![Destination::queue("M", "Q")
            .recipient("bob")
            .pickup_within(Millis(5))
            .process_within(Millis(9))
            .expiry(Millis(100))
            .persistent(false)
            .priority(Priority::new(9))
            .into()])
        .pickup_within(Millis(50))
        .process_within(Millis(60))
        .min_pickup(1)
        .max_pickup(1)
        .min_process(1)
        .max_process(1)
        .expiry(Millis(500))
        .persistent(true)
        .priority(Priority::new(2))
        .into();
        let back = Condition::from_bytes(cond.to_bytes()).unwrap();
        assert_eq!(back, cond);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Condition::from(Destination::queue("M", "Q").recipient("r")).to_string(),
            "dest(M/Q, r)"
        );
        assert!(example1().to_string().starts_with("set["));
    }

    #[test]
    fn conditions_are_reusable_values() {
        // Clone + Eq: the same condition object can be associated with
        // many messages (paper §2.3).
        let c = example1();
        let c2 = c.clone();
        assert_eq!(c, c2);
    }
}
