//! Control information stamped on standard messages, and the internal
//! message formats of the conditional-messaging system.
//!
//! Conditional messaging introduces *two levels* of messages (paper §2.3):
//! the conditional message the application sees, and the standard messages
//! used to implement it. The standard messages carry control properties —
//! the conditional message id, the leaf index, whether processing is
//! required, and the sender's queue manager and acknowledgment queue — so
//! that any receiver-side conditional messaging system can route
//! acknowledgments back without application involvement.

use bytes::Bytes;
use mq::codec::{CodecError, Decoder, Encoder, WireDecode, WireEncode};
use mq::{Message, MessageBuilder, QueueAddress};
use simtime::{Millis, Time};

use crate::condition::Condition;
use crate::error::{CondError, CondResult};
use crate::eval::LeafSpec;
use crate::ids::CondMessageId;

// ------------------------------------------------------------ properties --

/// Message kind discriminator property.
pub const P_KIND: &str = "ds.kind";
/// Conditional message id (hex) property.
pub const P_COND_ID: &str = "ds.cond.id";
/// Destination leaf index property.
pub const P_LEAF: &str = "ds.leaf";
/// Whether processing (vs. mere receipt) is required of this destination.
pub const P_PROCESSING_REQUIRED: &str = "ds.processing.required";
/// Sender's queue manager name (for routing acks back).
pub const P_SENDER_MANAGER: &str = "ds.sender.qmgr";
/// Sender's acknowledgment queue name.
pub const P_ACK_QUEUE: &str = "ds.ack.queue";
/// Acknowledgment type: `read` or `processed`.
pub const P_ACK_TYPE: &str = "ds.ack.type";
/// Read timestamp (ms) on an acknowledgment.
pub const P_ACK_READ_TS: &str = "ds.ack.read_ts";
/// Processing (commit) timestamp (ms) on an acknowledgment.
pub const P_ACK_PROCESS_TS: &str = "ds.ack.process_ts";
/// Acknowledging recipient identity.
pub const P_RECIPIENT: &str = "ds.recipient";
/// Outcome property: `success` or `failure`.
pub const P_OUTCOME: &str = "ds.outcome";
/// Failure reason on outcome notifications.
pub const P_OUTCOME_REASON: &str = "ds.outcome.reason";
/// Decision timestamp on outcome notifications.
pub const P_OUTCOME_TS: &str = "ds.outcome.ts";
/// Marks a system-generated (data-less) compensation message.
pub const P_COMP_SYSTEM: &str = "ds.comp.system";
/// Destination address (`manager/queue`) a parked compensation targets.
pub const P_COMP_DEST: &str = "ds.comp.dest";
/// Sender-log entry type: `send`, `ack`, `outcome`.
pub const P_SLOG_ENTRY: &str = "ds.slog.entry";
/// Decision timestamp property on outcome history entries (selectable for
/// pruning).
pub const P_SLOG_DECIDED_TS: &str = "ds.slog.decided_ts";
/// Receiver-log entry type: `consumed`, `comp-delivered`, `annihilated`.
pub const P_RLOG_ENTRY: &str = "ds.rlog.entry";
/// Timestamp property on receiver-log entries.
pub const P_RLOG_TS: &str = "ds.rlog.ts";

/// Values of [`P_KIND`].
pub mod kind {
    /// A generated standard message carrying the application payload.
    pub const ORIGINAL: &str = "original";
    /// An internal acknowledgment (paper §2.4).
    pub const ACK: &str = "ack";
    /// A compensation message (paper §2.6).
    pub const COMPENSATION: &str = "comp";
    /// A success notification (paper §2.6).
    pub const SUCCESS: &str = "success";
    /// An outcome notification on `DS.OUTCOME.Q`.
    pub const OUTCOME: &str = "outcome";
    /// A sender-log entry on `DS.SLOG.Q`.
    pub const SLOG: &str = "slog";
    /// A receiver-log entry on `DS.RLOG.Q`.
    pub const RLOG: &str = "rlog";
}

/// Classification of a message read through the conditional-messaging API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// A conditional message's payload-bearing standard message.
    Original,
    /// A compensation message.
    Compensation,
    /// A success notification.
    SuccessNotification,
    /// A message not created by the conditional messaging system.
    Standard,
}

/// Classifies a message by its control properties.
pub fn kind_of(msg: &Message) -> MessageKind {
    match msg.str_property(P_KIND) {
        Some(kind::ORIGINAL) => MessageKind::Original,
        Some(kind::COMPENSATION) => MessageKind::Compensation,
        Some(kind::SUCCESS) => MessageKind::SuccessNotification,
        _ => MessageKind::Standard,
    }
}

/// Reads the conditional message id off an internal message.
///
/// # Errors
///
/// [`CondError::Malformed`] when the property is absent or unparsable.
pub fn cond_id_of(msg: &Message) -> CondResult<CondMessageId> {
    msg.str_property(P_COND_ID)
        .and_then(CondMessageId::from_hex)
        .ok_or_else(|| CondError::Malformed("missing or invalid ds.cond.id".into()))
}

/// Reads the leaf index off an internal message.
///
/// # Errors
///
/// [`CondError::Malformed`] when the property is absent or negative.
pub fn leaf_of(msg: &Message) -> CondResult<u32> {
    msg.i64_property(P_LEAF)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| CondError::Malformed("missing or invalid ds.leaf".into()))
}

// -------------------------------------------------------------- original --

/// Builds the standard message for one destination leaf of a conditional
/// message (paper §2.3: application data plus control information).
pub fn make_original(
    payload: &Bytes,
    cond_id: CondMessageId,
    leaf: &LeafSpec,
    sender_manager: &str,
    ack_queue: &str,
) -> Message {
    let mut builder: MessageBuilder = Message::builder(payload.clone())
        .property(P_KIND, kind::ORIGINAL)
        .property(P_COND_ID, cond_id.to_hex())
        .property(P_LEAF, i64::from(leaf.index))
        .property(P_PROCESSING_REQUIRED, leaf.processing_expected)
        .property(P_SENDER_MANAGER, sender_manager)
        .property(P_ACK_QUEUE, ack_queue)
        .priority(leaf.priority)
        .persistent(leaf.persistent)
        .correlation_id(cond_id.to_hex());
    if let Some(recipient) = &leaf.recipient {
        builder = builder.property(P_RECIPIENT, recipient.as_str());
    }
    if let Some(ttl) = leaf.expiry {
        builder = builder.ttl(ttl);
    }
    builder.build()
}

// ------------------------------------------------------------------- ack --

/// The two internal acknowledgment types (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckKind {
    /// Successful *non-transactional* read.
    Read,
    /// Successful *transactional* read — i.e. successful processing.
    Processed,
}

/// A decoded internal acknowledgment.
#[derive(Debug, Clone, PartialEq)]
pub struct Acknowledgment {
    /// Conditional message being acknowledged.
    pub cond_id: CondMessageId,
    /// Destination leaf index.
    pub leaf: u32,
    /// Read or processed.
    pub kind: AckKind,
    /// When the message was read from the queue.
    pub read_at: Time,
    /// When the receiver's transaction committed ([`AckKind::Processed`]
    /// only).
    pub processed_at: Option<Time>,
    /// Acknowledging recipient identity, if configured.
    pub recipient: Option<String>,
}

impl Acknowledgment {
    /// Encodes the acknowledgment as a persistent standard message.
    pub fn to_message(&self) -> Message {
        let mut builder = Message::builder(Bytes::new())
            .property(P_KIND, kind::ACK)
            .property(P_COND_ID, self.cond_id.to_hex())
            .property(P_LEAF, i64::from(self.leaf))
            .property(
                P_ACK_TYPE,
                match self.kind {
                    AckKind::Read => "read",
                    AckKind::Processed => "processed",
                },
            )
            .property(P_ACK_READ_TS, self.read_at.as_millis() as i64)
            .persistent(true)
            .correlation_id(self.cond_id.to_hex());
        if let Some(t) = self.processed_at {
            builder = builder.property(P_ACK_PROCESS_TS, t.as_millis() as i64);
        }
        if let Some(r) = &self.recipient {
            builder = builder.property(P_RECIPIENT, r.as_str());
        }
        builder.build()
    }

    /// Decodes an acknowledgment from a message.
    ///
    /// # Errors
    ///
    /// [`CondError::Malformed`] when required properties are missing.
    pub fn from_message(msg: &Message) -> CondResult<Acknowledgment> {
        let cond_id = cond_id_of(msg)?;
        let leaf = leaf_of(msg)?;
        let kind = match msg.str_property(P_ACK_TYPE) {
            Some("read") => AckKind::Read,
            Some("processed") => AckKind::Processed,
            other => return Err(CondError::Malformed(format!("bad ack type {other:?}"))),
        };
        let read_at = msg
            .i64_property(P_ACK_READ_TS)
            .map(|v| Time(v as u64))
            .ok_or_else(|| CondError::Malformed("ack missing read timestamp".into()))?;
        let processed_at = msg.i64_property(P_ACK_PROCESS_TS).map(|v| Time(v as u64));
        if kind == AckKind::Processed && processed_at.is_none() {
            return Err(CondError::Malformed(
                "processed ack missing processing timestamp".into(),
            ));
        }
        Ok(Acknowledgment {
            cond_id,
            leaf,
            kind,
            read_at,
            processed_at,
            recipient: msg.str_property(P_RECIPIENT).map(str::to_owned),
        })
    }
}

// --------------------------------------------------------------- outcome --

/// Final outcome of a conditional message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageOutcome {
    /// All conditions satisfied.
    Success,
    /// A condition was violated or the evaluation timed out.
    Failure,
}

impl std::fmt::Display for MessageOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageOutcome::Success => write!(f, "success"),
            MessageOutcome::Failure => write!(f, "failure"),
        }
    }
}

/// An outcome notification delivered to the sender's `DS.OUTCOME.Q`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutcomeNotification {
    /// Which conditional message was decided.
    pub cond_id: CondMessageId,
    /// Success or failure.
    pub outcome: MessageOutcome,
    /// Failure reason, when available.
    pub reason: Option<String>,
    /// Sender-clock time of the decision.
    pub decided_at: Time,
}

impl OutcomeNotification {
    /// Encodes the notification as a persistent message.
    pub fn to_message(&self) -> Message {
        let mut builder = Message::builder(Bytes::new())
            .property(P_KIND, kind::OUTCOME)
            .property(P_COND_ID, self.cond_id.to_hex())
            .property(
                P_OUTCOME,
                match self.outcome {
                    MessageOutcome::Success => "success",
                    MessageOutcome::Failure => "failure",
                },
            )
            .property(P_OUTCOME_TS, self.decided_at.as_millis() as i64)
            .persistent(true)
            .correlation_id(self.cond_id.to_hex());
        if let Some(reason) = &self.reason {
            builder = builder.property(P_OUTCOME_REASON, reason.as_str());
        }
        builder.build()
    }

    /// Decodes a notification from a message.
    ///
    /// # Errors
    ///
    /// [`CondError::Malformed`] when required properties are missing.
    pub fn from_message(msg: &Message) -> CondResult<OutcomeNotification> {
        let cond_id = cond_id_of(msg)?;
        let outcome = match msg.str_property(P_OUTCOME) {
            Some("success") => MessageOutcome::Success,
            Some("failure") => MessageOutcome::Failure,
            other => return Err(CondError::Malformed(format!("bad outcome value {other:?}"))),
        };
        let decided_at = msg
            .i64_property(P_OUTCOME_TS)
            .map(|v| Time(v as u64))
            .ok_or_else(|| CondError::Malformed("outcome missing timestamp".into()))?;
        Ok(OutcomeNotification {
            cond_id,
            outcome,
            reason: msg.str_property(P_OUTCOME_REASON).map(str::to_owned),
            decided_at,
        })
    }
}

// --------------------------------------- compensation / success messages --

/// Builds a compensation message parked on `DS.COMP.Q` at send time
/// (paper §2.6). `data` is the application-defined compensation payload;
/// `None` produces the system-generated variant.
pub fn make_compensation(
    cond_id: CondMessageId,
    leaf: u32,
    destination: &QueueAddress,
    data: Option<&Bytes>,
) -> Message {
    Message::builder(data.cloned().unwrap_or_default())
        .property(P_KIND, kind::COMPENSATION)
        .property(P_COND_ID, cond_id.to_hex())
        .property(P_LEAF, i64::from(leaf))
        .property(P_COMP_SYSTEM, data.is_none())
        .property(P_COMP_DEST, destination.to_string())
        .persistent(true)
        .correlation_id(cond_id.to_hex())
        .build()
}

/// Builds a success notification for one destination (paper §2.6).
pub fn make_success_notification(cond_id: CondMessageId, leaf: u32) -> Message {
    Message::builder(Bytes::new())
        .property(P_KIND, kind::SUCCESS)
        .property(P_COND_ID, cond_id.to_hex())
        .property(P_LEAF, i64::from(leaf))
        .persistent(true)
        .correlation_id(cond_id.to_hex())
        .build()
}

// ---------------------------------------------------------- sender's log --

/// Per-send options (paper: the sender may specify an evaluation timeout;
/// success notifications are an outcome action the system "can" perform).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SendOptions {
    /// Hard upper bound on evaluation, relative to the send timestamp. When
    /// it expires with the verdict still pending, the message fails.
    pub evaluation_timeout: Option<Millis>,
    /// Overrides the service-level default for sending success
    /// notifications to all destinations on success.
    pub success_notifications: Option<bool>,
    /// Defer outcome *actions* (compensation release / success
    /// notifications) until explicitly released — used by Dependency-
    /// Spheres, whose member messages act only on the overall sphere
    /// outcome (paper §3.1).
    pub defer_outcome_actions: bool,
}

impl WireEncode for SendOptions {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_opt(self.evaluation_timeout.as_ref(), |e, m| {
            e.put_u64(m.as_u64())
        });
        enc.put_opt(self.success_notifications.as_ref(), |e, b| e.put_bool(*b));
        enc.put_bool(self.defer_outcome_actions);
    }
}

impl WireDecode for SendOptions {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(SendOptions {
            evaluation_timeout: dec.get_opt(|d| d.get_u64().map(Millis))?,
            success_notifications: dec.get_opt(|d| d.get_bool())?,
            defer_outcome_actions: dec.get_bool()?,
        })
    }
}

/// The durable record of one conditional send, written to `DS.SLOG.Q`
/// before the standard messages go out; recovery rebuilds evaluation state
/// from these.
#[derive(Debug, Clone, PartialEq)]
pub struct SendRecord {
    /// The conditional message id.
    pub cond_id: CondMessageId,
    /// Send timestamp on the sender's clock.
    pub send_time: Time,
    /// The full condition tree.
    pub condition: Condition,
    /// The application payload.
    pub payload: Bytes,
    /// Application-defined compensation payload, if provided.
    pub compensation: Option<Bytes>,
    /// Per-send options.
    pub options: SendOptions,
}

impl WireEncode for SendRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(self.cond_id.as_u128());
        enc.put_u64(self.send_time.as_millis());
        self.condition.encode(enc);
        enc.put_bytes(&self.payload);
        enc.put_opt(self.compensation.as_ref(), |e, b| e.put_bytes(b));
        self.options.encode(enc);
    }
}

impl WireDecode for SendRecord {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        Ok(SendRecord {
            cond_id: CondMessageId::from_u128(dec.get_u128()?),
            send_time: Time(dec.get_u64()?),
            condition: Condition::decode(dec)?,
            payload: dec.get_bytes()?,
            compensation: dec.get_opt(|d| d.get_bytes())?,
            options: SendOptions::decode(dec)?,
        })
    }
}

/// A sender-log entry (the payload of a `DS.SLOG.Q` message).
#[derive(Debug, Clone, PartialEq)]
pub enum SlogEntry {
    /// A conditional message was sent.
    Send(SendRecord),
    /// An acknowledgment was consumed from `DS.ACK.Q`.
    AckSeen(Acknowledgment),
    /// The evaluation finished with this outcome.
    Outcome {
        /// Which conditional message.
        cond_id: CondMessageId,
        /// Final outcome.
        outcome: MessageOutcome,
        /// Sender-clock decision time.
        decided_at: Time,
    },
}

impl SlogEntry {
    /// The entry-type string stored in [`P_SLOG_ENTRY`].
    pub fn entry_type(&self) -> &'static str {
        match self {
            SlogEntry::Send(_) => "send",
            SlogEntry::AckSeen(_) => "ack",
            SlogEntry::Outcome { .. } => "outcome",
        }
    }

    /// The conditional message this entry concerns.
    pub fn cond_id(&self) -> CondMessageId {
        match self {
            SlogEntry::Send(r) => r.cond_id,
            SlogEntry::AckSeen(a) => a.cond_id,
            SlogEntry::Outcome { cond_id, .. } => *cond_id,
        }
    }

    /// Encodes the entry as a persistent sender-log message.
    pub fn to_message(&self) -> Message {
        let mut builder = Message::builder(self.to_bytes())
            .property(P_KIND, kind::SLOG)
            .property(P_COND_ID, self.cond_id().to_hex())
            .property(P_SLOG_ENTRY, self.entry_type())
            .correlation_id(self.cond_id().to_hex())
            .persistent(true);
        if let SlogEntry::Outcome { decided_at, .. } = self {
            builder = builder.property(P_SLOG_DECIDED_TS, decided_at.as_millis() as i64);
        }
        builder.build()
    }

    /// Decodes an entry from a `DS.SLOG.Q` message payload.
    ///
    /// # Errors
    ///
    /// [`CondError::Malformed`] on undecodable payloads.
    pub fn from_message(msg: &Message) -> CondResult<SlogEntry> {
        SlogEntry::from_bytes(msg.payload().clone()).map_err(CondError::from)
    }
}

impl WireEncode for SlogEntry {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SlogEntry::Send(record) => {
                enc.put_u8(0);
                record.encode(enc);
            }
            SlogEntry::AckSeen(ack) => {
                enc.put_u8(1);
                enc.put_u128(ack.cond_id.as_u128());
                enc.put_u32(ack.leaf);
                enc.put_u8(match ack.kind {
                    AckKind::Read => 0,
                    AckKind::Processed => 1,
                });
                enc.put_u64(ack.read_at.as_millis());
                enc.put_opt(ack.processed_at.as_ref(), |e, t| e.put_u64(t.as_millis()));
                enc.put_opt(ack.recipient.as_ref(), |e, s| e.put_str(s));
            }
            SlogEntry::Outcome {
                cond_id,
                outcome,
                decided_at,
            } => {
                enc.put_u8(2);
                enc.put_u128(cond_id.as_u128());
                enc.put_u8(match outcome {
                    MessageOutcome::Success => 0,
                    MessageOutcome::Failure => 1,
                });
                enc.put_u64(decided_at.as_millis());
            }
        }
    }
}

impl WireDecode for SlogEntry {
    fn decode(dec: &mut Decoder) -> Result<Self, CodecError> {
        match dec.get_u8()? {
            0 => Ok(SlogEntry::Send(SendRecord::decode(dec)?)),
            1 => Ok(SlogEntry::AckSeen(Acknowledgment {
                cond_id: CondMessageId::from_u128(dec.get_u128()?),
                leaf: dec.get_u32()?,
                kind: match dec.get_u8()? {
                    0 => AckKind::Read,
                    1 => AckKind::Processed,
                    tag => {
                        return Err(CodecError::BadTag {
                            what: "AckKind",
                            tag,
                        })
                    }
                },
                read_at: Time(dec.get_u64()?),
                processed_at: dec.get_opt(|d| d.get_u64().map(Time))?,
                recipient: dec.get_opt(|d| d.get_str())?,
            })),
            2 => Ok(SlogEntry::Outcome {
                cond_id: CondMessageId::from_u128(dec.get_u128()?),
                outcome: match dec.get_u8()? {
                    0 => MessageOutcome::Success,
                    1 => MessageOutcome::Failure,
                    tag => {
                        return Err(CodecError::BadTag {
                            what: "MessageOutcome",
                            tag,
                        })
                    }
                },
                decided_at: Time(dec.get_u64()?),
            }),
            tag => Err(CodecError::BadTag {
                what: "SlogEntry",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Destination;
    use mq::Priority;

    fn spec() -> LeafSpec {
        LeafSpec {
            index: 2,
            queue: QueueAddress::new("QM9", "Q.X"),
            recipient: Some("bob".into()),
            pickup_window: Some(Millis(100)),
            process_window: Some(Millis(200)),
            processing_expected: true,
            expiry: Some(Millis(5_000)),
            persistent: true,
            priority: Priority::new(7),
        }
    }

    #[test]
    fn original_carries_control_information() {
        let id = CondMessageId::generate();
        let payload = Bytes::from_static(b"data");
        let msg = make_original(&payload, id, &spec(), "QM1", "DS.ACK.Q");
        assert_eq!(kind_of(&msg), MessageKind::Original);
        assert_eq!(cond_id_of(&msg).unwrap(), id);
        assert_eq!(leaf_of(&msg).unwrap(), 2);
        assert_eq!(msg.bool_property(P_PROCESSING_REQUIRED), Some(true));
        assert_eq!(msg.str_property(P_SENDER_MANAGER), Some("QM1"));
        assert_eq!(msg.str_property(P_ACK_QUEUE), Some("DS.ACK.Q"));
        assert_eq!(msg.str_property(P_RECIPIENT), Some("bob"));
        assert_eq!(msg.priority(), Priority::new(7));
        assert!(msg.is_persistent());
        assert_eq!(msg.ttl(), Some(Millis(5_000)));
        assert_eq!(msg.payload(), &payload);
        assert_eq!(msg.correlation_id(), Some(id.to_hex().as_str()));
    }

    #[test]
    fn ack_roundtrip_read() {
        let ack = Acknowledgment {
            cond_id: CondMessageId::generate(),
            leaf: 3,
            kind: AckKind::Read,
            read_at: Time(500),
            processed_at: None,
            recipient: None,
        };
        let back = Acknowledgment::from_message(&ack.to_message()).unwrap();
        assert_eq!(back, ack);
    }

    #[test]
    fn ack_roundtrip_processed() {
        let ack = Acknowledgment {
            cond_id: CondMessageId::generate(),
            leaf: 0,
            kind: AckKind::Processed,
            read_at: Time(500),
            processed_at: Some(Time(900)),
            recipient: Some("r1".into()),
        };
        let back = Acknowledgment::from_message(&ack.to_message()).unwrap();
        assert_eq!(back, ack);
    }

    #[test]
    fn processed_ack_requires_processing_timestamp() {
        let mut msg = Acknowledgment {
            cond_id: CondMessageId::generate(),
            leaf: 0,
            kind: AckKind::Read,
            read_at: Time(1),
            processed_at: None,
            recipient: None,
        }
        .to_message();
        msg.set_property(P_ACK_TYPE, "processed");
        assert!(Acknowledgment::from_message(&msg).is_err());
        msg.set_property(P_ACK_TYPE, "bogus");
        assert!(Acknowledgment::from_message(&msg).is_err());
    }

    #[test]
    fn outcome_notification_roundtrip() {
        for (outcome, reason) in [
            (MessageOutcome::Success, None),
            (MessageOutcome::Failure, Some("deadline passed".to_owned())),
        ] {
            let n = OutcomeNotification {
                cond_id: CondMessageId::generate(),
                outcome,
                reason,
                decided_at: Time(1234),
            };
            let back = OutcomeNotification::from_message(&n.to_message()).unwrap();
            assert_eq!(back, n);
        }
    }

    #[test]
    fn compensation_messages_record_destination_and_origin() {
        let id = CondMessageId::generate();
        let dest = QueueAddress::new("QM2", "Q.R1");
        let sys = make_compensation(id, 1, &dest, None);
        assert_eq!(kind_of(&sys), MessageKind::Compensation);
        assert_eq!(sys.bool_property(P_COMP_SYSTEM), Some(true));
        assert_eq!(sys.str_property(P_COMP_DEST), Some("QM2/Q.R1"));
        assert!(sys.payload().is_empty());

        let data = Bytes::from_static(b"undo!");
        let app = make_compensation(id, 1, &dest, Some(&data));
        assert_eq!(app.bool_property(P_COMP_SYSTEM), Some(false));
        assert_eq!(app.payload(), &data);
    }

    #[test]
    fn success_notification_shape() {
        let id = CondMessageId::generate();
        let msg = make_success_notification(id, 4);
        assert_eq!(kind_of(&msg), MessageKind::SuccessNotification);
        assert_eq!(cond_id_of(&msg).unwrap(), id);
        assert_eq!(leaf_of(&msg).unwrap(), 4);
    }

    #[test]
    fn standard_messages_classify_as_standard() {
        let msg = Message::text("plain").build();
        assert_eq!(kind_of(&msg), MessageKind::Standard);
        assert!(cond_id_of(&msg).is_err());
        assert!(leaf_of(&msg).is_err());
    }

    #[test]
    fn slog_entries_roundtrip() {
        let record = SendRecord {
            cond_id: CondMessageId::generate(),
            send_time: Time(42),
            condition: Destination::queue("M", "Q")
                .pickup_within(Millis(10))
                .into(),
            payload: Bytes::from_static(b"pay"),
            compensation: Some(Bytes::from_static(b"undo")),
            options: SendOptions {
                evaluation_timeout: Some(Millis(99)),
                success_notifications: Some(true),
                defer_outcome_actions: true,
            },
        };
        let entries = vec![
            SlogEntry::Send(record.clone()),
            SlogEntry::AckSeen(Acknowledgment {
                cond_id: record.cond_id,
                leaf: 0,
                kind: AckKind::Processed,
                read_at: Time(50),
                processed_at: Some(Time(60)),
                recipient: Some("x".into()),
            }),
            SlogEntry::Outcome {
                cond_id: record.cond_id,
                outcome: MessageOutcome::Success,
                decided_at: Time(70),
            },
        ];
        for entry in entries {
            let msg = entry.to_message();
            assert_eq!(msg.str_property(P_KIND), Some(kind::SLOG));
            assert_eq!(msg.str_property(P_SLOG_ENTRY), Some(entry.entry_type()));
            assert_eq!(cond_id_of(&msg).unwrap(), entry.cond_id());
            let back = SlogEntry::from_message(&msg).unwrap();
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn send_options_default_roundtrip() {
        let opts = SendOptions::default();
        let back = SendOptions::from_bytes(opts.to_bytes()).unwrap();
        assert_eq!(back, opts);
        assert!(back.evaluation_timeout.is_none());
        assert!(back.success_notifications.is_none());
    }
}
