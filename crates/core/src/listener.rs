//! Push-based conditional consumption.
//!
//! The paper notes that "in messaging systems, it is common practice to
//! perform the processing of a message in a transaction" (§2.4). A
//! [`ConditionalListener`] packages that practice: a background thread
//! reads conditional messages inside a receiver transaction and hands them
//! to a callback; committing the transaction produces the processed-ack,
//! rolling back redelivers with no acknowledgment — the same rules as the
//! pull API, without the consumer loop boilerplate.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mq::stats::Counter;
use mq::{QueueManager, Wait};
use parking_lot::{Condvar, Mutex};
use simtime::Millis;

use crate::config::CondConfig;
use crate::error::CondResult;
use crate::receiver::{ConditionalReceiver, ReceivedMessage};

/// Outcome of processing one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Processing {
    /// Commit the receiver transaction: consumption becomes permanent and,
    /// for conditional originals, the processed-ack is emitted.
    Commit,
    /// Roll back: the message is redelivered (backout counting applies)
    /// and no acknowledgment is produced.
    Rollback,
}

/// The processing callback.
pub type ProcessingCallback = dyn FnMut(&ReceivedMessage) -> Processing + Send;

/// Per-listener statistics.
#[derive(Debug, Default)]
pub struct ConditionalListenerStats {
    /// Messages processed and committed.
    pub processed: Counter,
    /// Deliveries rolled back (by decision or panic).
    pub rolled_back: Counter,
    /// Callback panics caught.
    pub panics: Counter,
    /// Signalled after every disposition so waiters can park instead of
    /// sleep-polling.
    changed: Condvar,
    changed_lock: Mutex<()>,
}

impl ConditionalListenerStats {
    /// Blocks until `pred` holds, woken by the listener after each
    /// disposition (commit, rollback or caught panic) instead of
    /// sleep-polling. Panics with `what` after 5 s — this is a test/await
    /// helper, not a production synchronization primitive.
    pub fn wait_until<F: Fn() -> bool>(&self, what: &str, pred: F) {
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut guard = self.changed_lock.lock();
        while !pred() {
            let now = Instant::now();
            assert!(now < deadline, "timed out waiting for: {what}");
            self.changed.wait_for(&mut guard, deadline - now);
        }
    }

    fn note_disposition(&self) {
        let _guard = self.changed_lock.lock();
        self.changed.notify_all();
    }
}

/// A running conditional push consumer; stops (and joins) on drop.
pub struct ConditionalListener {
    queue: String,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: Arc<ConditionalListenerStats>,
}

impl fmt::Debug for ConditionalListener {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConditionalListener")
            .field("queue", &self.queue)
            .field("processed", &self.stats.processed.get())
            .finish()
    }
}

impl ConditionalListener {
    /// Spawns a listener processing conditional messages from `queue` with
    /// the given recipient identity.
    ///
    /// # Errors
    ///
    /// Queue-creation failures (the receiver log queue is ensured).
    pub fn spawn(
        qmgr: Arc<QueueManager>,
        queue: impl Into<String>,
        recipient: Option<String>,
        mut callback: Box<ProcessingCallback>,
    ) -> CondResult<ConditionalListener> {
        let queue = queue.into();
        // The queue's condvar handle lets the idle loop park without
        // opening a transaction; tolerate a not-yet-created queue by
        // falling back to a plain timed read.
        let watched = qmgr.queue(&queue).ok();
        // Construct the receiver up front so setup errors surface here.
        let mut receiver =
            ConditionalReceiver::with_config(qmgr, recipient, CondConfig::default())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ConditionalListenerStats::default());
        let stop2 = stop.clone();
        let stats2 = stats.clone();
        let queue2 = queue.clone();
        let handle = std::thread::Builder::new()
            .name(format!("condmsg-listener-{queue}"))
            .spawn(move || {
                while !stop2.load(Ordering::SeqCst) {
                    if let Some(q) = &watched {
                        // Park on the queue's condvar while idle: no
                        // receiver transaction until a message is there.
                        match q.wait_nonempty(Wait::Timeout(Millis(50))) {
                            Ok(true) => {}
                            Ok(false) => continue, // recheck the stop flag
                            Err(_) => return,      // manager stopped
                        }
                    }
                    if receiver.begin_tx().is_err() {
                        return;
                    }
                    // Short timed read (not NoWait): a queue that is
                    // non-empty but holds nothing deliverable yet (e.g. a
                    // deferred compensation) must not busy-spin.
                    let msg = match receiver.read_message(&queue2, Wait::Timeout(Millis(20))) {
                        Ok(Some(m)) => m,
                        Ok(None) => {
                            let _ = receiver.rollback_tx();
                            continue;
                        }
                        Err(_) => return, // manager stopped
                    };
                    let decision =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| callback(&msg)));
                    match decision {
                        Ok(Processing::Commit) => {
                            if receiver.commit_tx().is_ok() {
                                stats2.processed.incr();
                            }
                        }
                        Ok(Processing::Rollback) => {
                            let _ = receiver.rollback_tx();
                            stats2.rolled_back.incr();
                        }
                        Err(_) => {
                            let _ = receiver.rollback_tx();
                            stats2.rolled_back.incr();
                            stats2.panics.incr();
                        }
                    }
                    stats2.note_disposition();
                }
            })
            .expect("failed to spawn conditional listener");
        Ok(ConditionalListener {
            queue,
            stop,
            handle: Some(handle),
            stats,
        })
    }

    /// The queue this listener consumes.
    pub fn queue(&self) -> &str {
        &self.queue
    }

    /// Listener statistics.
    pub fn stats(&self) -> &ConditionalListenerStats {
        &self.stats
    }

    /// Stops the listener and waits for its thread to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ConditionalListener {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::{Condition, Destination};
    use crate::messenger::ConditionalMessenger;
    use crate::wire::{MessageKind, MessageOutcome};

    fn setup() -> (Arc<QueueManager>, Arc<ConditionalMessenger>) {
        let qmgr = QueueManager::builder("QM1").build().unwrap();
        qmgr.create_queue("Q.WORK").unwrap();
        let messenger = ConditionalMessenger::new(qmgr.clone()).unwrap();
        (qmgr, messenger)
    }

    fn processing_condition() -> Condition {
        Destination::queue("QM1", "Q.WORK")
            .process_within(Millis(5_000))
            .into()
    }

    #[test]
    fn committed_processing_satisfies_processing_condition() {
        let (qmgr, messenger) = setup();
        let _daemon = messenger.spawn_daemon(Duration::from_millis(2)).unwrap();
        let listener = ConditionalListener::spawn(
            qmgr.clone(),
            "Q.WORK",
            Some("worker-1".into()),
            Box::new(|msg| {
                assert_eq!(msg.kind(), MessageKind::Original);
                Processing::Commit
            }),
        )
        .unwrap();
        let id = messenger
            .send_message("job", &processing_condition())
            .unwrap();
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(5_000)))
            .unwrap()
            .expect("decided");
        assert_eq!(outcome.outcome, MessageOutcome::Success);
        // The outcome is decided the moment the processing ack commits;
        // the listener bumps its counter just after, so park for it.
        listener
            .stats()
            .wait_until("processed counted", || listener.stats().processed.get() == 1);
    }

    #[test]
    fn rollbacks_then_commit_retry_path() {
        let (qmgr, messenger) = setup();
        let _daemon = messenger.spawn_daemon(Duration::from_millis(2)).unwrap();
        let failures_left = Arc::new(std::sync::atomic::AtomicUsize::new(2));
        let fl = failures_left.clone();
        let listener = ConditionalListener::spawn(
            qmgr.clone(),
            "Q.WORK",
            None,
            Box::new(move |_msg| {
                if fl
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
                {
                    Processing::Rollback
                } else {
                    Processing::Commit
                }
            }),
        )
        .unwrap();
        let id = messenger
            .send_message("flaky job", &processing_condition())
            .unwrap();
        let outcome = messenger
            .take_outcome(id, Wait::Timeout(Millis(5_000)))
            .unwrap()
            .expect("decided");
        assert_eq!(
            outcome.outcome,
            MessageOutcome::Success,
            "third attempt commits"
        );
        assert_eq!(listener.stats().rolled_back.get(), 2);
        // The counter lands just after the commit that decided the
        // outcome; park for it instead of racing the listener thread.
        listener
            .stats()
            .wait_until("processed counted", || listener.stats().processed.get() == 1);
    }

    #[test]
    fn panicking_callback_rolls_back_without_ack() {
        let (qmgr, messenger) = setup();
        let listener = ConditionalListener::spawn(
            qmgr.clone(),
            "Q.WORK",
            None,
            Box::new(|msg| {
                if msg.payload_str() == Some("boom") {
                    panic!("processing exploded");
                }
                Processing::Commit
            }),
        )
        .unwrap();
        messenger
            .send_message("boom", &processing_condition())
            .unwrap();
        listener
            .stats()
            .wait_until("panic caught", || listener.stats().panics.get() >= 1);
        // No acknowledgment was produced by the failed attempts so far.
        // (The message keeps being redelivered until backout; we only
        // assert the no-ack-on-rollback property here.)
        assert_eq!(listener.stats().processed.get(), 0);
    }

    #[test]
    fn stop_is_idempotent() {
        let (qmgr, _messenger) = setup();
        let mut listener =
            ConditionalListener::spawn(qmgr, "Q.WORK", None, Box::new(|_| Processing::Commit))
                .unwrap();
        listener.stop();
        listener.stop();
        assert_eq!(listener.queue(), "Q.WORK");
    }
}
