//! Deep static analysis of condition trees.
//!
//! [`Condition::validate`] catches structural mistakes (empty sets,
//! inverted counts). This module goes further: it proves properties about
//! what a condition tree can *do at runtime* — before any message is put
//! to a destination — so a sender is told at send time about trees that
//! can only "evaluate to failure" after burning a full evaluation timeout
//! (paper §2.3), or that succeed without a single recipient acting.
//!
//! The analyzer runs automatically inside
//! [`ConditionalMessenger::send_with`](crate::ConditionalMessenger) (gated
//! by [`CondConfig::analyze_sends`](crate::CondConfig)) and is available
//! standalone via [`analyze`] / [`analyze_with`].
//!
//! # Rules
//!
//! | rule | severity | meaning |
//! |------|----------|---------|
//! | `zero-window` | error | a 0 ms pick-up/processing window can only be met by an ack stamped at the send instant — statically unsatisfiable in any real deployment |
//! | `unsat-count` | error | a set's `min` count exceeds its satisfiable members once zero-window members are discounted, propagated through nested sets |
//! | `vacuous-success` | warning | the tree carries no time constraint anywhere: it evaluates to success with zero acknowledgments |
//! | `non-monotonic-window` | warning | a member window extends past its nearest enclosing set window in the same dimension |
//! | `timeout-shadow` | warning | a window's deadline (plus ack grace) can never expire before the evaluation timeout: its failure verdict degrades to a generic timeout failure |
//! | `duplicate-destination` | warning | the same destination queue appears at two leaves |
//! | `missing-compensation` | warning | a failable tree is sent without application compensation data; the failure path delivers only system-generated markers |
//! | `pickup-after-process` | warning | a leaf's pick-up window extends past its processing window; the tail is dead code |
//! | `redundant-max` | warning | a set `max` count is at least its member count, so the cap never binds |
//! | `trivial-set` | warning | a single-member set adds no grouping semantics |
//!
//! Each diagnostic carries a [`TreePath`] into the condition tree so the
//! offending cell can be located mechanically.

use std::collections::HashMap;
use std::fmt;

use simtime::Millis;

use crate::condition::{Condition, Destination, DestinationSet};
use crate::eval::Dimension;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but satisfiable; reported via metrics, send proceeds.
    Warning,
    /// Statically unsatisfiable (or equivalent); the send is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The analyzer rules. See the [module docs](self) for the semantics table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// A 0 ms time window (leaf or set level).
    ZeroWindow,
    /// A set `min` count exceeding its satisfiable members.
    UnsatisfiableCount,
    /// No constraint anywhere: success with zero acknowledgments.
    VacuousSuccess,
    /// A member window extending past the enclosing set window.
    NonMonotonicWindow,
    /// A deadline that can never fire before the evaluation timeout.
    TimeoutShadow,
    /// The same destination queue at two leaves.
    DuplicateDestination,
    /// Failable tree sent without application compensation data.
    MissingCompensation,
    /// Leaf pick-up window extending past its processing window.
    PickupAfterProcess,
    /// A `max` count that can never bind.
    RedundantMax,
    /// A set with a single member.
    TrivialSet,
}

impl Rule {
    /// The rule's stable kebab-case name (used in diagnostics and docs).
    pub fn name(self) -> &'static str {
        match self {
            Rule::ZeroWindow => "zero-window",
            Rule::UnsatisfiableCount => "unsat-count",
            Rule::VacuousSuccess => "vacuous-success",
            Rule::NonMonotonicWindow => "non-monotonic-window",
            Rule::TimeoutShadow => "timeout-shadow",
            Rule::DuplicateDestination => "duplicate-destination",
            Rule::MissingCompensation => "missing-compensation",
            Rule::PickupAfterProcess => "pickup-after-process",
            Rule::RedundantMax => "redundant-max",
            Rule::TrivialSet => "trivial-set",
        }
    }

    /// The severity this rule reports at.
    pub fn severity(self) -> Severity {
        match self {
            Rule::ZeroWindow | Rule::UnsatisfiableCount => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A path from the root of a condition tree to one of its cells: the child
/// index taken at each set. The empty path is the root.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TreePath(Vec<usize>);

impl TreePath {
    /// The path to the root cell.
    pub fn root() -> TreePath {
        TreePath(Vec::new())
    }

    /// The child indexes from the root, outermost first.
    pub fn indexes(&self) -> &[usize] {
        &self.0
    }

    fn child(&self, index: usize) -> TreePath {
        let mut v = self.0.clone();
        v.push(index);
        TreePath(v)
    }

    /// Resolves the path inside `condition`, returning the addressed cell
    /// (`None` when the path does not exist in this tree).
    pub fn resolve<'c>(&self, condition: &'c Condition) -> Option<&'c Condition> {
        let mut cell = condition;
        for &index in &self.0 {
            match cell {
                Condition::Set(s) => cell = s.members().get(index)?,
                Condition::Destination(_) => return None,
            }
        }
        Some(cell)
    }
}

impl fmt::Display for TreePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("root")?;
        for index in &self.0 {
            write!(f, ".{index}")?;
        }
        Ok(())
    }
}

/// One analyzer finding, anchored to a cell of the condition tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// The rule's severity.
    pub severity: Severity,
    /// Path to the offending cell.
    pub path: TreePath,
    /// Human-readable explanation with the concrete values involved.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.path, self.message
        )
    }
}

/// Send-time context the analyzer can take into account.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeContext {
    /// The effective evaluation timeout of the send (per-send override or
    /// config default); enables the `timeout-shadow` rule.
    pub evaluation_timeout: Option<Millis>,
    /// The evaluation manager's ack grace (deadline triggers fire at
    /// `deadline + grace`); sharpens `timeout-shadow`.
    pub ack_grace: Millis,
    /// Whether the send carries application compensation data; `Some(false)`
    /// enables the `missing-compensation` rule, `None` (standalone
    /// analysis) disables it.
    pub has_compensation: Option<bool>,
}

/// The outcome of analyzing one condition tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// All diagnostics, errors first, in tree order within a severity.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The warning diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether any error-severity rule fired.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the tree is free of findings at any severity.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Converts the report into a typed error when it contains
    /// error-severity diagnostics.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the original report when there are no errors.
    pub fn into_error(self) -> Result<AnalyzeError, Report> {
        if self.has_errors() {
            Ok(AnalyzeError {
                diagnostics: self
                    .diagnostics
                    .into_iter()
                    .filter(|d| d.severity == Severity::Error)
                    .collect(),
            })
        } else {
            Err(self)
        }
    }
}

/// Typed rejection carrying the error-severity [`Diagnostic`]s that made a
/// condition tree statically unacceptable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzeError {
    diagnostics: Vec<Diagnostic>,
}

impl AnalyzeError {
    /// The error diagnostics (at least one).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "condition rejected by static analysis: ")?;
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for AnalyzeError {}

/// Analyzes a condition tree with no send-time context (the
/// context-dependent rules `timeout-shadow` and `missing-compensation`
/// stay silent).
pub fn analyze(condition: &Condition) -> Report {
    analyze_with(condition, &AnalyzeContext::default())
}

/// Analyzes a condition tree under a send-time [`AnalyzeContext`].
///
/// The analyzer assumes the tree already passes
/// [`Condition::validate`]; on an invalid tree it still terminates but
/// may miss findings.
pub fn analyze_with(condition: &Condition, ctx: &AnalyzeContext) -> Report {
    let mut w = Walker {
        ctx,
        diagnostics: Vec::new(),
        seen_addresses: HashMap::new(),
        any_constraint: false,
    };
    w.walk(condition, &TreePath::root(), [None, None]);
    w.finish_root(condition);
    let mut diagnostics = w.diagnostics;
    diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
    Report { diagnostics }
}

/// Per-leaf most-specific windows of a subtree, `[pickup, process]`,
/// mirroring the window-inheritance rules of
/// [`CompiledCondition`](crate::CompiledCondition).
struct SubtreeLeaves {
    entries: Vec<[Option<Millis>; 2]>,
}

struct Walker<'a> {
    ctx: &'a AnalyzeContext,
    diagnostics: Vec<Diagnostic>,
    /// Destination address → path of its first occurrence.
    seen_addresses: HashMap<String, TreePath>,
    /// Whether any time window exists anywhere in the tree.
    any_constraint: bool,
}

const DIMS: [Dimension; 2] = [Dimension::Pickup, Dimension::Process];

impl Walker<'_> {
    fn report(&mut self, rule: Rule, path: &TreePath, message: String) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity: rule.severity(),
            path: path.clone(),
            message,
        });
    }

    /// `zero-window`, `non-monotonic-window` and `timeout-shadow` apply to
    /// any node carrying a window; `enclosing` is the nearest ancestor set
    /// window per dimension.
    fn check_window(
        &mut self,
        dim: Dimension,
        window: Option<Millis>,
        enclosing: Option<Millis>,
        path: &TreePath,
    ) {
        let Some(window) = window else { return };
        self.any_constraint = true;
        if window == Millis::ZERO {
            self.report(
                Rule::ZeroWindow,
                path,
                format!(
                    "{dim} window is 0 ms: only an acknowledgment stamped at \
                     the send instant could satisfy it"
                ),
            );
        }
        if let Some(outer) = enclosing {
            if window > outer {
                self.report(
                    Rule::NonMonotonicWindow,
                    path,
                    format!(
                        "{dim} window {window} extends past the enclosing set's \
                         {outer}; the enclosing deadline does not bound this member"
                    ),
                );
            }
        }
        if let Some(timeout) = self.ctx.evaluation_timeout {
            if window + self.ctx.ack_grace >= timeout {
                self.report(
                    Rule::TimeoutShadow,
                    path,
                    format!(
                        "{dim} deadline at {window} (+{} grace) can never fire \
                         before the {timeout} evaluation timeout: its verdict \
                         degrades to a generic timeout failure",
                        self.ctx.ack_grace
                    ),
                );
            }
        }
    }

    fn walk(
        &mut self,
        condition: &Condition,
        path: &TreePath,
        enclosing: [Option<Millis>; 2],
    ) -> SubtreeLeaves {
        match condition {
            Condition::Destination(d) => self.walk_leaf(d, path, enclosing),
            Condition::Set(s) => self.walk_set(s, path, enclosing),
        }
    }

    fn walk_leaf(
        &mut self,
        d: &Destination,
        path: &TreePath,
        enclosing: [Option<Millis>; 2],
    ) -> SubtreeLeaves {
        let windows = [d.pickup_window(), d.process_window()];
        for (i, dim) in DIMS.into_iter().enumerate() {
            self.check_window(dim, windows[i], enclosing[i], path);
        }
        if let (Some(pickup), Some(process)) = (d.pickup_window(), d.process_window()) {
            if pickup > process {
                self.report(
                    Rule::PickupAfterProcess,
                    path,
                    format!(
                        "pick-up window {pickup} extends past the processing \
                         window {process}: processing implies a prior read, so \
                         the tail of the pick-up window is dead code"
                    ),
                );
            }
        }
        let address = d.address().to_string();
        if let Some(first) = self.seen_addresses.get(&address) {
            let first = first.clone();
            self.report(
                Rule::DuplicateDestination,
                path,
                format!(
                    "destination {address} already appears at {first}: the \
                     recipient receives two copies and both must be \
                     acknowledged separately"
                ),
            );
        } else {
            self.seen_addresses.insert(address, path.clone());
        }
        SubtreeLeaves {
            entries: vec![windows],
        }
    }

    fn walk_set(
        &mut self,
        s: &DestinationSet,
        path: &TreePath,
        enclosing: [Option<Millis>; 2],
    ) -> SubtreeLeaves {
        let set_windows = [s.pickup_window(), s.process_window()];
        let mut inner = enclosing;
        for (i, dim) in DIMS.into_iter().enumerate() {
            self.check_window(dim, set_windows[i], enclosing[i], path);
            // Nearest-ancestor window for the members.
            inner[i] = set_windows[i].or(enclosing[i]);
        }
        if s.members().len() == 1 {
            self.report(
                Rule::TrivialSet,
                path,
                "set has a single member: its grouping and counts degenerate \
                 to the member itself"
                    .to_owned(),
            );
        }
        let mut entries = Vec::new();
        for (i, member) in s.members().iter().enumerate() {
            let sub = self.walk(member, &path.child(i), inner);
            entries.extend(sub.entries);
        }
        for (i, dim) in DIMS.into_iter().enumerate() {
            let (min, max) = match dim {
                Dimension::Pickup => (s.min_pickup_count(), s.max_pickup_count()),
                Dimension::Process => (s.min_process_count(), s.max_process_count()),
            };
            let Some(window) = set_windows[i] else {
                continue;
            };
            // A member is satisfiable for this set's count if its effective
            // window — its own most-specific window, else this set's — is
            // wider than zero. Zero-width members propagate up through
            // nested sets via the entries they contribute.
            let satisfiable = entries
                .iter()
                .filter(|e| e[i].unwrap_or(window) > Millis::ZERO)
                .count();
            let required = min.unwrap_or(entries.len() as u32) as usize;
            if required > satisfiable {
                self.report(
                    Rule::UnsatisfiableCount,
                    path,
                    format!(
                        "{dim} count requires {required} member(s) but only \
                         {satisfiable} of {} are satisfiable (zero-width \
                         windows discounted)",
                        entries.len()
                    ),
                );
            }
            if let Some(cap) = max {
                if cap as usize >= entries.len() {
                    self.report(
                        Rule::RedundantMax,
                        path,
                        format!(
                            "{dim} max count {cap} is not below the {} member \
                             destination(s): the cap never binds",
                            entries.len()
                        ),
                    );
                }
            }
            // This set's window becomes the fallback most-specific window
            // for members that had none, exactly as in compilation.
            for entry in &mut entries {
                entry[i] = entry[i].or(Some(window));
            }
        }
        SubtreeLeaves { entries }
    }

    fn finish_root(&mut self, condition: &Condition) {
        let root = TreePath::root();
        if !self.any_constraint {
            self.report(
                Rule::VacuousSuccess,
                &root,
                format!(
                    "no time constraint anywhere over {} destination(s): the \
                     condition evaluates to success with zero acknowledgments",
                    condition.leaf_count()
                ),
            );
        }
        if self.ctx.has_compensation == Some(false) && self.any_constraint {
            self.report(
                Rule::MissingCompensation,
                &root,
                "failable condition sent without application compensation \
                 data: on failure every destination receives only a \
                 system-generated compensation marker"
                    .to_owned(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(q: &str) -> Condition {
        crate::condition::Destination::queue("QM", q).into()
    }

    fn ctx() -> AnalyzeContext {
        AnalyzeContext::default()
    }

    fn rules_of(report: &Report) -> Vec<Rule> {
        report.diagnostics().iter().map(|d| d.rule).collect()
    }

    use crate::condition::{Destination, DestinationSet};

    // -------------------------------------------------- zero-window --

    #[test]
    fn zero_window_rejected() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis::ZERO)
            .into();
        let report = analyze(&cond);
        assert!(report.has_errors());
        assert!(rules_of(&report).contains(&Rule::ZeroWindow));
        assert_eq!(report.errors().next().unwrap().path, TreePath::root());
    }

    #[test]
    fn positive_window_accepted() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis(100))
            .into();
        let report = analyze(&cond);
        assert!(!rules_of(&report).contains(&Rule::ZeroWindow));
        assert!(!report.has_errors());
    }

    // -------------------------------------------------- unsat-count --

    #[test]
    fn min_count_over_zero_window_members_rejected() {
        // Two of three members carry their own 0 ms processing window, so
        // at most one member can ever satisfy the set's count — min 2 is
        // statically unsatisfiable, through the nesting.
        let dead = DestinationSet::of(vec![
            Destination::queue("QM", "A")
                .process_within(Millis::ZERO)
                .into(),
            Destination::queue("QM", "B")
                .process_within(Millis::ZERO)
                .into(),
        ]);
        let cond: Condition = DestinationSet::of(vec![dead.into(), leaf("C")])
            .process_within(Millis(500))
            .min_process(2)
            .into();
        let report = analyze(&cond);
        let unsat: Vec<_> = report
            .errors()
            .filter(|d| d.rule == Rule::UnsatisfiableCount)
            .collect();
        assert_eq!(unsat.len(), 1, "{report:?}");
        assert_eq!(unsat[0].path, TreePath::root());
        assert!(unsat[0].message.contains("requires 2"));
    }

    #[test]
    fn min_count_within_satisfiable_members_accepted() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B"), leaf("C")])
            .process_within(Millis(500))
            .min_process(2)
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::UnsatisfiableCount));
    }

    // ---------------------------------------------- vacuous-success --

    #[test]
    fn unconstrained_tree_warns_vacuous() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B")]).into();
        let report = analyze(&cond);
        assert!(rules_of(&report).contains(&Rule::VacuousSuccess));
        assert!(!report.has_errors(), "vacuity is a warning, not an error");
    }

    #[test]
    fn any_window_suppresses_vacuous() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B")])
            .pickup_within(Millis(100))
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::VacuousSuccess));
    }

    // ----------------------------------------- non-monotonic-window --

    #[test]
    fn member_window_past_set_window_warns() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM", "A")
                .pickup_within(Millis(200))
                .into(),
            leaf("B"),
        ])
        .pickup_within(Millis(100))
        .into();
        let report = analyze(&cond);
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::NonMonotonicWindow)
            .expect("non-monotonic member window flagged");
        assert_eq!(diag.path.indexes(), &[0]);
    }

    #[test]
    fn member_window_inside_set_window_accepted() {
        let cond: Condition = DestinationSet::of(vec![
            Destination::queue("QM", "A")
                .pickup_within(Millis(50))
                .into(),
            leaf("B"),
        ])
        .pickup_within(Millis(100))
        .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::NonMonotonicWindow));
    }

    #[test]
    fn monotonicity_uses_nearest_ancestor_across_dimensions() {
        // Process window compared against process ancestors only.
        let inner = DestinationSet::of(vec![
            Destination::queue("QM", "A")
                .process_within(Millis(900))
                .into(),
            leaf("B"),
        ])
        .process_within(Millis(1_000));
        let cond: Condition = DestinationSet::of(vec![inner.into(), leaf("C")])
            .pickup_within(Millis(10))
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::NonMonotonicWindow));
    }

    // ------------------------------------------------ timeout-shadow --

    #[test]
    fn deadline_past_evaluation_timeout_warns() {
        let cond: Condition = Destination::queue("QM", "Q")
            .process_within(Millis(10_000))
            .into();
        let report = analyze_with(
            &cond,
            &AnalyzeContext {
                evaluation_timeout: Some(Millis(500)),
                ..ctx()
            },
        );
        assert!(rules_of(&report).contains(&Rule::TimeoutShadow));
    }

    #[test]
    fn deadline_before_evaluation_timeout_accepted() {
        let cond: Condition = Destination::queue("QM", "Q")
            .process_within(Millis(400))
            .into();
        let report = analyze_with(
            &cond,
            &AnalyzeContext {
                evaluation_timeout: Some(Millis(500)),
                ..ctx()
            },
        );
        assert!(!rules_of(&report).contains(&Rule::TimeoutShadow));
    }

    #[test]
    fn ack_grace_counts_toward_timeout_shadow() {
        // 400 ms deadline + 200 ms grace fires at 600 ≥ 500: shadowed.
        let cond: Condition = Destination::queue("QM", "Q")
            .process_within(Millis(400))
            .into();
        let report = analyze_with(
            &cond,
            &AnalyzeContext {
                evaluation_timeout: Some(Millis(500)),
                ack_grace: Millis(200),
                ..ctx()
            },
        );
        assert!(rules_of(&report).contains(&Rule::TimeoutShadow));
    }

    // ----------------------------------------- duplicate-destination --

    #[test]
    fn duplicate_destination_warns_with_first_path() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B"), leaf("A")])
            .pickup_within(Millis(100))
            .into();
        let report = analyze(&cond);
        let diag = report
            .diagnostics()
            .iter()
            .find(|d| d.rule == Rule::DuplicateDestination)
            .expect("duplicate flagged");
        assert_eq!(diag.path.indexes(), &[2]);
        assert!(diag.message.contains("root.0"), "{}", diag.message);
    }

    #[test]
    fn distinct_destinations_accepted() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B")])
            .pickup_within(Millis(100))
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::DuplicateDestination));
    }

    // ----------------------------------------- missing-compensation --

    #[test]
    fn failable_send_without_compensation_warns() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis(100))
            .into();
        let report = analyze_with(
            &cond,
            &AnalyzeContext {
                has_compensation: Some(false),
                ..ctx()
            },
        );
        assert!(rules_of(&report).contains(&Rule::MissingCompensation));
    }

    #[test]
    fn compensated_send_and_standalone_analysis_accepted() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis(100))
            .into();
        let with = analyze_with(
            &cond,
            &AnalyzeContext {
                has_compensation: Some(true),
                ..ctx()
            },
        );
        assert!(!rules_of(&with).contains(&Rule::MissingCompensation));
        // Standalone analysis has no send context: rule stays silent.
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::MissingCompensation));
    }

    // ----------------------------------------- pickup-after-process --

    #[test]
    fn pickup_window_past_process_window_warns() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis(300))
            .process_within(Millis(100))
            .into();
        assert!(rules_of(&analyze(&cond)).contains(&Rule::PickupAfterProcess));
    }

    #[test]
    fn pickup_window_within_process_window_accepted() {
        let cond: Condition = Destination::queue("QM", "Q")
            .pickup_within(Millis(100))
            .process_within(Millis(300))
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::PickupAfterProcess));
    }

    // ----------------------------------------------- redundant-max --

    #[test]
    fn max_count_at_member_count_warns() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B")])
            .pickup_within(Millis(100))
            .min_pickup(1)
            .max_pickup(2)
            .into();
        assert!(rules_of(&analyze(&cond)).contains(&Rule::RedundantMax));
    }

    #[test]
    fn binding_max_count_accepted() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B"), leaf("C")])
            .pickup_within(Millis(100))
            .min_pickup(1)
            .max_pickup(2)
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::RedundantMax));
    }

    // -------------------------------------------------- trivial-set --

    #[test]
    fn single_member_set_warns() {
        let cond: Condition = DestinationSet::of(vec![leaf("A")])
            .pickup_within(Millis(100))
            .into();
        assert!(rules_of(&analyze(&cond)).contains(&Rule::TrivialSet));
    }

    #[test]
    fn multi_member_set_accepted() {
        let cond: Condition = DestinationSet::of(vec![leaf("A"), leaf("B")])
            .pickup_within(Millis(100))
            .into();
        assert!(!rules_of(&analyze(&cond)).contains(&Rule::TrivialSet));
    }

    // ------------------------------------------------------- report --

    #[test]
    fn paper_example_one_is_clean() {
        const DAY: u64 = 1000;
        let qr3 = Destination::queue("QM1", "Q.R3")
            .recipient("receiver3")
            .process_within(Millis(7 * DAY));
        let others = DestinationSet::of(vec![
            Destination::queue("QM1", "Q.R1").into(),
            Destination::queue("QM1", "Q.R2").into(),
            Destination::queue("QM1", "Q.R4").into(),
        ])
        .process_within(Millis(11 * DAY))
        .min_process(2);
        let cond: Condition = DestinationSet::of(vec![qr3.into(), others.into()])
            .pickup_within(Millis(2 * DAY))
            .into();
        let report = analyze(&cond);
        assert!(report.is_clean(), "{:?}", report.diagnostics());
    }

    #[test]
    fn errors_sort_before_warnings_and_convert() {
        let cond: Condition = DestinationSet::of(vec![Destination::queue("QM", "Q")
            .pickup_within(Millis::ZERO)
            .into()])
        .into();
        let report = analyze(&cond);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics()[0].severity, Severity::Error);
        let err = report.clone().into_error().unwrap();
        assert!(err.diagnostics().iter().all(|d| d.severity == Severity::Error));
        assert!(err.to_string().contains("zero-window"));
        // A clean report refuses the conversion.
        let clean = analyze(
            &Destination::queue("QM", "Q")
                .pickup_within(Millis(10))
                .into(),
        );
        assert!(clean.into_error().is_err());
    }

    #[test]
    fn tree_path_resolves_cells() {
        let inner: Condition = DestinationSet::of(vec![leaf("X"), leaf("Y")])
            .process_within(Millis(10))
            .into();
        let cond: Condition = DestinationSet::of(vec![leaf("A"), inner])
            .pickup_within(Millis(10))
            .into();
        let path = TreePath::root().child(1).child(0);
        assert_eq!(path.to_string(), "root.1.0");
        match path.resolve(&cond) {
            Some(Condition::Destination(d)) => assert_eq!(d.address().queue, "X"),
            other => panic!("resolved {other:?}"),
        }
        assert!(TreePath::root().child(7).resolve(&cond).is_none());
    }
}
