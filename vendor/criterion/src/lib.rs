//! Offline shim for `criterion`.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `iter` /
//! `iter_batched`, throughput annotations) with a simple wall-clock timer:
//! each benchmark warms up briefly, then runs timed batches and prints
//! mean ns/iter. No statistical analysis, plots, or baselines.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }
}

/// Identifies a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Declared input volume per iteration; printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hints for `iter_batched`; the shim treats them identically.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iterations).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Warm-up + calibration: find an iteration count that runs long enough
    // to time meaningfully, without letting slow benchmarks run for minutes.
    let mut iterations: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed > Duration::from_millis(5) || iterations >= 1 << 20 {
            break;
        }
        iterations *= 4;
    }

    let samples = sample_size.clamp(1, 30);
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        total_iters += iterations;
    }
    let ns_per_iter = if total_iters == 0 {
        0.0
    } else {
        total.as_nanos() as f64 / total_iters as f64
    };
    println!("{label}: {ns_per_iter:.1} ns/iter ({total_iters} iterations)");
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("add", 1), |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
