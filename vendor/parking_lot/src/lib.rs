//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `parking_lot` APIs it uses are re-implemented here on top of
//! the standard library. Semantics follow `parking_lot`: locks do not
//! poison — a panic while holding a guard leaves the lock usable, so
//! `lock()`/`read()`/`write()` are infallible.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that ignores poisoning, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar`] can temporarily take
/// ownership during a wait (std's condvar consumes the guard; parking_lot's
/// borrows it).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock that ignores poisoning, mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !*done && std::time::Instant::now() < deadline {
            cv.wait_for(&mut done, Duration::from_millis(10));
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
