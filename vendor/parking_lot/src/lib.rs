//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `parking_lot` APIs it uses are re-implemented here on top of
//! the standard library. Semantics follow `parking_lot`: locks do not
//! poison — a panic while holding a guard leaves the lock usable, so
//! `lock()`/`read()`/`write()` are infallible.
//!
//! # `deadlock_detection`
//!
//! With the `deadlock_detection` feature enabled (`cargo test --workspace
//! --features parking_lot/deadlock_detection`), every blocking acquisition
//! is recorded in a global lock-acquisition-order graph (see
//! [`order`](self)): holding lock `A` while acquiring lock `B` establishes
//! the order `A → B`, and an acquisition that would close a cycle panics
//! deterministically with both acquisition sites instead of deadlocking
//! some unlucky future run. The real `parking_lot` offers a background
//! wait-for-graph checker behind the same feature name; this shim trades
//! that for eager order checking, which also catches *potential* deadlocks
//! that did not happen to interleave fatally in this run.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

#[cfg(feature = "deadlock_detection")]
mod order;
#[cfg(feature = "deadlock_detection")]
use std::sync::atomic::AtomicU64;

/// A mutex that ignores poisoning, mirroring `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "deadlock_detection")]
    order_id: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds the std guard in an `Option` so [`Condvar`] can temporarily take
/// ownership during a wait (std's condvar consumes the guard; parking_lot's
/// borrows it).
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock_detection")]
    lock_id: u64,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "deadlock_detection")]
            order_id: AtomicU64::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            // Check and record the order BEFORE blocking: an inversion
            // panics here instead of deadlocking.
            order::on_acquire(id, std::panic::Location::caller());
            id
        };
        MutexGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            // Non-blocking: track for release, but no order edges.
            order::on_acquire_nonblocking(id, std::panic::Location::caller());
            id
        };
        Some(MutexGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner: Some(inner),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(feature = "deadlock_detection")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.lock_id);
    }
}

/// A reader-writer lock that ignores poisoning, mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "deadlock_detection")]
    order_id: AtomicU64,
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock_detection")]
    lock_id: u64,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "deadlock_detection")]
    lock_id: u64,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "deadlock_detection")]
            order_id: AtomicU64::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            order::on_acquire(id, std::panic::Location::caller());
            id
        };
        RwLockReadGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            order::on_acquire(id, std::panic::Location::caller());
            id
        };
        RwLockWriteGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            order::on_acquire_nonblocking(id, std::panic::Location::caller());
            id
        };
        Some(RwLockReadGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner,
        })
    }

    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "deadlock_detection")]
        let lock_id = {
            let id = order::id_of(&self.order_id);
            order::on_acquire_nonblocking(id, std::panic::Location::caller());
            id
        };
        Some(RwLockWriteGuard {
            #[cfg(feature = "deadlock_detection")]
            lock_id,
            inner,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "deadlock_detection")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.lock_id);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "deadlock_detection")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.lock_id);
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // A wait releases the mutex and re-acquires it on wake; mirror
        // that in the order tracking so held-stacks stay accurate.
        #[cfg(feature = "deadlock_detection")]
        let (lock_id, site) = (guard.lock_id, std::panic::Location::caller());
        #[cfg(feature = "deadlock_detection")]
        order::on_release(lock_id);
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        #[cfg(feature = "deadlock_detection")]
        order::on_acquire(lock_id, site);
    }

    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "deadlock_detection")]
        let (lock_id, site) = (guard.lock_id, std::panic::Location::caller());
        #[cfg(feature = "deadlock_detection")]
        order::on_release(lock_id);
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        #[cfg(feature = "deadlock_detection")]
        order::on_acquire(lock_id, site);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !*done && std::time::Instant::now() < deadline {
            cv.wait_for(&mut done, Duration::from_millis(10));
        }
        assert!(*done);
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[cfg(feature = "deadlock_detection")]
    mod deadlock {
        use super::*;

        #[test]
        fn consistent_nesting_is_accepted() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            for _ in 0..3 {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            // Releasing and re-taking in the same order never cycles.
            let _ga = a.lock();
            let _gb = b.lock();
        }

        #[test]
        #[should_panic(expected = "lock-order cycle detected")]
        fn direct_inversion_panics() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            {
                let _ga = a.lock();
                let _gb = b.lock(); // establishes a -> b
            }
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle
        }

        #[test]
        #[should_panic(expected = "lock-order cycle detected")]
        fn transitive_inversion_panics() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            let c = RwLock::new(0);
            {
                let _ga = a.lock();
                let _gb = b.lock(); // a -> b
            }
            {
                let _gb = b.lock();
                let _gc = c.write(); // b -> c
            }
            let _gc = c.read();
            let _ga = a.lock(); // c -> a closes a -> b -> c -> a
        }

        #[test]
        #[should_panic(expected = "lock-order cycle detected")]
        fn cross_thread_inversion_panics() {
            let a = Arc::new(Mutex::new(0));
            let b = Arc::new(Mutex::new(0));
            {
                // Order a -> b is established on another thread …
                let (a, b) = (a.clone(), b.clone());
                thread::spawn(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                })
                .join()
                .unwrap();
            }
            // … so the reverse on this thread is an ABBA hazard even
            // though the threads never actually collided.
            let _gb = b.lock();
            let _ga = a.lock();
        }

        #[test]
        fn try_lock_adds_no_order_edges() {
            let a = Mutex::new(0);
            let b = Mutex::new(0);
            {
                let _ga = a.lock();
                let _gb = b.try_lock().unwrap(); // non-blocking: no a -> b
            }
            let _gb = b.lock();
            let _ga = a.lock(); // would cycle if try_lock had recorded
        }

        #[test]
        fn condvar_wait_releases_the_held_lock() {
            let a = Arc::new(Mutex::new(0));
            let b = Arc::new((Mutex::new(false), Condvar::new()));
            {
                let _ga = a.lock();
                let _gb = b.0.lock(); // a -> b.0
            }
            // Waiting on b.0 releases it; taking `a` inside the wait loop
            // on another thread must NOT see b.0 as still held here.
            let waiter = {
                let b = b.clone();
                thread::spawn(move || {
                    let (lock, cv) = &*b;
                    let mut done = lock.lock();
                    while !*done {
                        cv.wait(&mut done);
                    }
                })
            };
            thread::sleep(Duration::from_millis(10));
            {
                let _ga = a.lock();
            }
            *b.0.lock() = true;
            b.1.notify_all();
            waiter.join().unwrap();
        }
    }
}
