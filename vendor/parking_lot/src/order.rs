//! Lock-acquisition-order tracking for the `deadlock_detection` feature.
//!
//! Every lock in the process gets a unique id on first acquisition. A
//! global directed graph records, for each thread, the order in which it
//! nests acquisitions: holding `A` while acquiring `B` adds the edge
//! `A → B`, stamped with both acquisition sites (`#[track_caller]`). An
//! acquisition that would close a cycle — some other code path already
//! established the reverse order — panics immediately with the conflicting
//! sites, turning a timing-dependent deadlock into a deterministic,
//! debuggable failure at the first inverted acquisition.
//!
//! Ids are never reused (unlike addresses), so a dropped lock's node going
//! stale cannot implicate an unrelated new lock. Non-blocking acquisitions
//! (`try_lock` and friends) are pushed on the held stack but add no edges:
//! they cannot block, so they cannot participate in a deadlock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A source location pair: where the `from` end of an edge was being held,
/// and where the `to` end was acquired.
type EdgeSites = (&'static Location<'static>, &'static Location<'static>);

#[derive(Default)]
struct Graph {
    /// First-seen sites for each established order `from → to`.
    edges: HashMap<(u64, u64), EdgeSites>,
    /// Adjacency: `from → {to, …}`.
    succ: HashMap<u64, Vec<u64>>,
}

impl Graph {
    fn has_edge(&self, from: u64, to: u64) -> bool {
        self.edges.contains_key(&(from, to))
    }

    fn add_edge(&mut self, from: u64, to: u64, sites: EdgeSites) {
        if self.edges.insert((from, to), sites).is_none() {
            self.succ.entry(from).or_default().push(to);
        }
    }

    /// Depth-first search for a path `from →* to`, returning the first hop
    /// of one such path (for the panic message) if it exists.
    fn path(&self, from: u64, to: u64) -> Option<u64> {
        let mut stack: Vec<(u64, u64)> = self
            .succ
            .get(&from)
            .into_iter()
            .flatten()
            .map(|&next| (next, next))
            .collect();
        let mut visited = std::collections::HashSet::new();
        while let Some((node, first_hop)) = stack.pop() {
            if node == to {
                return Some(first_hop);
            }
            if !visited.insert(node) {
                continue;
            }
            for &next in self.succ.get(&node).into_iter().flatten() {
                stack.push((next, first_hop));
            }
        }
        None
    }
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(Mutex::default)
}

thread_local! {
    /// The ids and acquisition sites of locks this thread currently holds,
    /// in acquisition order (duplicates possible for re-entrant reads).
    static HELD: RefCell<Vec<(u64, &'static Location<'static>)>> = const { RefCell::new(Vec::new()) };
}

/// Resolves a lock's unique id, assigning one on first use. `0` in the
/// cell means "unassigned"; assigned ids start at 1 and are never reused.
pub(crate) fn id_of(cell: &AtomicU64) -> u64 {
    let id = cell.load(Ordering::Acquire);
    if id != 0 {
        return id;
    }
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
    match cell.compare_exchange(0, fresh, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => fresh,
        Err(existing) => existing,
    }
}

/// Records a blocking acquisition of `id` at `site`: adds order edges from
/// every currently held lock and panics if any edge closes a cycle.
pub(crate) fn on_acquire(id: u64, site: &'static Location<'static>) {
    HELD.with(|held| {
        let snapshot: Vec<(u64, &'static Location<'static>)> = held.borrow().clone();
        if !snapshot.is_empty() {
            let mut graph = graph().lock().unwrap_or_else(|e| e.into_inner());
            for &(held_id, held_site) in &snapshot {
                if held_id == id || graph.has_edge(held_id, id) {
                    continue;
                }
                if let Some(first_hop) = graph.path(id, held_id) {
                    let (rev_from_site, rev_to_site) = graph.edges[&(id, first_hop)];
                    panic!(
                        "lock-order cycle detected: acquiring lock #{id} at \
                         {site} while holding lock #{held_id} (acquired at \
                         {held_site}) would invert the established order \
                         #{id} -> #{first_hop} (held at {rev_from_site}, \
                         acquired at {rev_to_site})"
                    );
                }
                graph.add_edge(held_id, id, (held_site, site));
            }
        }
        held.borrow_mut().push((id, site));
    });
}

/// Records a successful non-blocking acquisition: held for release
/// bookkeeping, but no edges — a `try_` acquisition cannot deadlock.
pub(crate) fn on_acquire_nonblocking(id: u64, site: &'static Location<'static>) {
    HELD.with(|held| held.borrow_mut().push((id, site)));
}

/// Records a release (guard drop, or the lock handoff inside a condvar
/// wait). Pops the most recent matching entry.
pub(crate) fn on_release(id: u64) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
            held.remove(pos);
        }
    });
}
