//! Offline shim for `rand` 0.8.
//!
//! Provides `RngCore`/`Rng`/`SeedableRng`, a SplitMix64-based `StdRng`,
//! `thread_rng()`, `random()`, and `seq::SliceRandom` — the subset this
//! workspace uses. Not cryptographically secure; statistical quality is
//! adequate for tests, jitter, and ID generation.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::ops::{Range, RangeInclusive};

/// Low-level random number generation.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random (the `Standard`
/// distribution in real `rand`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, i8, i16, i32, usize, i64, isize);

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample(rng) as f32
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let v = rng.next_u64() as $u % span;
                (self.start as $u).wrapping_add(v) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $u % (span + 1);
                (start as $u).wrapping_add(v) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;

    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    // RandomState is seeded per-process from OS entropy; hashing folds that
    // into the time so concurrent processes diverge.
    let mut h = RandomState::new().build_hasher();
    h.write_u64(t);
    h.finish()
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    /// Per-call entropy-seeded generator standing in for `ThreadRng`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> ThreadRng {
            ThreadRng {
                inner: StdRng::seed_from_u64(super::entropy_seed()),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns an entropy-seeded generator (shim for `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Generates a single random value (shim for `rand::random`).
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and selection (shim for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "hits={hits}");
    }
}
