//! Offline shim for the `bytes` crate.
//!
//! Implements [`Bytes`] (cheaply cloneable, reference-counted byte slice),
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] traits — only the subset this
//! workspace's codec and message types use. Backed by `Arc<[u8]>` so clones
//! and `copy_to_bytes` share storage exactly like the real crate.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-slice sharing the same backing storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let front = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        front
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Bytes {
        Bytes::from_vec(data.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Bytes {
        Bytes::from_vec(data.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// An ordered list of [`Bytes`] segments presented as one logical byte
/// string without copying any of them.
///
/// Built for vectored I/O: a frame assembler can mix small header chunks
/// with large pre-encoded payload slices, then hand the whole thing to
/// `write_vectored` via [`BytesList::io_slices`]. Partial writes advance
/// with [`BytesList::advance`], which drops and trims segments in place
/// (no data is moved).
#[derive(Clone, Default, Debug)]
pub struct BytesList {
    segments: Vec<Bytes>,
    len: usize,
}

impl BytesList {
    pub fn new() -> BytesList {
        BytesList::default()
    }

    pub fn with_capacity(segments: usize) -> BytesList {
        BytesList {
            segments: Vec::with_capacity(segments),
            len: 0,
        }
    }

    /// Appends a segment. Empty segments are dropped so every entry maps
    /// to a non-empty `IoSlice` (some platforms stop at a zero-length
    /// slice in a vectored write).
    pub fn push(&mut self, segment: Bytes) {
        if !segment.is_empty() {
            self.len += segment.len();
            self.segments.push(segment);
        }
    }

    /// Total logical length across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn segments(&self) -> &[Bytes] {
        &self.segments
    }

    /// One `IoSlice` per segment, ready for `Write::write_vectored`.
    pub fn io_slices(&self) -> Vec<std::io::IoSlice<'_>> {
        self.segments
            .iter()
            .map(|s| std::io::IoSlice::new(s.as_ref()))
            .collect()
    }

    /// Consumes the first `cnt` logical bytes after a partial write:
    /// fully-written segments are dropped, a partially-written one is
    /// trimmed via [`Bytes::advance`] (an index bump, not a copy).
    pub fn advance(&mut self, mut cnt: usize) {
        assert!(cnt <= self.len, "advance past end of BytesList");
        self.len -= cnt;
        let mut drop_front = 0;
        for seg in self.segments.iter_mut() {
            if cnt == 0 {
                break;
            }
            if cnt >= seg.len() {
                cnt -= seg.len();
                drop_front += 1;
            } else {
                seg.advance(cnt);
                cnt = 0;
            }
        }
        self.segments.drain(..drop_front);
    }

    /// Flattens into one contiguous `Bytes` (copies; test/diagnostic use).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.len);
        for seg in &self.segments {
            out.extend_from_slice(seg.as_ref());
        }
        Bytes::from(out)
    }
}

impl From<Bytes> for BytesList {
    fn from(b: Bytes) -> BytesList {
        let mut list = BytesList::new();
        list.push(b);
        list
    }
}

/// A growable byte buffer (shim over `Vec<u8>`).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consumes `len` bytes, returning them as `Bytes` that share storage
    /// with the source where possible.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_u128_le(1 << 100);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_u128_le(), 1 << 100);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(b.is_empty());
    }

    #[test]
    fn copy_to_bytes_shares_and_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let front = b.copy_to_bytes(2);
        assert_eq!(front.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn bytes_list_tracks_len_and_advances_without_copying() {
        let big = Bytes::from(vec![9u8; 100]);
        let mut list = BytesList::new();
        list.push(Bytes::from(vec![1u8, 2]));
        list.push(Bytes::new()); // dropped
        list.push(big.slice(10..20)); // shares storage with `big`
        assert_eq!(list.len(), 12);
        assert_eq!(list.segments().len(), 2);
        assert_eq!(list.io_slices().len(), 2);
        let flat = list.to_bytes();
        assert_eq!(flat.len(), 12);
        assert_eq!(&flat[..2], &[1, 2]);
        assert_eq!(&flat[2..], &[9u8; 10][..]);

        // Partial-write accounting: drop one segment, trim into the next.
        list.advance(5);
        assert_eq!(list.len(), 7);
        assert_eq!(list.segments().len(), 1);
        assert_eq!(list.to_bytes().as_ref(), &[9u8; 7][..]);
        list.advance(7);
        assert!(list.is_empty());
        assert!(list.segments().is_empty());
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "b\"abc\"");
    }
}
