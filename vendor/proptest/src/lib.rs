//! Offline shim for `proptest`.
//!
//! A miniature property-testing framework exposing the subset of the real
//! crate's API this workspace uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, `any::<T>()`, `Just`, `prop_oneof!`, range
//! and regex-literal strategies, `collection::{vec, btree_set}`,
//! `option::{of, weighted}`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed seed
//! (fully deterministic runs), there is no shrinking, and failure reports
//! the case index plus the assertion message instead of a minimized input.

pub mod test_runner {
    use rand::prelude::*;
    use std::fmt;

    /// Deterministic RNG driving all strategies.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Fixed-seed generator: every run explores the same cases.
        pub fn deterministic() -> TestRng {
            TestRng {
                inner: StdRng::seed_from_u64(0x70_72_6F_70_74_65_73_74),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.sample(rng)).sample(rng)
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, strat) in &self.arms {
                if pick < *weight {
                    return strat.sample(rng);
                }
                pick -= weight;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// String strategies from a small regex subset: literals, `.`, escaped
    /// chars, char classes `[a-z0-9_]`, and quantifiers `{m,n}`/`{m}`/`*`/`+`/`?`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_regex(self, rng)
        }
    }

    fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed char class in regex {pattern:?}"));
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(class, pattern)
                }
                '.' => (' '..='~').collect(),
                '\\' => {
                    i += 1;
                    let c = *chars
                        .get(i)
                        .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                    i += 1;
                    match c {
                        'd' => ('0'..='9').collect(),
                        'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').collect(),
                        other => vec![other],
                    }
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional quantifier after the atom.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed quantifier in regex {pattern:?}"));
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse(lo), parse(hi)),
                        None => (parse(&spec), parse(&spec)),
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        assert!(!class.is_empty(), "empty char class in regex {pattern:?}");
        let mut set = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (lo, hi) = (class[j], class[j + 2]);
                assert!(lo <= hi, "inverted range in regex {pattern:?}");
                for c in lo..=hi {
                    set.push(c);
                }
                j += 3;
            } else {
                set.push(class[j]);
                j += 1;
            }
        }
        set
    }
}

/// Uniform-ish generation for primitive types (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_rand {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rand::Rng::gen(rng)
            }
        }
    )*};
}

impl_arbitrary_via_rand!(bool, u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize, isize, f64, f32);

impl Arbitrary for char {
    fn arbitrary(rng: &mut test_runner::TestRng) -> char {
        use rand::Rng;
        // Mostly printable ASCII, sometimes an arbitrary unicode scalar.
        if rng.gen_bool(0.85) {
            rng.gen_range(0x20u32..0x7F).try_into().unwrap_or('?')
        } else {
            loop {
                let v = rng.gen_range(0u32..0x11_0000);
                if let Ok(c) = char::try_from(v) {
                    return c;
                }
            }
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut test_runner::TestRng) -> String {
        use rand::Rng;
        let len = rng.gen_range(0usize..16);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

mod tuples {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..self.hi)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; bound the retries so a tiny value
            // domain cannot loop forever.
            for _ in 0..target.saturating_mul(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }

    /// Strategy for ordered sets with sizes in `size` (best effort when the
    /// element domain is small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    pub struct OptionStrategy<S> {
        some_probability: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(self.some_probability) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy {
            some_probability: 0.5,
            inner,
        }
    }

    /// `Some` with the given probability.
    pub fn weighted<S: Strategy>(some_probability: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy {
            some_probability,
            inner,
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or uniform choice between strategies that
/// share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Runs each contained `fn name(pat in strategy, ...) { body }` as a test
/// over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        case,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8, "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "bad chars: {s:?}");

            let p = Strategy::sample(&"[ -~]{0,64}", &mut rng);
            assert!(p.len() <= 64);
            assert!(p.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_and_ranges(v in 1u32..8, (a, b) in (0u8..=9, any::<bool>())) {
            prop_assert!((1..8).contains(&v));
            prop_assert!(a <= 9);
            let _ = b;
        }

        #[test]
        fn oneof_and_collections(
            xs in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 1..5),
            maybe in crate::option::weighted(0.5, 0u64..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
            if let Some(m) = maybe {
                prop_assert!(m < 10);
            }
        }

        #[test]
        fn flat_map_respects_outer(n in 1u32..6, pair in (1u32..6).prop_flat_map(|n| (Just(n), 0u32..6).prop_map(|(n, k)| (n, k.min(n))))) {
            let _ = n;
            let (outer, inner) = pair;
            prop_assert!(inner <= outer);
        }
    }
}
